"""Tests for the serialized-join helper."""

from repro.baselines.sequential_gate import join_sequentially

from tests.conftest import assert_network_correct, build_network, make_ids


class TestSequentialGate:
    def test_returns_completion_time(self):
        space, ids = make_ids(4, 4, 25, seed=0)
        net = build_network(space, ids[:20], seed=0)
        finished_at = join_sequentially(net, ids[20:], gap=1.0)
        assert finished_at == net.simulator.now
        assert finished_at > 0
        assert_network_correct(net)

    def test_serialization_slower_than_concurrent(self):
        """The benefit of the paper's concurrent-join support: wall
        clock.  Same workload, serialized vs simultaneous starts."""
        space, ids = make_ids(4, 4, 30, seed=1)

        serial = build_network(space, ids[:20], seed=1)
        serial_time = join_sequentially(serial, ids[20:], gap=0.0)

        concurrent = build_network(space, ids[:20], seed=1)
        for joiner in ids[20:]:
            concurrent.start_join(joiner, at=0.0)
        concurrent.run()
        assert_network_correct(concurrent)
        concurrent_time = concurrent.simulator.now

        assert concurrent_time < serial_time

    def test_gap_spaces_out_joins(self):
        space, ids = make_ids(4, 4, 23, seed=2)
        net = build_network(space, ids[:20], seed=2)
        join_sequentially(net, ids[20:], gap=100.0)
        begins = [net.node(j).join_began_at for j in ids[20:]]
        assert begins == sorted(begins)
        assert begins[1] - begins[0] >= 100.0
