"""Tests for the Chord ring baseline."""

import random

import pytest

from repro.baselines.chord import ChordNetwork, _in_half_open
from repro.ids.idspace import IdSpace


def ring(count=30, seed=0, base=16, digits=4):
    space = IdSpace(base, digits)
    members = space.random_unique_ids(count, random.Random(seed))
    return space, members, ChordNetwork(members)


class TestIntervals:
    def test_plain_interval(self):
        assert _in_half_open(5, 3, 7, 16)
        assert _in_half_open(7, 3, 7, 16)
        assert not _in_half_open(3, 3, 7, 16)
        assert not _in_half_open(9, 3, 7, 16)

    def test_wrapping_interval(self):
        assert _in_half_open(15, 12, 4, 16)
        assert _in_half_open(2, 12, 4, 16)
        assert not _in_half_open(8, 12, 4, 16)

    def test_full_circle(self):
        assert _in_half_open(9, 5, 5, 16)


class TestConstruction:
    def test_successors_form_sorted_ring(self):
        space, members, net = ring(seed=1)
        ordered = sorted(members, key=lambda n: n.to_int())
        for i, node_id in enumerate(ordered):
            expected = ordered[(i + 1) % len(ordered)]
            assert net.nodes[node_id].successor == expected

    def test_fingers_point_at_correct_successors(self):
        space, members, net = ring(seed=2)
        node_id = members[0]
        own = node_id.to_int()
        for finger in net.nodes[node_id].fingers:
            assert finger in net.nodes

    def test_successor_of_key(self):
        space, members, net = ring(seed=3)
        rng = random.Random(3)
        ordered = sorted(members, key=lambda n: n.to_int())
        for _ in range(30):
            key = space.from_int(rng.randrange(space.size))
            owner = net.successor_of(key)
            # Brute-force ground truth.
            expected = min(
                ordered,
                key=lambda n: (n.to_int() - key.to_int()) % space.size,
            )
            assert owner == expected

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChordNetwork([])

    def test_single_node_ring(self):
        space = IdSpace(16, 4)
        node = space.from_int(5)
        net = ChordNetwork([node])
        assert net.nodes[node].successor == node
        result = net.lookup(node, space.from_int(1000))
        assert result.success
        assert result.path == [node]


class TestLookup:
    def test_lookup_finds_responsible_node(self):
        space, members, net = ring(count=50, seed=4)
        rng = random.Random(4)
        for _ in range(50):
            origin = rng.choice(members)
            key = space.from_int(rng.randrange(space.size))
            result = net.lookup(origin, key)
            assert result.success
            assert result.path[-1] == net.successor_of(key)

    def test_lookup_hops_logarithmic(self):
        space, members, net = ring(count=60, seed=5, digits=5)
        rng = random.Random(5)
        hops = []
        for _ in range(100):
            origin = rng.choice(members)
            key = space.from_int(rng.randrange(space.size))
            result = net.lookup(origin, key)
            hops.append(result.hops)
        # Chord's bound: O(log n); generous constant for small rings.
        import math

        assert max(hops) <= 3 * math.log2(len(members)) + 3

    def test_lookup_origin_is_owner(self):
        space, members, net = ring(seed=6)
        origin = members[0]
        # A key the origin itself owns: its predecessor's range end.
        key = origin
        result = net.lookup(origin, key)
        assert result.success
        assert result.path[-1] == origin

    def test_lookup_stats(self):
        space, members, net = ring(count=40, seed=7)
        rng = random.Random(7)
        pairs = [
            (rng.choice(members), space.from_int(rng.randrange(space.size)))
            for _ in range(30)
        ]
        mean_hops, mean_stretch = net.lookup_stats(pairs)
        assert mean_hops > 0
        assert mean_stretch is None
