"""Tests for the Tapestry-style multicast-join baseline."""

import random

import pytest

from repro.baselines.multicast_join import MulticastJoinNetwork
from repro.ids.idspace import IdSpace
from repro.topology.attachment import UniformLatencyModel

from tests.conftest import MAX_EVENTS


def make_baseline(n=25, m=15, seed=0):
    space = IdSpace(4, 5)
    rng = random.Random(seed)
    ids = space.random_unique_ids(n + m, rng)
    net = MulticastJoinNetwork.from_oracle(
        space,
        ids[:n],
        latency_model=UniformLatencyModel(random.Random(seed + 1)),
        seed=seed,
    )
    return net, ids[:n], ids[n:]


class TestSequentialMulticastJoin:
    @pytest.mark.parametrize("seed", range(5))
    def test_consistent_after_sequential_joins(self, seed):
        net, initial, joiners = make_baseline(seed=seed)
        for joiner in joiners:
            net.start_join(joiner, at=net.simulator.now)
            net.run(max_events=MAX_EVENTS)
        assert net.simulator.quiesced()
        assert net.all_joined()
        report = net.check_consistency()
        assert report.consistent, report.violations[:3]

    def test_existing_nodes_hold_join_state(self):
        """The paper's criticism of the multicast approach: existing
        nodes store per-joiner state during the join."""
        net, initial, joiners = make_baseline(seed=10)
        for joiner in joiners:
            net.start_join(joiner, at=net.simulator.now)
            net.run(max_events=MAX_EVENTS)
        holders = sum(
            net.mstats.holders_for(j) for j in net.joiner_ids
        )
        assert holders > 0
        assert net.mstats.peak_pending_records >= 1

    def test_pending_state_drains(self):
        net, initial, joiners = make_baseline(seed=11)
        for joiner in joiners:
            net.start_join(joiner, at=net.simulator.now)
            net.run(max_events=MAX_EVENTS)
        for node in net.nodes.values():
            assert node.pending == {}
        assert net.mstats.current_pending_records == 0

    def test_gateway_defaults_to_initial_member(self):
        net, initial, joiners = make_baseline(seed=12)
        net.start_join(joiners[0])
        net.run(max_events=MAX_EVENTS)
        assert net.nodes[joiners[0]].joined


class TestConcurrentMulticastJoin:
    def test_optimistic_concurrency_can_break_consistency(self):
        """Concurrent joins under the optimistic multicast baseline are
        not guaranteed consistent -- the gap the paper's protocol
        closes.  At least one seed in this small family must exhibit a
        violation (verified empirically, pinned here)."""
        broken = 0
        for seed in range(5):
            net, initial, joiners = make_baseline(n=25, m=15, seed=seed)
            for joiner in joiners:
                net.start_join(joiner, at=0.0)
            net.run(max_events=MAX_EVENTS)
            if not net.check_consistency().consistent:
                broken += 1
        assert broken >= 1

    def test_all_joins_terminate_even_when_concurrent(self):
        net, initial, joiners = make_baseline(n=25, m=15, seed=3)
        for joiner in joiners:
            net.start_join(joiner, at=0.0)
        net.run(max_events=MAX_EVENTS)
        assert net.simulator.quiesced()
        assert net.all_joined()
