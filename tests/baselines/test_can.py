"""Tests for the CAN torus baseline."""

import math
import random

import pytest

from repro.baselines.can import CanNetwork, _grid_sides
from repro.ids.idspace import IdSpace


def overlay(count=40, dims=2, seed=0):
    space = IdSpace(16, 6)
    members = space.random_unique_ids(count, random.Random(seed))
    return space, members, CanNetwork(
        members, dims=dims, rng=random.Random(seed + 1)
    )


class TestGrid:
    def test_grid_sides_cover_members(self):
        for n in (1, 2, 7, 16, 50, 100):
            for dims in (1, 2, 3):
                sides = _grid_sides(n, dims)
                assert math.prod(sides) >= n
                assert len(sides) == dims

    def test_every_cell_owned(self):
        space, members, net = overlay()
        assert set(net.owner_of_cell.values()) <= set(members)
        # Balanced construction: every member owns at least one cell.
        assert set(net.owner_of_cell.values()) == set(members)

    def test_neighbors_symmetricish(self):
        """Torus adjacency of zones: if A lists B, B lists A."""
        space, members, net = overlay(seed=2)
        for member in members:
            for neighbor in net.neighbors[member]:
                assert member in net.neighbors[neighbor]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            CanNetwork([])
        space = IdSpace(16, 6)
        with pytest.raises(ValueError):
            CanNetwork(space.random_unique_ids(3, random.Random(0)), dims=0)


class TestLookup:
    def test_reaches_owner(self):
        space, members, net = overlay(count=50, seed=3)
        rng = random.Random(3)
        for _ in range(50):
            origin = rng.choice(members)
            key = space.from_int(rng.randrange(space.size))
            result = net.lookup(origin, key)
            assert result.success
            assert result.path[-1] == net.owner_of_point(
                net.point_of_key(key)
            )

    def test_key_mapping_deterministic(self):
        space, members, net = overlay(seed=4)
        key = space.from_int(12345)
        assert net.point_of_key(key) == net.point_of_key(key)
        point = net.point_of_key(key)
        assert all(0.0 <= coordinate < 1.0 for coordinate in point)

    def test_single_member(self):
        space = IdSpace(16, 6)
        node = space.from_int(7)
        net = CanNetwork([node], dims=2)
        result = net.lookup(node, space.from_int(999))
        assert result.success and result.path == [node]

    def test_footnote2_hop_scaling(self):
        """Footnote 2: CAN resolves in O(d n^{1/d}) hops -- for d=2
        hops grow like sqrt(n), much faster than Chord's log n."""
        space = IdSpace(16, 6)
        rng = random.Random(9)
        means = {}
        for n in (25, 100, 400):
            members = space.random_unique_ids(n, rng)
            net = CanNetwork(members, dims=2, rng=random.Random(n))
            pairs = [
                (rng.choice(members), space.from_int(rng.randrange(space.size)))
                for _ in range(80)
            ]
            means[n] = net.mean_lookup_hops(pairs)
        # Quadrupling n should roughly double hops (sqrt scaling);
        # allow generous slack but rule out logarithmic flatness.
        assert means[100] > means[25] * 1.3
        assert means[400] > means[100] * 1.3

    def test_three_dimensions(self):
        space, members, net = overlay(count=60, dims=3, seed=5)
        rng = random.Random(5)
        for _ in range(20):
            origin = rng.choice(members)
            key = space.from_int(rng.randrange(space.size))
            assert net.lookup(origin, key).success
