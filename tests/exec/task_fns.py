"""Module-level task functions for the execution-engine tests.

They live in their own importable module (not in a test file) because
every backend except the inline one must move the function across a
process boundary -- the pool by pickling it, the remote backend by
naming it on the wire (``tests.exec.task_fns:double``) for workers to
re-import.
"""

import os
import time


def double(x):
    """The canonical pure task: ``2 * x``."""
    return 2 * x


def boom(x):
    """Raises on ``x == 3`` -- a deterministic task *error* (as opposed
    to a worker *death*), which no backend should retry."""
    if x == 3:
        raise ValueError("task 3 always fails")
    return 2 * x


def crash_once(task):
    """Kill the hosting worker process the first time the sentinel
    task runs; succeed on retry.

    ``task`` is ``(value, sentinel_path)``; an empty sentinel path
    marks a well-behaved task.  The sentinel file is created *before*
    dying so the retried attempt (and the inline reference run) sees
    it and returns normally.
    """
    value, sentinel = task
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("crashed")
        os._exit(1)
    return 2 * value


def always_crash(x):
    """Kill the hosting worker process unconditionally (a poison task
    that must exhaust ``max_attempts``)."""
    os._exit(1)


def sleepy_double(x):
    """``2 * x`` after a wall-clock pause -- long enough for a test to
    kill the hosting worker mid-task."""
    time.sleep(0.3)
    return 2 * x
