"""Remote backend and worker-daemon tests.

The in-process classes cover the scheduling/requeue logic against
:class:`~repro.exec.worker.WorkerDaemon` threads; the subprocess class
is the acceptance test -- real ``repro worker`` OS processes, one of
them SIGKILLed mid-sweep, with the merged result still identical to
the inline run.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec.remote import (
    RemoteBackend,
    RemoteBackendError,
    RemoteTaskError,
    discover_workers,
)
from repro.exec.taskcodec import decode_task_value, encode_task_value
from repro.exec.worker import WorkerDaemon
from tests.exec.task_fns import boom, double, sleepy_double

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fleet():
    """Start in-process worker daemons; yields the starter, cleans up
    every daemon afterwards."""
    daemons = []

    def start(count=2, rendezvous=None):
        addrs = []
        for _ in range(count):
            daemon = WorkerDaemon(
                ("127.0.0.1", 0),
                rendezvous=rendezvous,
                announce_interval=0.2,
            )
            addr = daemon.open()
            thread = threading.Thread(target=daemon.serve, daemon=True)
            thread.start()
            daemons.append((daemon, thread))
            addrs.append(addr)
        return addrs

    yield start
    for daemon, thread in daemons:
        daemon.stop()
        thread.join(timeout=3.0)
        daemon.close()


def dead_address():
    """A loopback address guaranteed to have no listener."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    addr = probe.getsockname()
    probe.close()
    return (addr[0], addr[1])


class TestWorkerDaemon:
    """Direct ``handle()`` tests against one open daemon."""

    def setup_method(self):
        self.daemon = WorkerDaemon(("127.0.0.1", 0))
        self.daemon.open()

    def teardown_method(self):
        self.daemon.close()

    def submit(self, tid, value):
        return self.daemon.handle(
            "submit",
            {
                "tid": tid,
                "fn": "tests.exec.task_fns:double",
                "task": encode_task_value(value),
            },
            ("c", 1),
        )

    def poll_until_done(self, tid, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            reply = self.daemon.handle("poll", {"tid": tid}, ("c", 1))
            if reply["state"] != "running":
                return reply
            time.sleep(0.01)
        raise AssertionError(f"task {tid} never finished")

    def test_hello_identifies_a_worker(self):
        hello = self.daemon.handle("hello", {}, ("c", 1))
        assert hello["ok"] and hello["kind"] == "worker"

    def test_submit_run_poll_roundtrip(self):
        assert self.submit("t1", 21)["accepted"]
        reply = self.poll_until_done("t1")
        assert reply["state"] == "done"
        assert decode_task_value(reply["result"]) == 42
        assert self.daemon.tasks_done == 1

    def test_duplicate_submit_is_reacked_not_rerun(self):
        assert self.submit("t1", 10)["accepted"]
        assert self.submit("t1", 10)["accepted"]  # retried datagram
        self.poll_until_done("t1")
        assert self.daemon.tasks_done == 1

    def test_second_task_while_busy_is_refused(self):
        self.daemon.handle(
            "submit",
            {
                "tid": "slow",
                "fn": "tests.exec.task_fns:sleepy_double",
                "task": encode_task_value(1),
            },
            ("c", 1),
        )
        assert self.submit("other", 2) == {"busy": True}
        self.poll_until_done("slow")

    def test_unknown_tid_polls_unknown(self):
        assert self.daemon.handle("poll", {"tid": "nope"}, ("c", 1)) == {
            "state": "unknown"
        }

    def test_task_error_is_reported_not_fatal(self):
        self.daemon.handle(
            "submit",
            {
                "tid": "bad",
                "fn": "tests.exec.task_fns:boom",
                "task": encode_task_value(3),
            },
            ("c", 1),
        )
        reply = self.poll_until_done("bad")
        assert reply["state"] == "error"
        assert "ValueError" in reply["error"]
        assert self.daemon.tasks_failed == 1
        # The worker survives and takes the next task.
        assert self.submit("good", 4)["accepted"]
        assert decode_task_value(self.poll_until_done("good")["result"]) == 8

    def test_status_row_shape(self):
        status = self.daemon.handle("status", {}, ("c", 1))
        assert status["kind"] == "worker"
        assert status["status"] == "wrk-idle"
        assert status["s"] is False


class TestRemoteBackendInProcess:
    def test_requires_workers_or_rendezvous(self):
        with pytest.raises(ValueError, match="rendezvous"):
            RemoteBackend()

    def test_matches_inline_and_survives_busy_workers(self, fleet):
        addrs = fleet(count=2)
        tasks = list(range(7))
        with RemoteBackend(workers=addrs, poll_interval=0.02) as backend:
            assert backend.map(double, tasks) == [2 * t for t in tasks]

    def test_task_error_raises_remote_task_error(self, fleet):
        addrs = fleet(count=1)
        with RemoteBackend(workers=addrs, poll_interval=0.02) as backend:
            with pytest.raises(RemoteTaskError, match="ValueError"):
                backend.map(boom, [1, 2, 3])

    def test_no_live_workers_fails_loudly(self):
        backend = RemoteBackend(
            workers=[dead_address()],
            request_timeout=0.05,
            request_retries=1,
            poll_interval=0.01,
        )
        with backend:
            with pytest.raises(RemoteBackendError, match="no live workers"):
                backend.map(double, [1, 2])

    def test_discovery_via_rendezvous(self, fleet):
        from repro.net.rendezvous import RendezvousServer

        server = RendezvousServer(("127.0.0.1", 0), ttl=60.0)
        rendezvous = server.open()
        server_thread = threading.Thread(target=server.serve, daemon=True)
        server_thread.start()
        try:
            addrs = fleet(count=2, rendezvous=rendezvous)
            backend = RemoteBackend(
                rendezvous=rendezvous, poll_interval=0.02
            )
            with backend:
                deadline = time.monotonic() + 5.0
                roster = []
                while time.monotonic() < deadline and len(roster) < 2:
                    roster = backend.roster()
                    time.sleep(0.05)
                assert sorted(roster) == sorted(addrs)
                assert backend.map(double, [1, 2, 3]) == [2, 4, 6]
        finally:
            server.stop()
            server_thread.join(timeout=5.0)
            server.close()

    def test_discover_workers_ignores_nodes_and_old_rows(self):
        class FakeClient:
            """Canned ``directory`` response."""

            def try_request(self, addr, op, body=None):
                """Return the canned body."""
                return {
                    "nodes": [
                        ["a", ["127.0.0.1", 1], True],  # pre-kind row
                        ["b", ["127.0.0.1", 2], False, "node"],
                        ["c", ["127.0.0.1", 3], False, "worker"],
                    ]
                }

        assert discover_workers(FakeClient(), ("127.0.0.1", 9)) == [
            ("127.0.0.1", 3)
        ]


class TestRemoteAcceptance:
    """Real ``repro worker`` subprocesses, including a SIGKILL."""

    def spawn_worker(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            cwd=str(REPO_ROOT),
            env=env,
            text=True,
        )
        ready = proc.stdout.readline()
        assert "REPRO-NET READY kind=worker" in ready, ready
        port = int(ready.rsplit("port=", 1)[1].strip())
        return proc, ("127.0.0.1", port)

    def test_kill_dash_nine_mid_sweep_preserves_the_result(self):
        procs, addrs = [], []
        for _ in range(2):
            proc, addr = self.spawn_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            tasks = list(range(6))
            backend = RemoteBackend(
                workers=addrs,
                request_timeout=0.3,
                request_retries=1,
                poll_interval=0.05,
            )
            killer = threading.Timer(
                0.45, lambda: os.kill(procs[0].pid, signal.SIGKILL)
            )
            killer.start()
            try:
                with backend:
                    results = backend.map(sleepy_double, tasks)
            finally:
                killer.cancel()
            # The kill moved tasks between sockets, never changed the
            # merged result: the engine's cross-backend guarantee.
            assert results == [2 * t for t in tasks]
            assert procs[0].wait(timeout=5.0) != 0
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=5.0)
                proc.stdout.close()
