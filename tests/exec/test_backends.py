"""Execution-backend contract tests: the merge invariant, the
factories, and the pool backend's crash-requeue path."""

import pytest

from repro.exec import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionError,
    InlineBackend,
    create_backend,
    resolve_backend,
)
from repro.exec.pool import ProcessPoolBackend, WorkerCrashError
from tests.exec.task_fns import always_crash, boom, crash_once, double


class TestContract:
    def test_inline_map_is_the_plain_loop(self):
        backend = InlineBackend()
        assert backend.map(double, [1, 2, 3]) == [2, 4, 6]
        assert backend.map(double, []) == []

    def test_progress_reports_every_completion(self):
        calls = []
        InlineBackend().map(
            double, [5, 6], progress=lambda done, total: calls.append(
                (done, total)
            )
        )
        assert calls == [(1, 2), (2, 2)]

    def test_merge_rejects_duplicate_completions(self):
        class DoubleYield(ExecutionBackend):
            """Broken backend: completes task 0 twice."""

            name = "broken"

            def completions(self, fn, tasks):
                """Yield index 0 twice."""
                yield 0, fn(tasks[0])
                yield 0, fn(tasks[0])

        with pytest.raises(ExecutionError, match="twice"):
            DoubleYield().map(double, [1, 2])

    def test_merge_rejects_missing_completions(self):
        class Lossy(ExecutionBackend):
            """Broken backend: silently drops every task but the first."""

            name = "lossy"

            def completions(self, fn, tasks):
                """Yield only index 0."""
                yield 0, fn(tasks[0])

        with pytest.raises(ExecutionError, match="missing"):
            Lossy().map(double, [1, 2, 3])

    def test_context_manager_closes(self):
        closed = []

        class Tracked(InlineBackend):
            """Inline backend that records close() calls."""

            def close(self):
                """Record the close."""
                closed.append(True)

        with Tracked() as backend:
            backend.map(double, [1])
        assert closed == [True]


class TestFactories:
    def test_create_backend_names(self):
        assert isinstance(create_backend("inline"), InlineBackend)
        pool = create_backend("pool", jobs=2)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.jobs == 2
        assert set(BACKEND_NAMES) == {"inline", "pool", "remote"}

    def test_create_backend_passthrough_and_unknown(self):
        backend = InlineBackend()
        assert create_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("threads")

    def test_resolve_backend_ownership(self):
        explicit = InlineBackend()
        backend, owned = resolve_backend(explicit, jobs=8)
        assert backend is explicit and not owned

        backend, owned = resolve_backend(None, jobs=1)
        assert isinstance(backend, InlineBackend) and owned

        backend, owned = resolve_backend(None, jobs=3)
        assert isinstance(backend, ProcessPoolBackend) and owned
        assert backend.jobs == 3


class TestPoolBackend:
    def test_matches_inline_with_chunking(self):
        tasks = list(range(11))
        with ProcessPoolBackend(jobs=3, chunksize=2) as pool:
            assert pool.map(double, tasks) == [double(t) for t in tasks]

    def test_single_task_short_circuits_inline(self):
        with ProcessPoolBackend(jobs=4) as pool:
            assert pool.map(double, [21]) == [42]

    def test_task_exception_propagates(self):
        with ProcessPoolBackend(jobs=2, chunksize=1) as pool:
            with pytest.raises(ValueError, match="task 3"):
                pool.map(boom, [1, 2, 3, 4])

    def test_worker_crash_is_retried_to_the_correct_result(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [(value, sentinel if value == 2 else "")
                 for value in range(6)]
        with ProcessPoolBackend(jobs=2, chunksize=2) as pool:
            results = pool.map(crash_once, tasks)
        # The crash changed scheduling, never the merged result.
        assert results == [2 * value for value in range(6)]

    def test_poison_task_exhausts_attempts(self):
        with ProcessPoolBackend(jobs=2, max_attempts=2) as pool:
            with pytest.raises(WorkerCrashError, match="attempts"):
                pool.map(always_crash, [1, 2, 3, 4])
