"""Task-codec round trips: everything a campaign puts on the wire."""

import dataclasses

import pytest

from repro.exec.taskcodec import (
    TaskCodecError,
    decode_task_value,
    encode_task_value,
)
from repro.experiments.churn import ChurnConfig
from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.parallel import JoinTaskConfig, JoinTaskResult
from repro.ids.idspace import IdSpace
from repro.protocol.sizing import SizingPolicy
from repro.topology.transit_stub import TransitStubParams


def roundtrip(value):
    """Encode then decode; the task codec's defining property is that
    this is the identity (including container types)."""
    return decode_task_value(encode_task_value(value))


class TestScalarsAndContainers:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -7, 3.25, "text", ""],
    )
    def test_scalars(self, value):
        decoded = roundtrip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_list_stays_a_list(self):
        decoded = roundtrip([1, "two", [3.0, None]])
        assert decoded == [1, "two", [3.0, None]]
        assert isinstance(decoded, list)

    def test_tuple_stays_a_tuple(self):
        decoded = roundtrip((1, (2, 3)))
        assert decoded == (1, (2, 3))
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], tuple)

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": (3,)}
        decoded = roundtrip(value)
        assert decoded == value
        assert list(decoded) == ["z", "a", "m"]

    def test_frozenset(self):
        assert roundtrip(frozenset({1, 5, 9})) == frozenset({1, 5, 9})


class TestProtocolValues:
    def test_node_id_via_protocol_codec(self):
        node_id = IdSpace(16, 8).hash_name("codec-test")
        assert roundtrip(node_id) == node_id

    def test_sizing_policy_enum(self):
        for policy in SizingPolicy:
            decoded = roundtrip(policy)
            assert decoded is policy


class TestDataclasses:
    def test_join_task_config_full(self):
        config = JoinTaskConfig(
            base=4,
            num_digits=4,
            n=25,
            m=5,
            seed=9,
            use_topology=True,
            topology_params=TransitStubParams(),
            sizing=SizingPolicy.FULL,
        )
        decoded = roundtrip(config)
        assert decoded == config
        assert isinstance(decoded, JoinTaskConfig)
        assert isinstance(decoded.topology_params, TransitStubParams)

    def test_join_task_result(self):
        result = JoinTaskResult(
            seed=3,
            consistent=True,
            all_in_system=True,
            members=30,
            mean_join_noti=2.5,
            max_theorem3=4,
            total_messages=812,
            total_bytes=40960,
            message_counts=(("CpRstMsg", 5), ("JoinNotiMsg", 12)),
        )
        decoded = roundtrip(result)
        assert decoded == result
        assert decoded.counts_dict() == {"CpRstMsg": 5, "JoinNotiMsg": 12}

    def test_fig15b_and_churn_configs(self):
        for config in (
            Fig15bConfig(n=60, m=20, seed=4),
            ChurnConfig(n=40, m=10, leaves=5, failures=3, seed=2),
        ):
            decoded = roundtrip(config)
            assert decoded == config
            assert type(decoded) is type(config)


class TestErrors:
    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass
        class NotOnTheWire:
            x: int = 1

        with pytest.raises(TaskCodecError, match="NotOnTheWire"):
            encode_task_value(NotOnTheWire())

    def test_arbitrary_object_rejected(self):
        with pytest.raises(TaskCodecError):
            encode_task_value(object())

    def test_unknown_dataclass_tag_rejected_on_decode(self):
        with pytest.raises(TaskCodecError, match="Spoofed"):
            decode_task_value({"$dc": ["Spoofed", {"x": 1}]})
