"""Unit tests for Section 3.3 conditions (1)-(3) checkers."""

from repro.csettree.conditions import (
    check_condition1,
    check_condition2,
    check_condition3,
)
from repro.csettree.realized import build_realized_tree
from repro.csettree.template import build_template
from repro.ids.idspace import IdSpace
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable

SPACE = IdSpace(8, 5)
V = [SPACE.from_string(s) for s in ["72430", "10353", "62332", "13141", "31701"]]
W = [SPACE.from_string(s) for s in ["10261", "47051", "00261"]]


def self_only_tables():
    tables = {node: NeighborTable(node) for node in V + W}
    for node in V + W:
        for level in range(SPACE.num_digits):
            tables[node].set_entry(
                level, node.digit(level), node, NeighborState.S
            )
    return tables


def good_tables():
    """A realization satisfying all three conditions."""
    tables = self_only_tables()
    n10261 = SPACE.from_string("10261")
    n47051 = SPACE.from_string("47051")
    n00261 = SPACE.from_string("00261")
    for root in (SPACE.from_string("13141"), SPACE.from_string("31701")):
        tables[root].set_entry(1, 6, n10261, NeighborState.S)
        tables[root].set_entry(1, 5, n47051, NeighborState.S)
    # 10261 and 00261 know each other (sibling leaf C-sets).
    tables[n10261].set_entry(4, 0, n00261, NeighborState.S)
    tables[n00261].set_entry(4, 1, n10261, NeighborState.S)
    # Joiners in the 261-subtree store a node for sibling C_51 and
    # vice versa (condition (3) across the top branches).
    tables[n10261].set_entry(1, 5, n47051, NeighborState.S)
    tables[n00261].set_entry(1, 5, n47051, NeighborState.S)
    tables[n47051].set_entry(1, 6, n10261, NeighborState.S)
    return tables


class TestConditions:
    def setup_method(self):
        self.template = build_template(V, W)

    def test_all_conditions_hold_on_good_tables(self):
        tables = good_tables()
        realized = build_realized_tree(self.template, V, tables)
        assert check_condition1(self.template, realized) == []
        assert check_condition2(self.template, V, tables) == []
        assert check_condition3(self.template, tables) == []

    def test_condition1_reports_empty_csets(self):
        tables = self_only_tables()
        realized = build_realized_tree(self.template, V, tables)
        problems = check_condition1(self.template, realized)
        assert problems
        assert any("empty" in p for p in problems)

    def test_condition2_reports_missing_root_entries(self):
        tables = good_tables()
        # Remove 31701's (1,5)-entry by rebuilding its table.
        victim = SPACE.from_string("31701")
        fresh = NeighborTable(victim)
        for e in tables[victim].entries():
            if (e.level, e.digit) != (1, 5):
                fresh.set_entry(e.level, e.digit, e.node, e.state)
        tables[victim] = fresh
        problems = check_condition2(self.template, V, tables)
        assert any("31701" in p for p in problems)

    def test_condition3_reports_missing_sibling_entries(self):
        tables = good_tables()
        victim = SPACE.from_string("47051")
        fresh = NeighborTable(victim)
        for e in tables[victim].entries():
            if (e.level, e.digit) != (1, 6):
                fresh.set_entry(e.level, e.digit, e.node, e.state)
        tables[victim] = fresh
        problems = check_condition3(self.template, tables)
        assert any("47051" in p for p in problems)
