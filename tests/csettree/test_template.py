"""Unit tests for the C-set tree template (Definition 3.9)."""

import pytest

from repro.csettree.template import CSetTreeTemplate, build_template
from repro.ids.idspace import IdSpace
from repro.ids.suffix import parse_suffix

SPACE = IdSpace(8, 5)
V = [SPACE.from_string(s) for s in ["72430", "10353", "62332", "13141", "31701"]]
W = [SPACE.from_string(s) for s in ["10261", "47051", "00261"]]


def sfx(text):
    return parse_suffix(text, 8)


class TestBuildTemplate:
    def test_paper_example_root(self):
        template = build_template(V, W)
        assert template.root_suffix == sfx("1")

    def test_paper_example_structure(self):
        """Figure 2(b): the exact template of the paper."""
        template = build_template(V, W)
        assert template.children(sfx("1")) == [sfx("51"), sfx("61")]
        assert template.children(sfx("61")) == [sfx("261")]
        assert template.children(sfx("261")) == [sfx("0261")]
        assert sorted(template.children(sfx("0261"))) == sorted(
            [sfx("00261"), sfx("10261")]
        )
        assert template.children(sfx("51")) == [sfx("051")]
        assert template.children(sfx("051")) == [sfx("7051")]
        assert template.children(sfx("7051")) == [sfx("47051")]
        assert template.children(sfx("47051")) == []

    def test_suffix_count(self):
        template = build_template(V, W)
        # 51,051,7051,47051 + 61,261,0261,00261,10261 = 9 C-sets.
        assert len(template.suffixes) == 9

    def test_leaves_are_member_ids(self):
        template = build_template(V, W)
        leaves = template.leaves()
        assert sfx("47051") in leaves
        assert sfx("00261") in leaves
        assert sfx("10261") in leaves

    def test_path_to_root(self):
        template = build_template(V, W)
        path = template.path_to_root(SPACE.from_string("10261"))
        assert path == [
            sfx("10261"),
            sfx("0261"),
            sfx("261"),
            sfx("61"),
        ]

    def test_path_to_root_rejects_nonmember(self):
        template = build_template(V, W)
        with pytest.raises(ValueError):
            template.path_to_root(SPACE.from_string("72430"))

    def test_siblings(self):
        template = build_template(V, W)
        assert template.siblings(sfx("61")) == [sfx("51")]
        assert template.siblings(sfx("00261")) == [sfx("10261")]
        assert template.siblings(sfx("261")) == []

    def test_parent(self):
        template = build_template(V, W)
        assert template.parent(sfx("261")) == sfx("61")
        with pytest.raises(ValueError):
            template.parent(sfx("1"))

    def test_expected_members(self):
        template = build_template(V, W)
        assert template.expected_members(sfx("261")) == {
            SPACE.from_string("10261"),
            SPACE.from_string("00261"),
        }

    def test_render_contains_sets(self):
        template = build_template(V, W)
        rendering = template.render()
        assert "C_61" in rendering
        assert "C_47051" in rendering

    def test_rejects_mixed_notification_suffixes(self):
        # 67320 notifies V_0, 10261 notifies V_1: different trees.
        mixed = [SPACE.from_string("10261"), SPACE.from_string("67320")]
        with pytest.raises(ValueError):
            build_template(V, mixed)

    def test_rejects_empty_w(self):
        with pytest.raises(ValueError):
            build_template(V, [])

    def test_direct_construction_validates_suffix(self):
        with pytest.raises(ValueError):
            CSetTreeTemplate(sfx("1"), [SPACE.from_string("67320")])
