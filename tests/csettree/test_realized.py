"""Unit tests for the realized C-set tree (Definition 5.1)."""

from repro.csettree.realized import build_realized_tree
from repro.csettree.template import build_template
from repro.ids.idspace import IdSpace
from repro.ids.suffix import parse_suffix
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable

SPACE = IdSpace(8, 5)
V = [SPACE.from_string(s) for s in ["72430", "10353", "62332", "13141", "31701"]]
W = [SPACE.from_string(s) for s in ["10261", "47051", "00261"]]


def sfx(text):
    return parse_suffix(text, 8)


def hand_built_realization():
    """Reproduce exactly the realization of the paper's Figure 2(c):

    V_1 = {13141, 31701}; both store 10261 in (1,6) and 47051 in (1,5);
    hence C_61 = {10261}, C_51 = {47051}; 10261's self-pointers fill
    the 261/0261 chain; 00261 is stored by 10261 at (4,0).
    """
    members = V + W
    # Fresh tables for full control of who stores whom.
    tables = {node: NeighborTable(node) for node in members}
    for node in members:
        for level in range(SPACE.num_digits):
            tables[node].set_entry(
                level, node.digit(level), node, NeighborState.S
            )
    n10261 = SPACE.from_string("10261")
    n47051 = SPACE.from_string("47051")
    n00261 = SPACE.from_string("00261")
    for root in (SPACE.from_string("13141"), SPACE.from_string("31701")):
        tables[root].set_entry(1, 6, n10261, NeighborState.S)
        tables[root].set_entry(1, 5, n47051, NeighborState.S)
    tables[n10261].set_entry(4, 0, n00261, NeighborState.S)
    return tables


class TestRealizedTree:
    def test_figure2c_realization(self):
        template = build_template(V, W)
        tables = hand_built_realization()
        realized = build_realized_tree(template, V, tables)
        assert realized.root_set == {
            SPACE.from_string("13141"),
            SPACE.from_string("31701"),
        }
        assert realized.cset(sfx("61")) == {SPACE.from_string("10261")}
        assert realized.cset(sfx("51")) == {SPACE.from_string("47051")}
        # Self-pointers propagate 10261 down its chain (the paper:
        # "once x is filled into a C-set, it is automatically filled
        # into those descendants ... whose suffix is also a suffix of
        # x.ID").
        assert realized.cset(sfx("261")) == {SPACE.from_string("10261")}
        assert realized.cset(sfx("0261")) == {SPACE.from_string("10261")}
        assert realized.cset(sfx("10261")) == {SPACE.from_string("10261")}
        assert realized.cset(sfx("00261")) == {SPACE.from_string("00261")}
        assert realized.cset(sfx("47051")) == {SPACE.from_string("47051")}

    def test_union_of_csets_is_w(self):
        template = build_template(V, W)
        realized = build_realized_tree(template, V, hand_built_realization())
        assert realized.union_of_csets() == set(W)

    def test_empty_when_roots_store_nothing(self):
        template = build_template(V, W)
        members = V + W
        tables = {node: NeighborTable(node) for node in members}
        for node in members:
            for level in range(SPACE.num_digits):
                tables[node].set_entry(
                    level, node.digit(level), node, NeighborState.S
                )
        realized = build_realized_tree(template, V, tables)
        assert realized.cset(sfx("61")) == set()
        assert realized.cset(sfx("261")) == set()
        assert realized.non_empty_suffixes() == set()

    def test_render_mentions_sets(self):
        template = build_template(V, W)
        realized = build_realized_tree(template, V, hand_built_realization())
        text = realized.render()
        assert "C_61" in text
        assert "10261" in text

    def test_only_w_members_counted(self):
        """A root-set node storing a V member in a C-set position does
        not put that member into the C-set (C-sets contain joiners)."""
        template = build_template(V, W)
        tables = hand_built_realization()
        realized = build_realized_tree(template, V, tables)
        for suffix in template.suffixes:
            assert realized.cset(suffix) <= set(W)
