"""Unit tests for join classification (Definitions 3.2-3.6)."""

from repro.csettree.classify import (
    JoiningPeriod,
    joins_are_concurrent,
    joins_are_dependent,
    joins_are_independent,
    joins_are_sequential,
    partition_into_dependent_groups,
)
from repro.csettree.notification import notification_set
from repro.ids.idspace import IdSpace

import pytest

SPACE = IdSpace(8, 5)
V = [SPACE.from_string(s) for s in ["72430", "10353", "62332", "13141", "31701"]]


def _id(text):
    return SPACE.from_string(text)


def periods(*spans):
    return [
        JoiningPeriod(_id(f"0000{i}"), begin, end)
        for i, (begin, end) in enumerate(spans)
    ]


class TestTemporalClassification:
    def test_sequential(self):
        assert joins_are_sequential(periods((0, 1), (2, 3), (4, 5)))

    def test_not_sequential_when_overlapping(self):
        assert not joins_are_sequential(periods((0, 2), (1, 3)))

    def test_touching_periods_overlap(self):
        # [0,1] and [1,2] share the instant 1 -> not sequential.
        assert not joins_are_sequential(periods((0, 1), (1, 2)))

    def test_concurrent(self):
        assert joins_are_concurrent(periods((0, 2), (1, 3), (2.5, 4)))

    def test_not_concurrent_with_gap(self):
        # Coverage gap between 2 and 3 even though each overlaps another.
        assert not joins_are_concurrent(
            periods((0, 1), (0.5, 2), (3, 4), (3.5, 5))
        )

    def test_not_concurrent_with_isolated_period(self):
        assert not joins_are_concurrent(periods((0, 10), (2, 3), (20, 21)))

    def test_single_join_neither(self):
        assert not joins_are_sequential(periods((0, 1)))
        assert not joins_are_concurrent(periods((0, 1)))

    def test_period_validation(self):
        with pytest.raises(ValueError):
            JoiningPeriod(_id("00000"), 5.0, 1.0)

    def test_overlaps_symmetric(self):
        a, b = periods((0, 2), (1, 3))
        assert a.overlaps(b) and b.overlaps(a)


class TestDependency:
    """Uses the paper's Section 3.3 example: 10261 and 00261 share
    noti-set V_1; 67320 notifies V_0; 11445 notifies V."""

    def notify(self, *names):
        return {
            _id(name): notification_set(_id(name), V) for name in names
        }

    def test_dependent_via_intersection(self):
        sets = self.notify("10261", "00261")
        assert joins_are_dependent(sets)
        assert not joins_are_independent(sets)

    def test_independent(self):
        sets = self.notify("10261", "67320")
        assert joins_are_independent(sets)
        assert not joins_are_dependent(sets)

    def test_dependent_via_bridge(self):
        # 11445 notifies all of V, which contains both V_1 and V_0:
        # it bridges 10261 and 67320.
        sets = self.notify("10261", "67320", "11445")
        assert joins_are_dependent(sets)

    def test_pair_with_superset_is_dependent(self):
        sets = self.notify("10261", "11445")
        assert joins_are_dependent(sets)

    def test_partition_into_groups(self):
        sets = self.notify("10261", "00261", "67320")
        groups = partition_into_dependent_groups(sets)
        as_sets = sorted(
            [sorted(str(n) for n in g) for g in groups]
        )
        assert as_sets == [["00261", "10261"], ["67320"]]

    def test_partition_with_bridge_is_single_group(self):
        sets = self.notify("10261", "67320", "11445")
        groups = partition_into_dependent_groups(sets)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_single_joiner_not_classified(self):
        sets = self.notify("10261")
        assert not joins_are_dependent(sets)
        assert not joins_are_independent(sets)
