"""Unit tests for notification-set helpers and joiner grouping."""

from repro.csettree.notification import (
    group_by_notification_suffix,
    notification_set,
    notification_suffix,
)
from repro.ids.idspace import IdSpace
from repro.ids.suffix import SuffixIndex, parse_suffix

SPACE = IdSpace(8, 5)
V = [SPACE.from_string(s) for s in ["72430", "10353", "62332", "13141", "31701"]]


def _id(text):
    return SPACE.from_string(text)


class TestNotification:
    def test_suffix_for_paper_example(self):
        assert notification_suffix(_id("10261"), V) == parse_suffix("1", 8)

    def test_set_matches_suffix(self):
        omega = notification_suffix(_id("10261"), V)
        members = notification_set(_id("10261"), V)
        assert members == {n for n in V if n.has_suffix(omega)}

    def test_accepts_prebuilt_index(self):
        index = SuffixIndex(V)
        assert notification_set(_id("10261"), index) == notification_set(
            _id("10261"), V
        )

    def test_grouping_matches_paper_section_33(self):
        """W = {10261, 00261, 67320, 11445}: 10261 and 00261 share the
        tree rooted at V_1, 67320 roots at V_0, 11445 at V."""
        joiners = [_id(s) for s in ["10261", "00261", "67320", "11445"]]
        groups = group_by_notification_suffix(joiners, V)
        assert groups[parse_suffix("1", 8)] == [_id("10261"), _id("00261")]
        assert groups[parse_suffix("0", 8)] == [_id("67320")]
        assert groups[()] == [_id("11445")]
        assert len(groups) == 3
