"""End-to-end: the paper's Figure 2 scenario through the real protocol.

Runs W = {10261, 47051, 00261} joining V = {72430, 10353, 62332,
13141, 31701} concurrently, then checks that the realized C-set tree
satisfies conditions (1)-(3) of Section 3.3 (Propositions 5.1-5.3) --
under many different message interleavings (seeds).
"""

import pytest

from repro.experiments.fig2 import figure2_example
from repro.ids.idspace import IdSpace
from repro.ids.suffix import parse_suffix

SPACE = IdSpace(8, 5)


def sfx(text):
    return parse_suffix(text, 8)


class TestFigure2EndToEnd:
    @pytest.mark.parametrize("seed", range(8))
    def test_conditions_hold_for_any_interleaving(self, seed):
        result = figure2_example(seed=seed)
        assert result.consistent
        assert result.condition1 == []
        assert result.condition2 == []
        assert result.condition3 == []

    def test_leaf_csets_contain_their_nodes(self):
        result = figure2_example(seed=0)
        # Condition (1) implies each leaf C-set holds the node whose ID
        # is the leaf's suffix.
        assert SPACE.from_string("10261") in result.realized.cset(
            sfx("10261")
        )
        assert SPACE.from_string("00261") in result.realized.cset(
            sfx("00261")
        )
        assert SPACE.from_string("47051") in result.realized.cset(
            sfx("47051")
        )

    def test_union_of_csets_is_w(self):
        result = figure2_example(seed=1)
        assert result.realized.union_of_csets() == set(result.template.members)

    def test_root_set_is_v1(self):
        result = figure2_example(seed=2)
        assert result.realized.root_set == {
            SPACE.from_string("13141"),
            SPACE.from_string("31701"),
        }

    def test_template_matches_figure_2b(self):
        result = figure2_example(seed=3)
        assert result.template.root_suffix == sfx("1")
        assert len(result.template.suffixes) == 9
