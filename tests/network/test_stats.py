"""Unit tests for message statistics."""

from repro.ids.idspace import IdSpace
from repro.network.message import HEADER_BYTES, Message
from repro.network.stats import MessageStats

SPACE = IdSpace(4, 4)
A = SPACE.from_string("0000")
B = SPACE.from_string("1111")


class Fake(Message):
    type_name = "Fake"


class CpRstLike(Message):
    type_name = "CpRstMsg"


class JoinWaitLike(Message):
    type_name = "JoinWaitMsg"


class JoinNotiLike(Message):
    type_name = "JoinNotiMsg"


class TestMessageStats:
    def test_counts_by_type_and_sender(self):
        stats = MessageStats()
        stats.on_send(Fake(A))
        stats.on_send(Fake(A))
        stats.on_send(Fake(B))
        assert stats.count("Fake") == 3
        assert stats.sent_by(A, "Fake") == 2
        assert stats.sent_by(B, "Fake") == 1
        assert stats.sent_by(B, "Other") == 0
        assert stats.sent_by(SPACE.from_string("2222"), "Fake") == 0

    def test_bytes_accounting(self):
        stats = MessageStats()
        stats.on_send(Fake(A))
        assert stats.total_bytes == HEADER_BYTES
        assert stats.bytes_by_type["Fake"] == HEADER_BYTES

    def test_big_message_count(self):
        stats = MessageStats()
        stats.on_send(CpRstLike(A))
        stats.on_send(JoinWaitLike(A))
        stats.on_send(JoinNotiLike(A))
        stats.on_send(Fake(A))
        assert stats.big_message_count(A) == 3

    def test_sent_by_each_preserves_order(self):
        stats = MessageStats()
        stats.on_send(Fake(B))
        assert stats.sent_by_each([A, B], "Fake") == [0, 1]

    def test_snapshot_is_plain_dict(self):
        stats = MessageStats()
        stats.on_send(Fake(A))
        snap = stats.snapshot()
        assert snap == {"Fake": 1}
        snap["Fake"] = 99
        assert stats.count("Fake") == 1
