"""Unit tests for the transport layer."""

import pytest

from repro.ids.idspace import IdSpace
from repro.network.message import Message
from repro.network.node import NetworkNode
from repro.network.transport import Transport, UnknownDestinationError
from repro.sim.scheduler import Simulator
from repro.topology.attachment import ConstantLatencyModel

SPACE = IdSpace(4, 4)


class Ping(Message):
    type_name = "Ping"


class Pong(Message):
    type_name = "Pong"


class Echoer(NetworkNode):
    def __init__(self, node_id, transport):
        super().__init__(node_id, transport)
        self.received = []
        self.handles(Ping, self._on_ping)
        self.handles(Pong, self._on_pong)

    def _on_ping(self, msg):
        self.received.append(("ping", self.now))
        self.send(msg.sender, Pong(self.node_id))

    def _on_pong(self, msg):
        self.received.append(("pong", self.now))


def make_pair(delay=2.0):
    sim = Simulator()
    transport = Transport(sim, ConstantLatencyModel(delay))
    a = Echoer(SPACE.from_string("0000"), transport)
    b = Echoer(SPACE.from_string("1111"), transport)
    return sim, transport, a, b


class TestTransport:
    def test_delivery_with_latency(self):
        sim, transport, a, b = make_pair(delay=2.0)
        transport.send(b.node_id, Ping(a.node_id))
        sim.run()
        assert b.received == [("ping", 2.0)]
        assert a.received == [("pong", 4.0)]

    def test_unknown_destination_raises(self):
        sim, transport, a, b = make_pair()
        with pytest.raises(UnknownDestinationError):
            transport.send(SPACE.from_string("2222"), Ping(a.node_id))

    def test_duplicate_registration_rejected(self):
        sim, transport, a, b = make_pair()
        with pytest.raises(ValueError):
            Echoer(a.node_id, transport)

    def test_stats_count_sends(self):
        sim, transport, a, b = make_pair()
        transport.send(b.node_id, Ping(a.node_id))
        sim.run()
        assert transport.stats.count("Ping") == 1
        assert transport.stats.count("Pong") == 1
        assert transport.stats.total_messages == 2

    def test_node_lookup(self):
        sim, transport, a, b = make_pair()
        assert transport.node(a.node_id) is a
        assert transport.knows(b.node_id)
        assert not transport.knows(SPACE.from_string("3333"))
        with pytest.raises(UnknownDestinationError):
            transport.node(SPACE.from_string("3333"))

    def test_node_ids(self):
        sim, transport, a, b = make_pair()
        assert set(transport.node_ids) == {a.node_id, b.node_id}

    def test_unhandled_message_type_raises(self):
        sim, transport, a, b = make_pair()

        class Mystery(Message):
            type_name = "Mystery"

        transport.send(b.node_id, Mystery(a.node_id))
        with pytest.raises(NotImplementedError):
            sim.run()

    def test_send_to_self_allowed(self):
        sim, transport, a, b = make_pair()
        a.send(a.node_id, Ping(a.node_id))
        sim.run()
        # a pings itself, then pongs itself.
        assert ("ping", 2.0) in a.received
