"""Architecture lint: the protocol core must stay sans-io.

The refactor's load-bearing guarantee is that :mod:`repro.core` and
:mod:`repro.protocol` contain pure protocol logic -- runnable under the
virtual-time simulator, the asyncio runtime, or the effect interpreter
alike -- which holds only if neither can reach :mod:`repro.sim` (or
:mod:`asyncio`) through module-level imports.  This test walks the
import graph statically (AST, so nothing needs importing to check) and
fails on any path from a protected root into a forbidden module.

``TYPE_CHECKING`` blocks and imports inside function bodies are
exempt: they are not executed at import time and are the sanctioned
escape hatch for annotations and lazy (runtime-selected) dependencies.
"""

from __future__ import annotations

import ast
import pathlib
import subprocess
import sys
from typing import Dict, Iterator, Optional, Set

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Packages whose import closure must stay clean.
PROTECTED_ROOTS = ("repro.core", "repro.protocol")

#: Module prefixes the closure must not touch.
FORBIDDEN = ("repro.sim", "asyncio")


def _module_file(name: str) -> Optional[pathlib.Path]:
    """The source file for ``name``, or None for non-local modules."""
    base = SRC.joinpath(*name.split("."))
    package_init = base / "__init__.py"
    if package_init.exists():
        return package_init
    module_file = base.with_suffix(".py")
    return module_file if module_file.exists() else None


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _module_level_imports(path: pathlib.Path) -> Iterator[str]:
    """Names imported when the module is executed (import time).

    Recurses into module-level ``if``/``try``/``with`` blocks, skips
    ``if TYPE_CHECKING:`` bodies and everything inside function or
    class-method bodies (those run later, not at import).
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))

    def walk(body) -> Iterator[str]:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                # The repo uses absolute imports throughout; a relative
                # import would be a style break worth failing on.
                assert node.level == 0, (
                    f"{path}: relative import at line {node.lineno}"
                )
                if node.module is not None:
                    yield node.module
            elif isinstance(node, ast.If):
                if not _is_type_checking(node.test):
                    yield from walk(node.body)
                yield from walk(node.orelse)
            elif isinstance(node, ast.Try):
                for sub in (node.body, node.orelse, node.finalbody):
                    yield from walk(sub)
                for handler in node.handlers:
                    yield from walk(handler.body)
            elif isinstance(node, (ast.With, ast.ClassDef)):
                yield from walk(node.body)

    yield from walk(tree.body)


def _expand(name: str) -> Iterator[str]:
    """A module plus every ancestor package (their __init__ runs too)."""
    parts = name.split(".")
    for i in range(1, len(parts) + 1):
        yield ".".join(parts[:i])


def _submodules(package: str) -> Iterator[str]:
    """Every module under ``package`` (the roots are whole packages)."""
    base = SRC.joinpath(*package.split("."))
    for path in sorted(base.rglob("*.py")):
        relative = path.relative_to(SRC).with_suffix("")
        parts = list(relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        yield ".".join(parts)


def import_closure(roots) -> Dict[str, Set[str]]:
    """BFS the static import graph from ``roots``.

    Returns ``{module: imported_names}`` for every reachable local
    module; non-local imports appear in the value sets but are not
    expanded.
    """
    queue = []
    for root in roots:
        queue.extend(_submodules(root))
    closure: Dict[str, Set[str]] = {}
    while queue:
        module = queue.pop()
        if module in closure:
            continue
        path = _module_file(module)
        if path is None:
            continue  # stdlib or third-party: recorded by the importer
        imports = set(_module_level_imports(path))
        closure[module] = imports
        for imported in imports:
            for expanded in _expand(imported):
                if expanded not in closure and _module_file(expanded):
                    queue.append(expanded)
    return closure


class TestSansIoCore:
    def test_core_and_protocol_never_import_sim_or_asyncio(self):
        closure = import_closure(PROTECTED_ROOTS)
        offenders = []
        for module, imports in sorted(closure.items()):
            for imported in sorted(imports):
                if any(
                    imported == bad or imported.startswith(bad + ".")
                    for bad in FORBIDDEN
                ):
                    offenders.append(f"{module} imports {imported}")
        assert not offenders, (
            "sans-io violation -- protocol core reaches an execution "
            "substrate at import time:\n  " + "\n  ".join(offenders)
        )

    def test_closure_is_nontrivial(self):
        """Guard the lint itself: the walk must actually see the core."""
        closure = import_closure(PROTECTED_ROOTS)
        for expected in (
            "repro.core.machine",
            "repro.protocol.node",
            "repro.network.transport",
            "repro.runtime.interface",
        ):
            assert expected in closure, expected

    def test_fresh_import_loads_no_sim(self):
        """Runtime confirmation of the static lint: importing the pure
        core in a fresh interpreter must not pull in repro.sim."""
        code = (
            "import sys; import repro.core.machine; "
            "bad = [m for m in sys.modules if m.startswith('repro.sim')]; "
            "assert not bad, bad"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(SRC)},
        )

    def test_transport_simulator_shim_removed(self):
        """The PR-4 ``transport.simulator`` deprecation shim lasted its
        promised one release and is gone; ``runtime`` is the only
        spelling."""
        from repro.network.transport import Transport
        from repro.runtime import create_runtime
        from repro.topology.attachment import ConstantLatencyModel

        transport = Transport(create_runtime("sim"), ConstantLatencyModel())
        assert not hasattr(transport, "simulator")
        assert transport.runtime is not None
