"""Neighbor-table optimization (extension; paper's problem 3)."""

import random

import pytest

from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.optimize import measure_stretch, optimize_tables

from tests.conftest import build_network, make_ids


def topology_network(n=150, seed=0):
    workload = make_workload(
        base=16,
        num_digits=8,
        n=n,
        m=1,
        seed=seed,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    workload.start_all_joins()
    workload.run()
    return workload.network


class TestOptimization:
    def test_preserves_consistency(self):
        net = topology_network(seed=1)
        assert net.check_consistency().consistent
        optimize_tables(net)
        assert net.check_consistency().consistent

    def test_reduces_stretch(self):
        net = topology_network(seed=2)
        before = measure_stretch(net, sample_pairs=150)
        optimize_tables(net)
        after = measure_stretch(net, sample_pairs=150)
        assert after.mean_stretch < before.mean_stretch
        assert after.mean_route_latency < before.mean_route_latency

    def test_converges(self):
        net = topology_network(seed=3)
        report = optimize_tables(net, max_rounds=6)
        assert report.converged
        # A converged network does not switch again.
        again = optimize_tables(net, max_rounds=2)
        assert again.total_switches == 0
        assert again.rounds == 1

    def test_reverse_records_follow_switches(self):
        net = topology_network(seed=4)
        optimize_tables(net)
        tables = net.tables()
        for node_id, table in tables.items():
            for entry in table.entries():
                if entry.node == node_id:
                    continue
                assert node_id in tables[entry.node].reverse_neighbors(
                    entry.level, entry.digit
                )

    def test_switch_counting(self):
        net = topology_network(seed=5)
        report = optimize_tables(net)
        per_node = sum(
            node.optimization_switches for node in net.nodes.values()
        )
        assert per_node == report.total_switches
        assert report.total_switches > 0

    def test_leave_still_works_after_optimization(self):
        """Reverse-neighbor bookkeeping survives primary switches, so
        the leave protocol still repairs everyone who points at the
        leaver."""
        net = topology_network(n=60, seed=6)
        optimize_tables(net)
        members = net.member_ids()
        rng = random.Random(1)
        from repro.protocol.leave import leave_sequentially

        leave_sequentially(net, rng.sample(members, 10))
        assert net.check_consistency().consistent


class TestStretchMetric:
    def test_stretch_at_least_one_on_topology(self):
        net = topology_network(n=80, seed=7)
        report = measure_stretch(net, sample_pairs=100)
        assert report.mean_stretch >= 1.0
        assert report.max_stretch >= report.mean_stretch
        assert report.pairs == 100

    def test_requires_two_members(self):
        space, ids = make_ids(4, 4, 1, seed=8)
        net = build_network(space, ids, seed=8)
        with pytest.raises(ValueError):
            measure_stretch(net)
