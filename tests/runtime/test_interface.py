"""Runtime contract conformance: both adapters, one test suite."""

import pytest

from repro.runtime import RUNTIME_KINDS, create_runtime
from repro.runtime.interface import (
    Mailbox,
    Runtime,
    SchedulingError,
    TimerHandle,
)


@pytest.fixture(params=RUNTIME_KINDS)
def runtime(request):
    rt = create_runtime(
        request.param,
        # Fast wall clock for the asyncio adapter; "sim" takes no options.
        **({"time_scale": 0.0001} if request.param == "asyncio" else {}),
    )
    yield rt
    close = getattr(rt, "close", None)
    if close is not None:
        close()


class TestFactory:
    def test_kinds(self):
        assert create_runtime("sim").name == "sim"
        with create_runtime("asyncio") as rt:
            assert rt.name == "asyncio"

    def test_default_is_sim(self):
        assert create_runtime().name == "sim"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime kind"):
            create_runtime("trio")

    def test_sim_runtime_is_a_simulator(self):
        """The virtual adapter *is* the simulator (zero indirection on
        the hot path), so golden traces cannot shift."""
        from repro.sim.scheduler import Simulator

        assert isinstance(create_runtime("sim"), Simulator)

    def test_bare_simulator_satisfies_contract(self):
        """Structural typing: pre-refactor code constructing
        ``Transport(Simulator(), ...)`` still satisfies Runtime."""
        from repro.sim.scheduler import Simulator

        assert isinstance(Simulator(), Runtime)


class TestContract:
    def test_satisfies_runtime_protocol(self, runtime):
        assert isinstance(runtime, Runtime)

    def test_schedule_runs_action(self, runtime):
        ran = []
        runtime.schedule(1.0, ran.append, "payload")
        runtime.schedule(2.0, lambda: ran.append("thunk"))
        assert runtime.run() == 2
        assert ran == ["payload", "thunk"]
        assert runtime.quiesced()

    def test_timer_handle_cancel(self, runtime):
        ran = []
        handle = runtime.schedule(1.0, ran.append, "x")
        assert isinstance(handle, TimerHandle)
        handle.cancel()
        assert handle.cancelled
        runtime.run()
        assert ran == []
        assert runtime.quiesced()

    def test_cancel_is_idempotent(self, runtime):
        handle = runtime.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        runtime.run()
        assert runtime.quiesced()

    def test_cancel_after_fire_is_noop(self, runtime):
        ran = []
        handle = runtime.schedule(0.5, ran.append, 1)
        runtime.run()
        handle.cancel()
        assert ran == [1]
        assert not handle.cancelled

    def test_now_advances(self, runtime):
        seen = []
        runtime.schedule(5.0, lambda: seen.append(runtime.now))
        runtime.run()
        assert seen and seen[0] >= 5.0

    def test_schedule_at(self, runtime):
        seen = []
        runtime.schedule_at(3.0, lambda: seen.append(runtime.now))
        runtime.run()
        assert seen and seen[0] >= 3.0

    def test_negative_delay_rejected(self, runtime):
        with pytest.raises(SchedulingError):
            runtime.schedule(-1.0, lambda: None)

    def test_max_events_bound(self, runtime):
        ran = []
        for i in range(5):
            runtime.schedule(float(i + 1), ran.append, i)
        assert runtime.run(max_events=2) == 2
        assert not runtime.quiesced()
        runtime.run()
        assert sorted(ran) == [0, 1, 2, 3, 4]

    def test_event_listener_chaining(self, runtime):
        first, second = [], []
        runtime.add_event_listener(lambda now, pending: first.append(pending))
        runtime.add_event_listener(lambda now, pending: second.append(pending))
        runtime.schedule(1.0, lambda: None)
        runtime.schedule(2.0, lambda: None)
        runtime.run()
        assert first == second == [1, 0]

    def test_run_not_reentrant(self, runtime):
        errors = []

        def reenter():
            try:
                runtime.run()
            except Exception as exc:  # noqa: BLE001 - recording for assert
                errors.append(exc)

        runtime.schedule(1.0, reenter)
        runtime.run()
        assert len(errors) == 1

    def test_actions_scheduled_during_run_execute(self, runtime):
        ran = []

        def chain(depth=3):
            ran.append(depth)
            if depth:
                runtime.schedule(1.0, lambda: chain(depth - 1))

        runtime.schedule(1.0, chain)
        runtime.run()
        assert ran == [3, 2, 1, 0]
        assert runtime.quiesced()


class TestMailbox:
    def test_fifo(self):
        box = Mailbox()
        assert not box and len(box) == 0
        box.put(1)
        box.put(2)
        box.put(3)
        assert list(box) == [1, 2, 3]
        assert [box.pop(), box.pop(), box.pop()] == [1, 2, 3]
        assert not box

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Mailbox().pop()
