"""The UDP-ready wire codec: every protocol message must survive bytes.

The strongest test here substitutes the *decoded clone* for every
message a real run delivers -- the network literally runs over the
wire format -- and still reaches Definition 3.8 consistency.
"""

import json

import pytest

from repro.network.message import Message
from repro.runtime.codec import (
    MAX_DATAGRAM_BYTES,
    CodecError,
    MalformedWireError,
    OversizedMessageError,
    UnknownMessageTypeError,
    UnknownWireTagError,
    _all_slots,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
    message_from_obj,
    message_registry,
    message_to_obj,
)
from tests.conftest import (
    assert_network_correct,
    build_network,
    make_ids,
    run_joins,
)

#: Every wire message the protocol stack can emit today.
EXPECTED_TYPES = {
    # join
    "CpRstMsg", "CpRlyMsg", "JoinWaitMsg", "JoinWaitRlyMsg",
    "JoinNotiMsg", "JoinNotiRlyMsg", "InSysNotiMsg", "SpeNotiMsg",
    "SpeNotiRlyMsg", "RvNghNotiMsg", "RvNghNotiRlyMsg", "RvNghDropMsg",
    # leave
    "LeaveNotifyMsg", "LeaveNotifyRlyMsg", "LeaveForgetMsg",
    # recovery
    "PingMsg", "PongMsg", "AdvertiseMsg", "RepairFindMsg",
    "RepairFindRlyMsg",
    # locality optimization
    "OptFindMsg", "OptFindRlyMsg",
}


def _slot_values(message: Message):
    return {
        slot: getattr(message, slot) for slot in _all_slots(type(message))
    }


class TestRegistry:
    def test_covers_the_wire_protocol(self):
        registry = message_registry()
        assert EXPECTED_TYPES <= set(registry), (
            EXPECTED_TYPES - set(registry)
        )

    def test_keys_match_type_names(self):
        for name, cls in message_registry().items():
            assert cls.type_name == name


class TestRoundTrip:
    def test_network_runs_over_the_wire_format(self):
        """Every reliable send is encoded to bytes and the *decoded
        clone* is delivered instead; joins must still converge."""
        space, ids = make_ids(4, 3, 14, seed=21)
        network = build_network(space, ids[:10], seed=21)
        transport = network.transport
        original_send = transport.send
        mismatches = []
        seen_types = set()

        def wire_send(dst, message):
            clone = decode_message(
                encode_message(message, enforce_datagram_limit=True)
            )
            if _slot_values(clone) != _slot_values(message):
                mismatches.append(message.type_name)
            seen_types.add(message.type_name)
            original_send(dst, clone)

        transport.send = wire_send
        run_joins(network, ids[10:])
        assert_network_correct(network)
        assert not mismatches
        # The run must have exercised the interesting (table-carrying)
        # encodings, not just headers.
        assert {"CpRstMsg", "CpRlyMsg", "JoinNotiMsg"} <= seen_types

    def test_causal_stamps_survive_the_wire(self):
        space, ids = make_ids(4, 3, 3, seed=5)
        message = message_registry()["CpRstMsg"](ids[0])
        message.msg_id, message.parent_id, message.trace_id = 7, 3, 1
        clone = decode_message(encode_message(message))
        assert (clone.msg_id, clone.parent_id, clone.trace_id) == (7, 3, 1)
        assert clone.sender == ids[0]


class _BlobMsg(Message):
    """Test-only message with an arbitrarily large payload."""

    __slots__ = ("blob",)
    type_name = "_BlobMsg"

    def __init__(self, sender, blob: str):
        super().__init__(sender)
        self.blob = blob


class TestDatagramLimit:
    def test_oversized_message_rejected_when_enforcing(self):
        space, ids = make_ids(4, 3, 1, seed=1)
        big = _BlobMsg(ids[0], "x" * (MAX_DATAGRAM_BYTES + 1))
        with pytest.raises(OversizedMessageError, match="_BlobMsg"):
            encode_message(big, enforce_datagram_limit=True)
        # Without enforcement the encoding itself still works.
        assert len(encode_message(big)) > MAX_DATAGRAM_BYTES

    def test_adhoc_subclasses_cannot_shadow_wire_types(self):
        """A test fake (or experiment probe) reusing a real
        ``type_name`` must not hijack decoding for that type."""
        from repro.protocol.messages import CpRstMsg

        class CpRstLike(Message):
            type_name = "CpRstMsg"

        registry = message_registry(refresh=True)
        assert registry["CpRstMsg"] is CpRstMsg
        assert "_BlobMsg" not in registry  # outside MESSAGE_MODULES


class TestMalformedWire:
    """Every decode failure mode maps to a precise CodecError subclass
    (the real-wire transport keys its accounting on these)."""

    def test_unknown_type_rejected(self):
        wire = json.dumps({"t": "NoSuchMsg", "f": {}}).encode()
        with pytest.raises(UnknownMessageTypeError) as excinfo:
            decode_message(wire)
        assert excinfo.value.type_name == "NoSuchMsg"

    def test_not_json_rejected(self):
        with pytest.raises(MalformedWireError, match="undecodable"):
            decode_message(b"\xff not json")

    def test_truncated_payload_rejected(self):
        space, ids = make_ids(4, 3, 1, seed=9)
        wire = encode_message(message_registry()["CpRstMsg"](ids[0]))
        for cut in (1, len(wire) // 2, len(wire) - 1):
            with pytest.raises(MalformedWireError, match="undecodable"):
                decode_message(wire[:cut])

    def test_non_object_envelope_rejected(self):
        with pytest.raises(MalformedWireError, match="must be an object"):
            decode_message(b'["t", "f"]')

    def test_envelope_missing_keys_rejected(self):
        with pytest.raises(MalformedWireError, match="missing key 'f'"):
            decode_message(b'{"t": "CpRstMsg"}')

    def test_missing_field_rejected(self):
        space, ids = make_ids(4, 3, 1, seed=3)
        wire = encode_message(message_registry()["PingMsg"](ids[0], 1.0, 0))
        envelope = json.loads(wire)
        del envelope["f"]["sender"]
        with pytest.raises(MalformedWireError, match="missing field"):
            decode_message(json.dumps(envelope).encode())

    def test_unknown_tagged_value_rejected(self):
        wire = json.dumps(
            {"t": "CpRstMsg", "f": {
                "sender": {"$nope": 1}, "msg_id": None,
                "parent_id": None, "trace_id": None,
            }}
        ).encode()
        with pytest.raises(UnknownWireTagError, match=r"\$nope"):
            decode_message(wire)

    def test_unknown_enum_type_rejected(self):
        with pytest.raises(UnknownWireTagError) as excinfo:
            decode_value({"$en": ["NoSuchEnum", "S"]})
        assert excinfo.value.tag == "$en"

    def test_unknown_named_tuple_rejected(self):
        with pytest.raises(UnknownWireTagError) as excinfo:
            decode_value({"$nt": ["NoSuchTuple", []]})
        assert excinfo.value.tag == "$nt"

    def test_every_error_is_a_codec_error(self):
        for exc_type in (
            MalformedWireError,
            OversizedMessageError,
            UnknownMessageTypeError,
            UnknownWireTagError,
        ):
            assert issubclass(exc_type, CodecError)

    def test_unencodable_value_rejected(self):
        space, ids = make_ids(4, 3, 1, seed=4)
        with pytest.raises(CodecError, match="cannot encode"):
            encode_message(_BlobMsg(ids[0], object()))


class TestObjLevelApi:
    """The dict-level envelope API used by the real-wire frame format."""

    def test_obj_round_trip(self):
        space, ids = make_ids(4, 3, 2, seed=5)
        message = message_registry()["RvNghNotiMsg"](
            ids[0], 1, 2, decode_value({"$en": ["NeighborState", "T"]})
        )
        obj = message_to_obj(message)
        clone = message_from_obj(obj)
        assert _slot_values(clone) == _slot_values(message)

    def test_obj_matches_byte_form(self):
        space, ids = make_ids(4, 3, 1, seed=6)
        message = message_registry()["CpRstMsg"](ids[0])
        assert json.loads(encode_message(message)) == message_to_obj(message)

    def test_value_round_trip(self):
        space, ids = make_ids(4, 3, 2, seed=7)
        values = [ids[0], (ids[0], 3, "x"), frozenset([1, 2]), None, 1.5]
        for value in values:
            assert decode_value(
                json.loads(json.dumps(encode_value(value)))
            ) == value
