"""AsyncioRuntime specifics; contract conformance lives in
``test_interface.py`` (shared with the virtual-time adapter)."""

import time

import pytest

from repro.runtime.interface import WallClockBudgetExceeded
from repro.runtime.realtime import AsyncioRuntime

#: Fast wall clock for tests: one protocol unit is 0.1 ms.
FAST = 1e-4


class TestTimeScale:
    def test_must_be_positive(self):
        for bad in (0.0, -0.001):
            with pytest.raises(ValueError, match="time_scale"):
                AsyncioRuntime(time_scale=bad)

    def test_now_is_in_protocol_units(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:
            time.sleep(0.01)  # 0.01 s = 100 protocol units at FAST
            assert runtime.now >= 50.0


class TestWallBudget:
    def test_non_quiescing_run_raises(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:

            def tick() -> None:  # reschedules forever: never quiesces
                runtime.schedule(1.0, tick)

            runtime.schedule(0.0, tick)
            with pytest.raises(WallClockBudgetExceeded, match="quiesce"):
                runtime.run(wall_budget=0.05)

    def test_quick_run_fits_budget(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:
            ran = []
            runtime.schedule(1.0, ran.append, "x")
            assert runtime.run(wall_budget=10.0) == 1
            assert ran == ["x"]
            assert runtime.quiesced()


class TestScheduleAt:
    def test_past_deadline_clamps_to_immediately(self):
        """Real time cannot rewind: joins started "at t=0" a moment
        after construction must run, not raise (unlike the sim)."""
        with AsyncioRuntime(time_scale=FAST) as runtime:
            time.sleep(0.005)  # ensure now is clearly past t=0
            assert runtime.now > 0.0
            ran = []
            runtime.schedule_at(0.0, ran.append, "late")
            runtime.run()
            assert ran == ["late"]


class TestDispatchAtomicity:
    def test_cancel_between_expiry_and_dispatch(self):
        """A handler cancelling a timer already moved to the mailbox
        must still win: the dispatcher skips cancelled actions."""
        with AsyncioRuntime(time_scale=FAST) as runtime:
            ran = []
            handles = {}
            runtime.schedule(0.0, lambda: handles["victim"].cancel())
            handles["victim"] = runtime.schedule(0.0, ran.append, "victim")
            runtime.run()
            assert ran == []
            assert handles["victim"].cancelled
            assert runtime.quiesced()


class TestCounters:
    def test_events_fired_and_pending(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:
            for i in range(3):
                runtime.schedule(float(i), lambda: None)
            assert runtime.pending_events == 3
            assert runtime.events_fired == 0
            runtime.run()
            assert runtime.pending_events == 0
            assert runtime.events_fired == 3


class TestUntilBound:
    def test_far_timers_survive_a_bounded_run(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:
            ran = []
            runtime.schedule(1.0, ran.append, "near")
            far = runtime.schedule(100_000.0, ran.append, "far")
            runtime.run(until=100.0)
            assert ran == ["near"]
            assert not runtime.quiesced()
            far.cancel()
            assert runtime.quiesced()


class TestLifecycle:
    def test_close_is_idempotent(self):
        runtime = AsyncioRuntime(time_scale=FAST)
        runtime.close()
        runtime.close()

    def test_context_manager_closes(self):
        with AsyncioRuntime(time_scale=FAST) as runtime:
            pass
        with pytest.raises(RuntimeError):
            runtime.schedule(1.0, lambda: None)
