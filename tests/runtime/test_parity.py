"""Runtime parity: one protocol core, two execution substrates.

The virtual-time adapter must reproduce the committed golden trace
*byte for byte* (the refactor moved the scheduler behind the Runtime
contract; this pins that nothing about event ordering shifted).  The
asyncio adapter must drive the identical core to the paper's
Definition 3.8 consistency under a wall-clock budget, with the
observability stack (tracer, metrics, live auditor) attached the same
way it attaches to the simulator.
"""

import pathlib

from repro.experiments.workloads import make_workload
from repro.obs import Observability, write_trace_jsonl
from repro.runtime import create_runtime

GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "obs" / "golden" / "small_run.jsonl"
)

#: Fast wall clock: one protocol unit is 0.1 ms, so the 1-100 unit
#: latency model behaves like a 0.1-10 ms network.
FAST = 1e-4


class TestVirtualTimeParity:
    def test_golden_trace_is_byte_identical(self, tmp_path):
        """The exact recipe of tests/obs/make_golden.py, replayed
        through the runtime abstraction into a scratch file."""
        obs = Observability.tracing()
        workload = make_workload(
            base=3, num_digits=3, n=10, m=3, seed=11, obs=obs
        )
        workload.start_all_joins()
        workload.run()
        assert workload.network.check_consistency().consistent
        out = tmp_path / "small_run.jsonl"
        write_trace_jsonl(obs.tracer, str(out))
        assert out.read_bytes() == GOLDEN.read_bytes()


class TestAsyncioParity:
    def test_small_run_reaches_consistency(self):
        obs = Observability.tracing()
        with create_runtime("asyncio", time_scale=FAST) as runtime:
            workload = make_workload(
                base=4, num_digits=3, n=10, m=4, seed=3,
                obs=obs, runtime=runtime,
            )
            auditor = workload.network.attach_auditor()
            workload.start_all_joins()
            workload.run(wall_budget=60.0)
            assert runtime.quiesced()

            network = workload.network
            assert network.all_in_system()  # Theorem 2
            assert network.check_consistency().consistent  # Theorem 1
            report = auditor.finalize()
            assert report.passed, [str(i) for i in report.hard_incidents]

            # The obs stack observed the run exactly as it does under
            # the simulator: message events traced, join latencies in
            # the registry's histogram.
            assert obs.tracer.events("message.send")
            assert obs.metrics.histogram("join_latency").count == 4

    def test_sim_and_asyncio_agree_on_final_tables(self):
        """Wall-clock reordering may change message interleavings, but
        both substrates must converge to *a* consistent network over
        the same membership."""

        def final_statuses(runtime):
            workload = make_workload(
                base=4, num_digits=3, n=8, m=3, seed=9, runtime=runtime
            )
            workload.start_all_joins()
            workload.run(
                wall_budget=60.0 if runtime is not None else None
            )
            net = workload.network
            assert net.check_consistency().consistent
            return {str(n) for n in net.nodes}

        sim_members = final_statuses(None)
        with create_runtime("asyncio", time_scale=FAST) as runtime:
            asyncio_members = final_statuses(runtime)
        assert sim_members == asyncio_members
