"""Failure-detection timers over the runtime Timer API (cancel
semantics): cancel-before-fire must leave no trace, fire-after-peer-
death must suspect exactly the dead peer's positions."""

from repro.recovery import fail_nodes
from tests.conftest import MAX_EVENTS, build_network, make_ids


def _network(seed=3, n=20):
    space, ids = make_ids(4, 4, n, seed=seed)
    return build_network(space, ids, seed=seed), ids


class TestCancelBeforeFire:
    def test_cancelled_sweep_suspects_nobody(self):
        net, ids = _network()
        node = net.nodes[ids[0]]
        node.begin_failure_detection(timeout=10_000.0)
        assert node.cancel_failure_detection() is True
        # The in-flight pings still complete, but the armed timeout
        # never fires: nothing may be suspected and the run quiesces
        # (a leaked timer would show up as a pending event).
        net.run(max_events=MAX_EVENTS)
        assert net.runtime.quiesced()
        assert node.suspected_positions == set()

    def test_cancel_is_idempotent(self):
        net, ids = _network()
        node = net.nodes[ids[0]]
        node.begin_failure_detection(timeout=10_000.0)
        assert node.cancel_failure_detection() is True
        assert node.cancel_failure_detection() is False

    def test_cancel_without_sweep_is_noop(self):
        net, ids = _network()
        assert net.nodes[ids[0]].cancel_failure_detection() is False

    def test_cancelled_sweep_can_be_rearmed(self):
        """Cancel, then run a real sweep against a dead peer: the
        second sweep must work as if the first never happened."""
        net, ids = _network(seed=4)
        node = net.nodes[ids[0]]
        node.begin_failure_detection(timeout=10_000.0)
        assert node.cancel_failure_detection() is True
        # Drain the aborted sweep's in-flight pings/pongs before the
        # crash, so the second sweep observes a cleanly dead peer.
        net.run(max_events=MAX_EVENTS)

        victim = next(
            iter(node.table.distinct_neighbors() - {node.node_id})
        )
        expected = set(node.table.positions_of(victim))
        fail_nodes(net, [victim])
        node.begin_failure_detection(timeout=10_000.0)
        net.run(max_events=MAX_EVENTS)
        assert node.suspected_positions == expected


class TestFireAfterPeerDeath:
    def test_dead_neighbor_positions_become_suspected(self):
        net, ids = _network(seed=5)
        node = net.nodes[ids[0]]
        victim = next(
            iter(node.table.distinct_neighbors() - {node.node_id})
        )
        expected = set(node.table.positions_of(victim))
        assert expected

        fail_nodes(net, [victim])
        node.begin_failure_detection(timeout=10_000.0)
        net.run(max_events=MAX_EVENTS)
        assert node.suspected_positions == expected
        # Live neighbors all answered in time: only the dead peer's
        # positions are suspected, and the sweep is over.
        assert node.cancel_failure_detection() is False

    def test_all_live_sweep_suspects_nobody(self):
        net, ids = _network(seed=6)
        node = net.nodes[ids[0]]
        node.begin_failure_detection(timeout=10_000.0)
        net.run(max_events=MAX_EVENTS)
        assert node.suspected_positions == set()
        assert node.cancel_failure_detection() is False
