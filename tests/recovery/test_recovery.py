"""Failure detection and recovery (extension; Section 7 future work)."""

import random

import pytest

from repro.recovery import fail_nodes, recover_from_failures

from tests.conftest import build_network, make_ids


def failed_network(n=50, kill=10, seed=0):
    space, ids = make_ids(4, 4, n, seed=seed)
    net = build_network(space, ids, seed=seed)
    rng = random.Random(seed + 100)
    victims = rng.sample(ids, kill)
    fail_nodes(net, victims)
    return net, ids, victims


class TestFailureInjection:
    def test_failed_nodes_removed_from_membership(self):
        net, ids, victims = failed_network()
        for victim in victims:
            assert victim not in net.nodes
            assert net.has_departed(victim)
            assert not net.transport.knows(victim)

    def test_failures_break_consistency(self):
        net, ids, victims = failed_network()
        report = net.check_consistency()
        assert not report.consistent
        # Dangling pointers show up as non-member occupants.
        kinds = report.by_kind()
        assert kinds.get("bad_occupant", 0) > 0

    def test_lossy_sends_to_dead_are_dropped(self):
        net, ids, victims = failed_network()
        from repro.recovery.messages import PingMsg

        live = next(iter(net.nodes))
        assert not net.transport.send_lossy(
            victims[0], PingMsg(live, 0.0)
        )
        assert net.stats.total_dropped == 1


class TestRecovery:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_recovery_moderate_failures(self, seed):
        net, ids, victims = failed_network(n=50, kill=10, seed=seed)
        report = recover_from_failures(net)
        assert report.consistent, str(report)
        assert report.repaired_entries > 0
        assert net.check_consistency().consistent

    def test_recovery_heavy_failures(self):
        """30% dead: TTL escalation finds distant candidates."""
        net, ids, victims = failed_network(n=60, kill=18, seed=3)
        report = recover_from_failures(net)
        assert report.consistent, str(report)

    def test_no_dangling_pointers_after_recovery(self):
        net, ids, victims = failed_network(seed=5)
        recover_from_failures(net)
        dead = set(victims)
        for node_id, table in net.tables().items():
            assert not (table.distinct_neighbors() & dead)
            assert not (table.all_reverse_neighbors() & dead)

    def test_classes_that_died_are_cleared(self):
        """Kill every node of one suffix class: entries for it must
        end up null, not repaired."""
        space = make_ids(4, 4, 0)[0]
        members = [
            space.from_string(s)
            for s in ["3210", "1110", "0001", "1111", "2221", "0002"]
        ]
        net = build_network(space, members, seed=6)
        # The entire "...0" class: 3210 and 1110.
        fail_nodes(net, [members[0], members[1]])
        report = recover_from_failures(net)
        assert report.consistent
        assert report.cleared_entries > 0
        for node_id, table in net.tables().items():
            assert table.get(0, 0) is None

    def test_recovery_idempotent_when_nothing_failed(self):
        space, ids = make_ids(4, 4, 30, seed=7)
        net = build_network(space, ids, seed=7)
        report = recover_from_failures(net)
        assert report.consistent
        assert report.initially_suspected == 0
        assert report.repaired_entries == 0
        assert report.cleared_entries == 0

    def test_join_after_recovery(self):
        """The repaired network accepts new joins normally."""
        net, ids, victims = failed_network(seed=8)
        recover_from_failures(net)
        space = ids[0]
        from repro.ids.idspace import IdSpace

        idspace = IdSpace(4, 4)
        rng = random.Random(999)
        joiners = idspace.random_unique_ids(5, rng, exclude=ids)
        for joiner in joiners:
            net.start_join(
                joiner, gateway=next(iter(net.nodes)), at=net.simulator.now
            )
        net.run()
        assert net.all_in_system()
        assert net.check_consistency().consistent

    def test_report_accounting(self):
        net, ids, victims = failed_network(seed=9)
        report = recover_from_failures(net)
        assert report.rounds >= 1
        assert report.initially_suspected > 0
        assert (
            report.repaired_entries + report.cleared_entries
            >= report.initially_suspected
        )

    def test_routing_works_after_recovery(self):
        net, ids, victims = failed_network(seed=10)
        recover_from_failures(net)
        members = net.member_ids()
        for source in members[:10]:
            for target in members[:10]:
                assert net.route(source, target).success
