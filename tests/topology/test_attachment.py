"""Unit tests for host attachment and latency models."""

import random

import pytest

from repro.ids.idspace import IdSpace
from repro.topology.attachment import (
    ConstantLatencyModel,
    HostAttachment,
    TopologyLatencyModel,
    UniformLatencyModel,
)
from repro.topology.transit_stub import (
    TransitStubParams,
    generate_transit_stub,
)

SMALL = TransitStubParams(
    num_transit_domains=2,
    transit_domain_size=2,
    stubs_per_transit_router=2,
    stub_size=3,
)


class TestConstantLatency:
    def test_constant(self):
        model = ConstantLatencyModel(2.5)
        assert model.latency("a", "b") == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLatencyModel(0.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatencyModel(random.Random(1), low=2.0, high=9.0)
        for _ in range(100):
            value = model.latency("a", "b")
            assert 2.0 <= value <= 9.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(random.Random(1), low=5.0, high=2.0)
        with pytest.raises(ValueError):
            UniformLatencyModel(random.Random(1), low=0.0, high=2.0)


class TestHostAttachment:
    def setup_method(self):
        self.topo = generate_transit_stub(SMALL, random.Random(0))
        space = IdSpace(4, 4)
        self.hosts = space.random_unique_ids(10, random.Random(1))
        self.attachment = HostAttachment(
            self.topo, self.hosts, random.Random(2)
        )

    def test_hosts_attach_to_stub_routers(self):
        stub_routers = set(self.topo.stub_routers)
        for host in self.hosts:
            assert self.attachment.router_of(host) in stub_routers

    def test_access_latency_positive(self):
        for host in self.hosts:
            assert self.attachment.access_latency(host) > 0

    def test_add_host(self):
        self.attachment.add_host("extra", self.topo.stub_routers[0], 1.5)
        assert self.attachment.router_of("extra") == self.topo.stub_routers[0]
        assert self.attachment.access_latency("extra") == 1.5

    def test_hosts_listing(self):
        assert set(self.attachment.hosts) == set(self.hosts)


class TestTopologyLatencyModel:
    def setup_method(self):
        self.topo = generate_transit_stub(SMALL, random.Random(0))
        space = IdSpace(4, 4)
        self.hosts = space.random_unique_ids(10, random.Random(1))
        self.attachment = HostAttachment(
            self.topo, self.hosts, random.Random(2)
        )
        self.model = TopologyLatencyModel(self.topo, self.attachment)

    def test_self_latency_zero(self):
        assert self.model.latency(self.hosts[0], self.hosts[0]) == 0.0

    def test_symmetric(self):
        a, b = self.hosts[0], self.hosts[1]
        assert self.model.latency(a, b) == self.model.latency(b, a)

    def test_includes_access_links(self):
        a, b = self.hosts[0], self.hosts[1]
        floor = self.attachment.access_latency(a) + self.attachment.access_latency(b)
        assert self.model.latency(a, b) >= floor

    def test_deterministic_per_pair(self):
        a, b = self.hosts[2], self.hosts[3]
        assert self.model.latency(a, b) == self.model.latency(a, b)
