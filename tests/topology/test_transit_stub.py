"""Unit tests for the transit-stub generator."""

import random

import pytest

from repro.topology.transit_stub import (
    TransitStubParams,
    generate_transit_stub,
)

SMALL = TransitStubParams(
    num_transit_domains=2,
    transit_domain_size=3,
    stubs_per_transit_router=2,
    stub_size=4,
)


class TestParams:
    def test_default_router_count_matches_paper(self):
        # The paper's Figure 15(b) topology has 8320 routers.
        assert TransitStubParams().num_routers == 8320

    def test_counts(self):
        assert SMALL.num_transit_routers == 6
        assert SMALL.num_stub_domains == 12
        assert SMALL.num_routers == 6 + 12 * 4


class TestGeneration:
    def setup_method(self):
        self.topo = generate_transit_stub(SMALL, random.Random(1))

    def test_router_counts(self):
        assert self.topo.num_routers == SMALL.num_routers
        assert len(self.topo.transit_routers) == 6
        assert len(self.topo.stubs) == 12
        assert len(self.topo.stub_routers) == 48

    def test_core_is_connected(self):
        assert self.topo.core.is_connected()

    def test_stubs_are_connected(self):
        for stub in self.topo.stubs:
            assert stub.graph.is_connected()

    def test_stub_router_ids_disjoint_from_transit(self):
        transit = set(self.topo.transit_routers)
        for stub in self.topo.stubs:
            assert not transit & set(stub.routers)

    def test_is_transit_partition(self):
        for router in self.topo.transit_routers:
            assert self.topo.is_transit(router)
        for router in self.topo.stub_routers:
            assert not self.topo.is_transit(router)

    def test_gateways_valid(self):
        for stub in self.topo.stubs:
            assert stub.gateway_stub_router in stub.routers
            assert stub.gateway_transit_router in self.topo.transit_routers
            assert stub.gateway_latency > 0

    def test_stub_of_mapping(self):
        for stub in self.topo.stubs:
            for router in stub.routers:
                assert self.topo.stub_of[router] is stub

    def test_each_transit_router_has_its_stub_quota(self):
        per_transit = {}
        for stub in self.topo.stubs:
            per_transit.setdefault(stub.gateway_transit_router, 0)
            per_transit[stub.gateway_transit_router] += 1
        assert all(
            count == SMALL.stubs_per_transit_router
            for count in per_transit.values()
        )
        assert len(per_transit) == SMALL.num_transit_routers

    def test_deterministic_for_seed(self):
        a = generate_transit_stub(SMALL, random.Random(5))
        b = generate_transit_stub(SMALL, random.Random(5))
        assert sorted(a.core.edges()) == sorted(b.core.edges())
        assert [s.gateway_stub_router for s in a.stubs] == [
            s.gateway_stub_router for s in b.stubs
        ]

    def test_rejects_empty_domains(self):
        bad = TransitStubParams(transit_domain_size=0)
        with pytest.raises(ValueError):
            generate_transit_stub(bad, random.Random(0))


class TestSingletonDomains:
    def test_degenerate_sizes_work(self):
        params = TransitStubParams(
            num_transit_domains=1,
            transit_domain_size=1,
            stubs_per_transit_router=1,
            stub_size=1,
        )
        topo = generate_transit_stub(params, random.Random(0))
        assert topo.num_routers == 2
