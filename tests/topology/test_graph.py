"""Unit tests for the weighted graph."""

import pytest

from repro.topology.graph import Graph


def triangle():
    g = Graph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 2, 5.0)
    return g


class TestGraphBasics:
    def test_add_edge_and_query(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.weight(1, 2) == 2.0
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_parallel_edge_keeps_minimum(self):
        g = Graph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 2.0
        assert g.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Graph().add_edge(1, 1, 1.0)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            Graph().add_edge(0, 1, 0.0)

    def test_neighbors(self):
        g = triangle()
        assert set(g.neighbors(0)) == {1, 2}

    def test_edges_iteration_no_duplicates(self):
        edges = list(triangle().edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)


class TestDijkstra:
    def test_shortest_path_takes_cheaper_route(self):
        g = triangle()
        dist = g.dijkstra(0)
        # 0->1->2 costs 3, direct edge costs 5.
        assert dist[2] == 3.0
        assert dist[0] == 0.0

    def test_unreachable_nodes_absent(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(9)
        dist = g.dijkstra(0)
        assert 9 not in dist

    def test_line_graph_distances(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, i + 1, 2.0)
        dist = g.dijkstra(0)
        assert dist[5] == 10.0


class TestConnectivity:
    def test_connected(self):
        assert triangle().is_connected()

    def test_disconnected(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        assert not g.is_connected()
        comps = g.components()
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3]]

    def test_empty_graph_connected(self):
        assert Graph().is_connected()
