"""Unit tests for hierarchical latency computation.

The key property: for single-homed stubs the hierarchical composition
equals true shortest-path distance on the flattened router graph.  We
verify against a brute-force Dijkstra over the full graph.
"""

import random

import pytest

from repro.topology.graph import Graph
from repro.topology.latency import HierarchicalLatency
from repro.topology.transit_stub import (
    TransitStubParams,
    generate_transit_stub,
)

SMALL = TransitStubParams(
    num_transit_domains=2,
    transit_domain_size=3,
    stubs_per_transit_router=2,
    stub_size=4,
)


def flatten(topo) -> Graph:
    """The full router graph: core + stubs + gateway edges."""
    g = Graph()
    for u, v, w in topo.core.edges():
        g.add_edge(u, v, w)
    for stub in topo.stubs:
        for u, v, w in stub.graph.edges():
            g.add_edge(u, v, w)
        g.add_edge(
            stub.gateway_stub_router,
            stub.gateway_transit_router,
            stub.gateway_latency,
        )
    return g


class TestHierarchicalLatency:
    def setup_method(self):
        self.topo = generate_transit_stub(SMALL, random.Random(3))
        self.latency = HierarchicalLatency(self.topo)
        self.flat = flatten(self.topo)

    def test_zero_for_same_router(self):
        assert self.latency.latency(0, 0) == 0.0

    def test_symmetry(self):
        rng = random.Random(1)
        routers = self.topo.stub_routers + self.topo.transit_routers
        for _ in range(30):
            u, v = rng.sample(routers, 2)
            assert self.latency.latency(u, v) == pytest.approx(
                self.latency.latency(v, u), abs=1e-9
            )

    def test_matches_flat_dijkstra_everywhere(self):
        routers = self.topo.transit_routers + self.topo.stub_routers
        for u in routers:
            truth = self.flat.dijkstra(u)
            for v in routers:
                assert abs(self.latency.latency(u, v) - truth[v]) < 1e-9, (
                    f"{u}->{v}"
                )

    def test_positive_between_distinct_routers(self):
        rng = random.Random(2)
        routers = self.topo.stub_routers
        for _ in range(20):
            u, v = rng.sample(routers, 2)
            assert self.latency.latency(u, v) > 0

    def test_intra_stub_cheaper_than_cross_domain(self):
        stub = self.topo.stubs[0]
        far_stub = next(
            s
            for s in self.topo.stubs
            if s.gateway_transit_router != stub.gateway_transit_router
        )
        intra = self.latency.latency(stub.routers[0], stub.routers[1])
        cross = self.latency.latency(stub.routers[0], far_stub.routers[0])
        assert intra < cross
