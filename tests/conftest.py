"""Shared test helpers and fixtures."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.sizing import SizingPolicy
from repro.topology.attachment import (
    ConstantLatencyModel,
    UniformLatencyModel,
)

#: Watchdog for sim runs in tests: generous, but stops runaway loops.
MAX_EVENTS = 2_000_000


def make_ids(
    base: int, num_digits: int, count: int, seed: int = 0
) -> Tuple[IdSpace, List[NodeId]]:
    space = IdSpace(base, num_digits)
    rng = random.Random(seed)
    return space, space.random_unique_ids(count, rng)


def build_network(
    space: IdSpace,
    initial: Sequence[NodeId],
    seed: int = 0,
    constant_latency: bool = False,
    sizing: SizingPolicy = SizingPolicy.FULL,
) -> JoinProtocolNetwork:
    if constant_latency:
        latency = ConstantLatencyModel(1.0)
    else:
        latency = UniformLatencyModel(
            random.Random(f"lat-{seed}"), low=1.0, high=100.0
        )
    return JoinProtocolNetwork.from_oracle(
        space, initial, latency_model=latency, sizing=sizing, seed=seed
    )


def run_joins(
    network: JoinProtocolNetwork,
    joiners: Sequence[NodeId],
    start_times: Optional[Sequence[float]] = None,
) -> JoinProtocolNetwork:
    """Start the given joins (simultaneously unless offsets are given;
    offsets are relative to the current virtual time) and run to
    quiescence, asserting the watchdog is not hit."""
    if start_times is None:
        start_times = [0.0] * len(joiners)
    base = network.simulator.now
    for joiner, at in zip(joiners, start_times):
        network.start_join(joiner, at=base + at)
    network.run(max_events=MAX_EVENTS)
    assert network.simulator.quiesced(), "simulation hit the event watchdog"
    return network


def assert_network_correct(network: JoinProtocolNetwork) -> None:
    """The paper's two theorems: consistency and termination."""
    assert network.all_in_system(), (
        "Theorem 2 violated: statuses "
        f"{ {str(k): str(v) for k, v in network.statuses().items() if not v.is_s_node} }"
    )
    report = network.check_consistency()
    assert report.consistent, (
        "Theorem 1 violated: "
        + "; ".join(str(v) for v in report.violations[:5])
    )


@pytest.fixture
def small_space() -> IdSpace:
    return IdSpace(base=4, num_digits=4)
