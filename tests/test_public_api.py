"""Public API surface tests: the documented imports must exist and the
README quickstart must run verbatim."""

import importlib

import pytest


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_exports_resolve(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name), name

    def test_subpackage_exports_resolve(self):
        for module_name in (
            "repro.ids",
            "repro.sim",
            "repro.topology",
            "repro.network",
            "repro.obs",
            "repro.routing",
            "repro.protocol",
            "repro.csettree",
            "repro.consistency",
            "repro.analysis",
            "repro.recovery",
            "repro.optimize",
            "repro.baselines",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)

    def test_version(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_verbatim(self):
        import random

        from repro import IdSpace, JoinProtocolNetwork

        space = IdSpace(base=16, num_digits=8)
        ids = space.random_unique_ids(120, random.Random(1))

        net = JoinProtocolNetwork.from_oracle(space, ids[:100], seed=1)
        for joiner in ids[100:]:
            net.start_join(joiner)
        net.run()

        assert net.all_in_system()
        assert net.check_consistency().consistent
        assert net.route(ids[100], ids[119]).success
