"""Lifecycle reconstruction tests: state machines from phase spans,
violation detection, and parity with the protocol's phase tuple."""

from repro.experiments.workloads import make_workload
from repro.obs import (
    JOIN_PHASE_ORDER,
    Observability,
    lifecycles_from_tracer,
    reconstruct_lifecycles,
)


def _span(span_id, name, start, end, parent=None, **attrs):
    return {
        "kind": "span", "id": span_id, "parent": parent, "name": name,
        "start": start, "end": end, "attrs": attrs,
    }


def healthy_spans():
    """One complete join plus one stalled in *notifying*."""
    return [
        _span(1, "join", 0.0, 9.0, node="0123"),
        _span(2, "phase:copying", 0.0, 3.0, parent=1, node="0123"),
        _span(3, "phase:waiting", 3.0, 5.0, parent=1, node="0123"),
        _span(4, "phase:notifying", 5.0, 9.0, parent=1, node="0123"),
        _span(5, "join", 1.0, None, node="3210"),
        _span(6, "phase:copying", 1.0, 4.0, parent=5, node="3210"),
        _span(7, "phase:notifying", 4.0, None, parent=5, node="3210"),
    ]


class TestPhaseOrderParity:
    def test_matches_protocol_status(self):
        # lifecycle.py duplicates the tuple to stay import-cycle free;
        # this is the parity test that keeps the copies identical.
        from repro.protocol.status import JOIN_PHASES

        assert JOIN_PHASE_ORDER == tuple(
            status.value for status in JOIN_PHASES
        )


class TestReconstruction:
    def test_complete_join(self):
        report = reconstruct_lifecycles(healthy_spans())
        done = report.completed()
        assert len(done) == 1
        lc = done[0]
        assert lc.node == "0123"
        assert lc.completed and lc.duration == 9.0
        assert [p.phase for p in lc.phases] == [
            "copying", "waiting", "notifying",
        ]
        assert lc.phase_durations() == {
            "copying": 3.0, "waiting": 2.0, "notifying": 4.0,
        }
        assert lc.current_phase() is None

    def test_stalled_join_reported(self):
        report = reconstruct_lifecycles(healthy_spans())
        assert not report.ok
        assert len(report.stalled) == 1
        assert "3210" in report.stalled[0]
        assert "notifying" in report.stalled[0]
        open_lc = [lc for lc in report.lifecycles if not lc.completed][0]
        assert open_lc.current_phase() == "notifying"
        assert open_lc.duration is None

    def test_skipped_phase_is_illegal_not_stalled(self):
        # 3210 skips waiting: flagged as a transition problem.
        report = reconstruct_lifecycles(healthy_spans())
        assert any(
            "3210" in p and "skips 'waiting'" in p
            for p in report.illegal_transitions
        )

    def test_backward_transition_flagged(self):
        spans = [
            _span(1, "join", 0.0, 9.0, node="77"),
            _span(2, "phase:waiting", 0.0, 3.0, parent=1, node="77"),
            _span(3, "phase:copying", 3.0, 9.0, parent=1, node="77"),
        ]
        report = reconstruct_lifecycles(spans)
        assert any(
            "moves backward" in p for p in report.illegal_transitions
        )

    def test_unknown_phase_flagged(self):
        spans = [
            _span(1, "join", 0.0, 2.0, node="77"),
            _span(2, "phase:zen", 0.0, 2.0, parent=1, node="77"),
        ]
        report = reconstruct_lifecycles(spans)
        assert any("unknown phase" in p for p in report.illegal_transitions)

    def test_overlapping_phases_flagged(self):
        spans = [
            _span(1, "join", 0.0, 9.0, node="77"),
            _span(2, "phase:copying", 0.0, 5.0, parent=1, node="77"),
            _span(3, "phase:waiting", 4.0, 9.0, parent=1, node="77"),
        ]
        report = reconstruct_lifecycles(spans)
        assert any(
            "inside the previous phase" in p
            for p in report.illegal_transitions
        )

    def test_completed_with_open_phase_flagged(self):
        spans = [
            _span(1, "join", 0.0, 9.0, node="77"),
            _span(2, "phase:copying", 0.0, None, parent=1, node="77"),
        ]
        report = reconstruct_lifecycles(spans)
        assert any("never closed" in p for p in report.illegal_transitions)

    def test_orphan_phase_span_ignored(self):
        spans = healthy_spans() + [
            _span(99, "phase:copying", 0.0, 1.0, parent=1234, node="zz"),
        ]
        report = reconstruct_lifecycles(spans)
        assert len(report.lifecycles) == 2

    def test_lifecycles_sorted_by_begin_time(self):
        report = reconstruct_lifecycles(healthy_spans())
        begins = [lc.began for lc in report.lifecycles]
        assert begins == sorted(begins)


class TestRealTraces:
    def test_traced_workload_reconstructs_clean(self):
        obs = Observability.tracing()
        workload = make_workload(
            base=4, num_digits=4, n=40, m=12, seed=5, obs=obs
        )
        workload.start_all_joins()
        workload.run()
        report = lifecycles_from_tracer(obs.tracer)
        assert report.ok
        assert len(report.completed()) == 12
        for lc in report.completed():
            phases = [p.phase for p in lc.phases]
            # Every visited phase in protocol order, no repeats.
            indexes = [JOIN_PHASE_ORDER.index(p) for p in phases]
            assert indexes == sorted(set(indexes))
