"""MessageStats over the metrics registry: legacy API preserved,
drop accounting, and shared-registry visibility."""

from repro.ids.idspace import IdSpace
from repro.network.message import HEADER_BYTES, Message
from repro.network.stats import MessageStats
from repro.obs.metrics import MetricsRegistry

SPACE = IdSpace(4, 4)
A = SPACE.from_string("0000")
B = SPACE.from_string("1111")


class Fake(Message):
    type_name = "Fake"


class Probe(Message):
    type_name = "ProbeMsg"


class TestDropAccounting:
    def test_on_drop_counts_by_type(self):
        stats = MessageStats()
        stats.on_drop(Fake(A))
        stats.on_drop(Fake(B))
        stats.on_drop(Probe(A))
        assert stats.total_dropped == 3
        assert stats.dropped_by_type["Fake"] == 2
        assert stats.dropped_by_type["ProbeMsg"] == 1

    def test_missing_type_reads_zero(self):
        stats = MessageStats()
        assert stats.total_dropped == 0
        assert stats.dropped_by_type["Never"] == 0

    def test_drops_do_not_count_as_sends(self):
        stats = MessageStats()
        stats.on_drop(Fake(A))
        assert stats.total_messages == 0
        assert stats.count("Fake") == 0
        assert stats.total_bytes == 0

    def test_drops_reach_the_registry(self):
        registry = MetricsRegistry()
        stats = MessageStats(registry=registry)
        stats.on_drop(Fake(A))
        assert registry.value("messages_dropped", type="Fake") == 1
        assert registry.value("messages_dropped_total") == 1


class TestRegistryBacking:
    def test_sends_mirror_into_registry(self):
        registry = MetricsRegistry()
        stats = MessageStats(registry=registry)
        stats.on_send(Fake(A))
        stats.on_send(Fake(A))
        stats.on_send(Fake(B))
        assert registry.value("messages_sent", type="Fake") == 3
        assert registry.value(
            "messages_sent_by", sender=str(A), type="Fake"
        ) == 2
        assert registry.value("messages_total") == 3
        assert registry.value("message_bytes", type="Fake") == 3 * HEADER_BYTES

    def test_registry_snapshot_equals_legacy_snapshot(self):
        registry = MetricsRegistry()
        stats = MessageStats(registry=registry)
        stats.on_send(Fake(A))
        stats.on_send(Probe(B))
        assert registry.values_by_label("messages_sent", "type") == (
            stats.snapshot()
        )

    def test_private_registry_by_default(self):
        a, b = MessageStats(), MessageStats()
        a.on_send(Fake(A))
        assert b.total_messages == 0
        assert a.registry is not b.registry

    def test_legacy_dict_views_are_copies(self):
        stats = MessageStats()
        stats.on_send(Fake(A))
        view = stats.count_by_type
        view["Fake"] = 99
        assert stats.count("Fake") == 1

    def test_count_by_sender_type_nested_view(self):
        stats = MessageStats()
        stats.on_send(Fake(A))
        stats.on_send(Probe(A))
        nested = stats.count_by_sender_type
        assert nested[A]["Fake"] == 1
        assert nested[A]["ProbeMsg"] == 1
        assert nested[A]["Missing"] == 0
