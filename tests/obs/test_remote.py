"""Distributed-telemetry primitives: paging, clock sync, trace merge."""

import json

import pytest

from repro.obs.export import read_trace_jsonl
from repro.obs.remote import (
    ClockSample,
    ClockSync,
    ClockSyncError,
    DaemonTrace,
    RemoteTelemetry,
    merge_traces,
)


def _fill(telemetry: RemoteTelemetry, spans: int, events: int) -> None:
    tracer = telemetry.tracer
    for i in range(spans):
        span = tracer.start_span("join", float(i))
        tracer.end_span(span, float(i) + 1.0)
    for i in range(events):
        tracer.event(
            "message.send", float(i), msg=f"n#{i:08d}", type="CpRstMsg"
        )


class TestExportPaging:
    def test_single_page_when_under_limit(self):
        telemetry = RemoteTelemetry(node="0123")
        _fill(telemetry, spans=3, events=4)
        page = telemetry.export_page(limit=50)
        assert page["node"] == "0123"
        assert len(page["spans"]) == 3
        assert len(page["events"]) == 4
        assert page["done"] is True

    def test_pages_chain_without_loss_or_duplication(self):
        telemetry = RemoteTelemetry()
        _fill(telemetry, spans=7, events=11)
        spans, events = [], []
        cursor = (0, 0)
        for _ in range(100):
            page = telemetry.export_page(
                spans_from=cursor[0], events_from=cursor[1], limit=5
            )
            spans.extend(page["spans"])
            events.extend(page["events"])
            if page["done"]:
                break
            cursor = tuple(page["next"])
        assert len(spans) == 7
        assert len(events) == 11
        assert len({json.dumps(r, sort_keys=True) for r in spans}) == 7
        assert len({e["attrs"]["msg"] for e in events}) == 11

    def test_page_fits_limit_exactly(self):
        telemetry = RemoteTelemetry()
        _fill(telemetry, spans=2, events=9)
        page = telemetry.export_page(limit=5)
        assert len(page["spans"]) + len(page["events"]) == 5
        assert page["done"] is False

    def test_spool_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry = RemoteTelemetry(spool_path=path)
        _fill(telemetry, spans=2, events=3)
        assert telemetry.write_spool() == 5
        spans, events = read_trace_jsonl(path)
        assert (len(spans), len(events)) == (2, 3)

    def test_spool_without_path_is_noop(self):
        assert RemoteTelemetry().write_spool() is None


class TestClockSync:
    def test_offset_from_min_rtt_sample(self):
        # Daemon clock runs 2.5s ahead; second sample has least delay.
        samples = [
            ClockSample(t0=10.0, server_wall=13.0, t1=11.0),
            ClockSample(t0=20.0, server_wall=22.55, t1=20.1),
            ClockSample(t0=30.0, server_wall=33.9, t1=32.0),
        ]
        sync = ClockSync(samples)
        assert sync.best is samples[1]
        assert sync.rtt == pytest.approx(0.1)
        assert sync.offset == pytest.approx(2.5)
        assert sync.to_collector_wall(22.55) == pytest.approx(20.05)

    def test_symmetric_network_yields_exact_offset(self):
        # With perfectly symmetric delay the midpoint estimate is exact
        # regardless of the RTT magnitude.
        sync = ClockSync([ClockSample(t0=0.0, server_wall=5.4, t1=0.8)])
        assert sync.offset == pytest.approx(5.0)

    def test_no_samples_rejected(self):
        with pytest.raises(ClockSyncError):
            ClockSync([])


def _trace(name, *, send_at, deliver=None, anchor_now=0.0, wall=0.0,
           scale=1.0, offset=0.0):
    events = [
        {
            "kind": "event", "name": "message.send", "time": send_at,
            "span": None,
            "attrs": {"msg": f"{name}#00000001", "type": "CpRstMsg",
                      "src": name, "dst": "x"},
        }
    ]
    if deliver is not None:
        events.append(
            {
                "kind": "event", "name": "message.deliver",
                "time": deliver, "span": 3,
                "attrs": {"msg": f"{name}#00000001"},
            }
        )
    return DaemonTrace(
        name=name,
        spans=[{"kind": "span", "id": 1, "parent": None, "name": "join",
                "start": send_at, "end": None, "attrs": {"node": name}}],
        events=events,
        anchor_now=anchor_now,
        anchor_collector_wall=wall,
        time_scale=scale,
        clock_offset=offset,
    )


class TestMergeTraces:
    def test_empty(self):
        assert merge_traces([]) == ([], [])

    def test_span_ids_namespaced_per_daemon(self):
        spans, events = merge_traces(
            [
                _trace("a", send_at=1.0, deliver=1.5),
                _trace("b", send_at=2.0),
            ]
        )
        assert sorted(s["id"] for s in spans) == ["a:1", "b:1"]
        assert all(s["parent"] is None for s in spans)
        deliver = next(e for e in events if e["name"] == "message.deliver")
        assert deliver["span"] == "a:3"

    def test_message_attrs_untouched(self):
        _, events = merge_traces([_trace("a", send_at=1.0)])
        assert events[0]["attrs"]["msg"] == "a#00000001"

    def test_times_rebased_to_cluster_origin(self):
        # Daemon b's clock anchor places its records 10 wall-seconds
        # after daemon a's; with scale 1 its t=0 maps to merged t=10.
        spans, _ = merge_traces(
            [
                _trace("a", send_at=0.0, wall=100.0),
                _trace("b", send_at=0.0, wall=110.0),
            ]
        )
        by_id = {s["id"]: s for s in spans}
        assert by_id["a:1"]["start"] == 0.0
        assert by_id["b:1"]["start"] == 10.0

    def test_clock_offset_correction_orders_cross_daemon_events(self):
        # The same wire exchange seen by two daemons whose protocol
        # clocks are wildly offset: sender sends at its local t=1000,
        # receiver delivers at its local t=3.  The anchors (from clock
        # sampling) map both onto one axis where send < deliver.
        sender = _trace(
            "s", send_at=1000.0, anchor_now=990.0, wall=50.0, scale=0.001
        )
        receiver = DaemonTrace(
            name="r",
            events=[{
                "kind": "event", "name": "message.deliver", "time": 3.0,
                "span": None, "attrs": {"msg": "s#00000001"},
            }],
            anchor_now=0.0,
            anchor_collector_wall=50.009,
            time_scale=0.001,
        )
        _, events = merge_traces([sender, receiver])
        send = next(e for e in events if e["name"] == "message.send")
        deliver = next(e for e in events if e["name"] == "message.deliver")
        # Send wall = 50.0 + 10*0.001 = 50.010; deliver wall = 50.009
        # + 3*0.001 = 50.012 -> 2 protocol units apart, send first.
        assert send["time"] < deliver["time"]
        assert deliver["time"] - send["time"] == pytest.approx(2.0)

    def test_merge_is_deterministic(self):
        traces = [
            _trace("a", send_at=5.0, wall=7.0),
            _trace("b", send_at=5.0, wall=7.0),
        ]
        first = merge_traces(traces)
        second = merge_traces(list(reversed(traces)))
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
