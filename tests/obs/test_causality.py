"""CausalForest tests: stamping, tree structure, critical paths, and
the causal-order property over real traced runs."""

import pytest

from repro.experiments.workloads import make_workload
from repro.obs import CausalForest, CausalityError, Observability


def _event(name, time, **attrs):
    return {"kind": "event", "name": name, "time": time, "attrs": attrs}


def synthetic_events():
    """A two-tree forest: a 3-message join chain plus a lone root."""
    return [
        _event("message.send", 0.0, msg=1, parent=None, trace=1,
               type="CpRstMsg", src="11", dst="22", bytes=40, latency=1.0),
        _event("message.deliver", 1.0, msg=1, type="CpRstMsg",
               src="11", dst="22"),
        _event("message.send", 1.0, msg=2, parent=1, trace=1,
               type="CpRlyMsg", src="22", dst="11", bytes=80, latency=1.0),
        _event("message.deliver", 2.0, msg=2, type="CpRlyMsg",
               src="22", dst="11"),
        _event("message.send", 2.0, msg=3, parent=2, trace=1,
               type="JoinWaitMsg", src="11", dst="22", bytes=40,
               latency=2.5),
        _event("message.deliver", 4.5, msg=3, type="JoinWaitMsg",
               src="11", dst="22"),
        _event("message.send", 0.5, msg=4, parent=None, trace=4,
               type="InSysNotiMsg", src="33", dst="44", bytes=8,
               latency=1.0),
        _event("message.deliver", 1.5, msg=4, type="InSysNotiMsg",
               src="33", dst="44"),
    ]


def traced_run(seed=7, m=10):
    obs = Observability.tracing()
    workload = make_workload(
        base=4, num_digits=4, n=40, m=m, seed=seed, obs=obs
    )
    workload.start_all_joins()
    workload.run()
    return workload.network, obs


class TestForestStructure:
    def test_roots_and_children(self):
        forest = CausalForest.from_event_records(synthetic_events())
        assert len(forest) == 4
        assert [r.msg_id for r in forest.roots()] == [1, 4]
        assert [c.msg_id for c in forest.children(1)] == [2]
        assert forest.children(3) == []

    def test_tree_preorder_and_depth(self):
        forest = CausalForest.from_event_records(synthetic_events())
        assert [r.msg_id for r in forest.tree(1)] == [1, 2, 3]
        assert forest.depth(1) == 3
        assert forest.depth(4) == 1

    def test_type_census(self):
        forest = CausalForest.from_event_records(synthetic_events())
        assert forest.type_census(1) == {
            "CpRlyMsg": 1, "CpRstMsg": 1, "JoinWaitMsg": 1,
        }

    def test_critical_path_follows_latest_completion(self):
        forest = CausalForest.from_event_records(synthetic_events())
        path = forest.critical_path(1)
        assert [r.msg_id for r in path] == [1, 2, 3]
        assert path[-1].completion_time == 4.5

    def test_join_trees_keyed_by_root_sender(self):
        forest = CausalForest.from_event_records(synthetic_events())
        trees = forest.join_trees()
        assert set(trees) == {"11"}  # InSysNotiMsg root is not a join
        assert len(trees["11"]) == 3

    def test_unknown_root_rejected(self):
        forest = CausalForest.from_event_records(synthetic_events())
        with pytest.raises(CausalityError):
            forest.tree(99)

    def test_duplicate_msg_id_rejected(self):
        events = synthetic_events()
        from repro.obs.causality import MessageRecord
        record = MessageRecord(
            msg_id=1, parent_id=None, trace_id=1, type="X",
            src="a", dst="b", send_time=0.0,
        )
        with pytest.raises(CausalityError):
            CausalForest([record, record])
        # from_event_records keys by msg id, so re-sends overwrite.
        CausalForest.from_event_records(events + events[:1])


class TestValidation:
    def test_clean_forest_has_no_problems(self):
        forest = CausalForest.from_event_records(synthetic_events())
        assert forest.validate() == []

    def test_dangling_parent_flagged(self):
        events = synthetic_events()
        events[4]["attrs"]["parent"] = 77
        problems = CausalForest.from_event_records(events).validate()
        assert any("unknown parent 77" in p for p in problems)

    def test_child_before_parent_delivery_flagged(self):
        events = synthetic_events()
        events[4]["time"] = 1.5  # JoinWaitMsg before CpRlyMsg delivery
        problems = CausalForest.from_event_records(events).validate()
        assert any("before parent" in p for p in problems)

    def test_child_of_dropped_message_flagged(self):
        events = synthetic_events()
        events[2] = _event("message.drop", 1.0, msg=2, parent=1, trace=1,
                           type="CpRlyMsg", src="22", dst="11")
        del events[3]  # its delivery
        problems = CausalForest.from_event_records(events).validate()
        assert any("child of dropped" in p for p in problems)

    def test_trace_id_mismatch_flagged(self):
        events = synthetic_events()
        events[4]["attrs"]["trace"] = 999
        problems = CausalForest.from_event_records(events).validate()
        assert any("trace 999" in p for p in problems)


class TestRealTraces:
    """Properties every traced simulation run must satisfy."""

    def test_causal_order_property(self):
        # Every message with a parent was sent by that parent's
        # delivery handler: parent delivered, at an earlier-or-equal
        # virtual time, within the same trace.
        _, obs = traced_run()
        forest = CausalForest.from_tracer(obs.tracer)
        assert len(forest) > 0
        assert forest.validate() == []
        for record in forest.records.values():
            if record.parent_id is None:
                continue
            parent = forest.records[record.parent_id]
            assert parent.deliver_time is not None
            assert parent.deliver_time <= record.send_time
            assert parent.trace_id == record.trace_id

    def test_one_join_tree_per_joiner(self):
        net, obs = traced_run()
        forest = CausalForest.from_tracer(obs.tracer)
        trees = forest.join_trees()
        assert set(trees) == {str(j) for j in net.joiner_ids}

    def test_every_message_stamped(self):
        _, obs = traced_run(m=5)
        sends = [
            e for e in obs.tracer.events()
            if e.name in ("message.send", "message.drop")
        ]
        ids = [e.attrs["msg"] for e in sends]
        assert len(ids) == len(set(ids))  # unique
        assert all(isinstance(i, int) for i in ids)

    def test_critical_path_times_monotone(self):
        _, obs = traced_run()
        forest = CausalForest.from_tracer(obs.tracer)
        for tree in forest.join_trees().values():
            path = forest.critical_path(tree[0].msg_id)
            times = [r.send_time for r in path]
            assert times == sorted(times)

    def test_untraced_run_stamps_nothing(self):
        workload = make_workload(
            base=4, num_digits=4, n=30, m=5, seed=3,
            obs=Observability.metrics_only(),
        )
        workload.start_all_joins()
        workload.run()
        transport = workload.network.transport
        assert transport._next_msg_id == 1
