"""NullTracer / Tracer surface parity.

NullTracer is substituted for Tracer wherever observability is off, so
its public surface must be *exactly* Tracer's: every public attribute
present, every method signature identical.  These tests fail the
moment someone extends Tracer without teaching NullTracer about it.
"""

import inspect

from repro.obs.tracer import NullTracer, Tracer


def public_surface(cls):
    return {
        name
        for name in dir(cls)
        if not name.startswith("_") or name in ("__len__",)
    }


class TestSurfaceParity:
    def test_same_public_names(self):
        assert public_surface(NullTracer) == public_surface(Tracer)

    def test_no_extra_methods_on_null(self):
        extras = {
            name
            for name in vars(NullTracer)
            if not name.startswith("_")
        } - public_surface(Tracer)
        assert extras == set()

    def test_identical_signatures(self):
        for name in public_surface(Tracer):
            original = getattr(Tracer, name)
            if not callable(original):
                continue
            null = getattr(NullTracer, name)
            assert inspect.signature(null) == inspect.signature(
                original
            ), f"signature of {name} drifted"

    def test_recording_methods_overridden(self):
        # The hot-path methods must be no-op overrides, not inherited
        # recording implementations.
        for name in ("start_span", "end_span", "event"):
            assert name in vars(NullTracer), f"{name} not overridden"
            assert getattr(NullTracer, name) is not getattr(Tracer, name)


class TestNullBehavior:
    def test_null_records_nothing(self):
        tracer = NullTracer()
        span = tracer.start_span("join", 0.0, node="11")
        tracer.event("message.send", 1.0, span=span, type="CpRstMsg")
        tracer.end_span(span, 2.0)
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.events() == []
        assert list(tracer.records()) == []
        assert tracer.open_spans() == []

    def test_enabled_flags(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False

    def test_null_is_a_tracer(self):
        assert issubclass(NullTracer, Tracer)
