"""RunReport tests: golden-file comparisons against a committed
fixture trace, determinism of the JSON form, and the HTML renderer.

The fixture (``golden/small_run.jsonl``) is a full trace of a seeded
10+3-node run; regenerate it -- and both golden outputs -- with::

    PYTHONPATH=src python tests/obs/make_golden.py
"""

import json
import os

from repro.experiments.workloads import make_workload
from repro.obs import Observability, RunReport

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
TRACE = os.path.join(GOLDEN_DIR, "small_run.jsonl")
GOLDEN_TEXT = os.path.join(GOLDEN_DIR, "small_run_report.txt")
GOLDEN_JSON = os.path.join(GOLDEN_DIR, "small_run_report.json")


def read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


class TestGoldenFiles:
    def test_text_matches_golden(self):
        report = RunReport.from_file(TRACE)
        assert report.render_text() + "\n" == read(GOLDEN_TEXT)

    def test_json_matches_golden(self):
        report = RunReport.from_file(TRACE)
        assert report.to_json() == read(GOLDEN_JSON)

    def test_json_identical_across_invocations(self):
        # The acceptance bar: same trace, byte-identical JSON.
        first = RunReport.from_file(TRACE).to_json()
        second = RunReport.from_file(TRACE).to_json()
        assert first == second

    def test_json_is_canonical(self):
        text = read(GOLDEN_JSON)
        data = json.loads(text)
        assert json.dumps(data, sort_keys=True, indent=2) + "\n" == text


class TestReportContents:
    def report(self):
        return RunReport.from_file(TRACE)

    def test_summary_counts(self):
        data = self.report().to_json_dict()
        assert data["summary"]["spans"] == 12
        assert data["summary"]["events"] == 100
        assert data["lifecycles"]["completed"] == 3

    def test_message_census_balances(self):
        census = self.report().message_census()
        for row in census.values():
            assert row["sent"] == row["delivered"] + row["dropped"]
            assert row["bytes"] > 0

    def test_theorem3_census(self):
        data = self.report().theorem3_census()
        assert data["bound"] == 4  # d + 1 with 3-digit IDs
        assert data["passed"]
        assert data["exceeding"] == []

    def test_join_trees_have_critical_paths(self):
        trees = self.report().join_tree_analytics()
        assert len(trees) == 3
        for tree in trees:
            path = tree["critical_path"]
            assert path["length"] >= 1
            assert path["duration"] >= 0
            assert path["hops"][0]["type"] == "CpRstMsg"

    def test_no_causal_problems(self):
        assert self.report().causal_problems == []


class TestFromTracer:
    def test_live_tracer_equals_file_round_trip(self, tmp_path):
        from repro.obs import write_trace_jsonl

        obs = Observability.tracing()
        workload = make_workload(
            base=3, num_digits=3, n=10, m=3, seed=11, obs=obs
        )
        workload.start_all_joins()
        workload.run()
        live = RunReport.from_tracer(obs.tracer)
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(obs.tracer, path)
        assert RunReport.from_file(path).to_json() == live.to_json()

    def test_fixture_is_reproducible(self):
        # The committed fixture is exactly what the seeded workload
        # produces today; if the protocol changes, regenerate goldens.
        obs = Observability.tracing()
        workload = make_workload(
            base=3, num_digits=3, n=10, m=3, seed=11, obs=obs
        )
        workload.start_all_joins()
        workload.run()
        assert RunReport.from_tracer(obs.tracer).to_json() == read(
            GOLDEN_JSON
        )


class TestHtml:
    def test_self_contained_page(self):
        html = RunReport.from_file(TRACE).render_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert html.count("<tr>") == 3  # one row per join
        assert "phase:" not in html  # phases shown by bare name

    def test_empty_trace_renders(self):
        report = RunReport([], [])
        assert "== run summary ==" in report.render_text()
        assert report.to_json_dict()["theorem3"]["passed"] is True
        assert "<table>" in report.render_html()
