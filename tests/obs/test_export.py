"""Exporter tests: JSONL round-trip and CSV/dict metrics snapshots."""

import json

from repro.obs.export import (
    message_type_breakdown,
    message_type_csv,
    metrics_to_csv,
    metrics_to_dict,
    read_message_type_csv,
    read_trace_jsonl,
    trace_to_records,
    write_message_type_csv,
    write_metrics_csv,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer()
    root = tracer.start_span("join", 0.0, node="0123")
    phase = tracer.start_span("phase:copying", 0.0, parent=root, node="0123")
    tracer.event(
        "message.send", 0.5, span=phase, type="CpRstMsg", src="0123",
        dst="3210", bytes=40, latency=1.5,
    )
    tracer.end_span(phase, 2.0)
    tracer.end_span(root, 9.0)
    tracer.start_span("join", 1.0, node="2222")  # left open on purpose
    return tracer


class TestTraceJsonl:
    def test_round_trip_exact(self, tmp_path):
        tracer = sample_tracer()
        path = str(tmp_path / "trace.jsonl")
        written = write_trace_jsonl(tracer, path)
        assert written == len(tracer)
        spans, events = read_trace_jsonl(path)
        original = trace_to_records(tracer)
        assert spans + events == original

    def test_each_line_is_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(sample_tracer(), path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("span", "event")

    def test_open_span_exports_null_end(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(sample_tracer(), path)
        spans, _ = read_trace_jsonl(path)
        open_spans = [s for s in spans if s["end"] is None]
        assert len(open_spans) == 1
        assert open_spans[0]["attrs"] == {"node": "2222"}

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        try:
            read_trace_jsonl(str(path))
        except ValueError as error:
            assert "mystery" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestMetricsExport:
    def sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("messages_sent", type="JoinNotiMsg").inc(6)
        registry.gauge("table_fill", level="0").set(15.5)
        registry.histogram("join_latency").observe(12.0)
        return registry

    def test_dict_snapshot(self):
        snap = metrics_to_dict(self.sample_registry())
        assert snap["messages_sent{type=JoinNotiMsg}"] == 6
        assert snap["table_fill{level=0}"] == 15.5
        assert snap["join_latency_count"] == 1.0

    def test_csv_header_and_rows(self):
        text = metrics_to_csv(self.sample_registry())
        lines = text.strip().splitlines()
        assert lines[0] == "metric,value"
        assert any(line.startswith("join_latency_count,") for line in lines)
        # Rows are sorted by metric name.
        assert lines[1:] == sorted(lines[1:])

    def test_write_csv_row_count(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        rows = write_metrics_csv(self.sample_registry(), path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert rows == len(lines) - 1


class TestMessageTypeCsv:
    def stats_registry(self) -> MetricsRegistry:
        """A registry shaped the way MessageStats shapes one."""
        registry = MetricsRegistry()
        registry.counter("messages_sent", type="CpRstMsg").inc(9)
        registry.counter("messages_sent", type="JoinNotiMsg").inc(4)
        registry.counter("messages_dropped", type="JoinNotiMsg").inc(1)
        registry.counter("message_bytes", type="CpRstMsg").inc(360)
        # A type seen only in drops still gets a full row.
        registry.counter("messages_dropped", type="SpeNotiMsg").inc(2)
        return registry

    def test_breakdown_rows(self):
        rows = message_type_breakdown(self.stats_registry())
        assert list(rows) == ["CpRstMsg", "JoinNotiMsg", "SpeNotiMsg"]
        assert rows["CpRstMsg"] == {"sent": 9, "dropped": 0, "bytes": 360}
        assert rows["JoinNotiMsg"] == {"sent": 4, "dropped": 1, "bytes": 0}
        assert rows["SpeNotiMsg"] == {"sent": 0, "dropped": 2, "bytes": 0}

    def test_csv_column_order_is_stable(self):
        text = message_type_csv(self.stats_registry())
        lines = text.strip().splitlines()
        assert lines[0] == "type,sent,dropped,bytes"
        assert [line.split(",")[0] for line in lines[1:]] == sorted(
            line.split(",")[0] for line in lines[1:]
        )

    def test_round_trip_exact(self, tmp_path):
        registry = self.stats_registry()
        path = str(tmp_path / "messages.csv")
        rows = write_message_type_csv(registry, path)
        assert rows == 3
        assert read_message_type_csv(path) == message_type_breakdown(
            registry
        )

    def test_round_trip_from_real_run(self, tmp_path):
        from repro.experiments.workloads import make_workload
        from repro.obs.instrument import Observability

        workload = make_workload(
            base=3, num_digits=3, n=10, m=3, seed=11,
            obs=Observability.metrics_only(),
        )
        workload.start_all_joins()
        workload.run()
        registry = workload.network.stats.registry
        path = str(tmp_path / "messages.csv")
        write_message_type_csv(registry, path)
        recovered = read_message_type_csv(path)
        assert recovered == message_type_breakdown(registry)
        total_sent = sum(row["sent"] for row in recovered.values())
        assert total_sent == workload.network.stats.total_messages

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("kind,sent,dropped,bytes\nX,1,0,0\n")
        try:
            read_message_type_csv(str(path))
        except ValueError as error:
            assert "header" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")
