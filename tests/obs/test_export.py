"""Exporter tests: JSONL round-trip and CSV/dict metrics snapshots."""

import json

from repro.obs.export import (
    metrics_to_csv,
    metrics_to_dict,
    read_trace_jsonl,
    trace_to_records,
    write_metrics_csv,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer()
    root = tracer.start_span("join", 0.0, node="0123")
    phase = tracer.start_span("phase:copying", 0.0, parent=root, node="0123")
    tracer.event(
        "message.send", 0.5, span=phase, type="CpRstMsg", src="0123",
        dst="3210", bytes=40, latency=1.5,
    )
    tracer.end_span(phase, 2.0)
    tracer.end_span(root, 9.0)
    tracer.start_span("join", 1.0, node="2222")  # left open on purpose
    return tracer


class TestTraceJsonl:
    def test_round_trip_exact(self, tmp_path):
        tracer = sample_tracer()
        path = str(tmp_path / "trace.jsonl")
        written = write_trace_jsonl(tracer, path)
        assert written == len(tracer)
        spans, events = read_trace_jsonl(path)
        original = trace_to_records(tracer)
        assert spans + events == original

    def test_each_line_is_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(sample_tracer(), path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("span", "event")

    def test_open_span_exports_null_end(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(sample_tracer(), path)
        spans, _ = read_trace_jsonl(path)
        open_spans = [s for s in spans if s["end"] is None]
        assert len(open_spans) == 1
        assert open_spans[0]["attrs"] == {"node": "2222"}

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        try:
            read_trace_jsonl(str(path))
        except ValueError as error:
            assert "mystery" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestMetricsExport:
    def sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("messages_sent", type="JoinNotiMsg").inc(6)
        registry.gauge("table_fill", level="0").set(15.5)
        registry.histogram("join_latency").observe(12.0)
        return registry

    def test_dict_snapshot(self):
        snap = metrics_to_dict(self.sample_registry())
        assert snap["messages_sent{type=JoinNotiMsg}"] == 6
        assert snap["table_fill{level=0}"] == 15.5
        assert snap["join_latency_count"] == 1.0

    def test_csv_header_and_rows(self):
        text = metrics_to_csv(self.sample_registry())
        lines = text.strip().splitlines()
        assert lines[0] == "metric,value"
        assert any(line.startswith("join_latency_count,") for line in lines)
        # Rows are sorted by metric name.
        assert lines[1:] == sorted(lines[1:])

    def test_write_csv_row_count(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        rows = write_metrics_csv(self.sample_registry(), path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert rows == len(lines) - 1
