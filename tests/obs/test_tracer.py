"""Tracer unit tests: span nesting, lifecycle, and the no-op path."""

import pytest

from repro.obs.tracer import NULL_SPAN, NullTracer, Tracer, TracerError


class TestSpans:
    def test_span_lifecycle(self):
        tracer = Tracer()
        span = tracer.start_span("join", 1.0, node="0123")
        assert not span.finished
        assert span.duration is None
        tracer.end_span(span, 5.5, outcome="in_system")
        assert span.finished
        assert span.duration == 4.5
        assert span.attrs == {"node": "0123", "outcome": "in_system"}

    def test_nesting_parent_links(self):
        tracer = Tracer()
        root = tracer.start_span("join", 0.0)
        child_a = tracer.start_span("phase:copying", 0.0, parent=root)
        child_b = tracer.start_span("phase:waiting", 2.0, parent=root)
        grandchild = tracer.start_span("rpc", 2.5, parent=child_b)
        assert root.parent_id is None
        assert child_a.parent_id == root.span_id
        assert grandchild.parent_id == child_b.span_id
        assert {s.span_id for s in tracer.children(root)} == {
            child_a.span_id,
            child_b.span_id,
        }

    def test_span_ids_unique(self):
        tracer = Tracer()
        ids = [tracer.start_span("s", 0.0).span_id for _ in range(50)]
        assert len(set(ids)) == 50

    def test_double_end_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("s", 0.0)
        tracer.end_span(span, 1.0)
        with pytest.raises(TracerError):
            tracer.end_span(span, 2.0)

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("s", 5.0)
        with pytest.raises(TracerError):
            tracer.end_span(span, 4.0)

    def test_open_spans(self):
        tracer = Tracer()
        a = tracer.start_span("a", 0.0)
        b = tracer.start_span("b", 0.0)
        tracer.end_span(a, 1.0)
        assert [s.span_id for s in tracer.open_spans()] == [b.span_id]

    def test_filtering_and_len(self):
        tracer = Tracer()
        tracer.start_span("join", 0.0)
        tracer.start_span("join", 1.0)
        tracer.event("message.send", 0.5, type="CpRstMsg")
        assert len(tracer.spans("join")) == 2
        assert len(tracer.spans("other")) == 0
        assert len(tracer.events("message.send")) == 1
        assert len(tracer) == 3
        tracer.clear()
        assert len(tracer) == 0


class TestEvents:
    def test_event_attached_to_span(self):
        tracer = Tracer()
        span = tracer.start_span("join", 0.0)
        tracer.event("message.send", 0.25, span=span, type="CpRstMsg")
        (event,) = tracer.events()
        assert event.span_id == span.span_id
        assert event.attrs["type"] == "CpRstMsg"

    def test_event_without_span(self):
        tracer = Tracer()
        tracer.event("tick", 1.0)
        assert tracer.events()[0].span_id is None


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        span = tracer.start_span("join", 0.0, node="x")
        tracer.event("message.send", 0.5, span=span)
        tracer.end_span(span, 1.0)
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.events() == []
        assert list(tracer.records()) == []

    def test_returns_shared_dummy_span(self):
        tracer = NullTracer()
        a = tracer.start_span("a", 0.0)
        b = tracer.start_span("b", 5.0)
        assert a is b is NULL_SPAN

    def test_end_is_idempotent(self):
        tracer = NullTracer()
        span = tracer.start_span("a", 0.0)
        tracer.end_span(span, 1.0)
        tracer.end_span(span, 2.0)  # no TracerError on the null path
        assert NULL_SPAN.end is None

    def test_enabled_flag(self):
        assert Tracer().enabled
        assert not NullTracer().enabled
