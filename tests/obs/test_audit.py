"""LiveAuditor tests: theorem gates on a healthy run, and mid-run
fault detection when a JoinNotiMsg is dropped via the transport's
drop hook (the acceptance scenario for ``repro join --audit``)."""

import pytest

from repro.experiments.workloads import make_workload
from repro.obs import AuditConfig, Observability


def run_audited(fault=False, heartbeat_until=None, config=None):
    """A fixed-seed concurrent-join workload with a LiveAuditor.

    With ``fault=True`` the first JoinNotiMsg is silently dropped via
    ``Transport.drop_filter``, losing exactly one neighbor-table
    notification.  ``heartbeat_until`` schedules no-op ticks past
    natural quiescence so the auditor keeps sampling while a stalled
    joiner's phase-residence grows beyond any healthy value.
    """
    workload = make_workload(
        base=4, num_digits=4, n=50, m=15, seed=0,
        obs=Observability.metrics_only(),
    )
    net = workload.network
    auditor = net.attach_auditor(config)
    dropped = []
    if fault:
        def drop_first_join_noti(message, dst):
            if message.type_name == "JoinNotiMsg" and not dropped:
                dropped.append((str(message.sender), str(dst)))
                return True
            return False

        net.transport.drop_filter = drop_first_join_noti
    if heartbeat_until is not None:
        for tick in range(0, heartbeat_until + 1, 50):
            net.simulator.schedule_at(float(tick), lambda: None)
    workload.start_all_joins()
    workload.run()
    return net, auditor, dropped


# Tuned for the seed-0 workload above: the longest healthy phase
# residence is ~524 virtual-time units, so 700 never fires on the
# healthy run but catches a joiner wedged by a lost notification.
FAULT_CONFIG = AuditConfig(
    interval=50.0, stall_timeout=700.0, persist_samples=4
)


class TestHealthyRun:
    def test_all_gates_pass(self):
        net, auditor, _ = run_audited(config=FAULT_CONFIG)
        report = auditor.finalize()
        assert report.passed
        assert report.incidents == []
        assert report.final_consistent
        assert report.all_in_system
        assert net.all_in_system()

    def test_theorem3_gate_recorded(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        report = auditor.finalize()
        assert report.theorem3_bound == 5  # d + 1 with d = 4
        assert 0 < report.theorem3_max <= report.theorem3_bound

    def test_theorem45_gate_recorded(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        report = auditor.finalize()
        assert report.theorem4_expected > 0
        assert report.theorem5_bound >= report.theorem4_expected
        assert report.measured_mean_join_noti <= report.theorem5_bound

    def test_samples_taken_during_run(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        report = auditor.finalize()
        assert len(report.samples) > 5
        times = [sample.time for sample in report.samples]
        assert times == sorted(times)
        # Early samples see open joins; by quiescence all are closed.
        assert report.samples[0].open_joins > 0
        assert report.samples[-1].open_joins == 0

    def test_finalize_is_idempotent(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        first = auditor.finalize()
        second = auditor.finalize()
        assert first is second


class TestFaultInjectedRun:
    """Dropping one JoinNotiMsg must be flagged *during* the run."""

    def run_faulted(self):
        return run_audited(
            fault=True, heartbeat_until=2000, config=FAULT_CONFIG
        )

    def test_fault_fails_the_audit(self):
        _, auditor, dropped = self.run_faulted()
        report = auditor.finalize()
        assert dropped == [("0213", "0113")]
        assert not report.passed
        assert not report.final_consistent

    def test_stall_flagged_mid_run(self):
        net, auditor, _ = self.run_faulted()
        report = auditor.finalize()
        stalls = [i for i in report.incidents if i.kind == "stall"]
        assert stalls, "lost JoinNotiMsg should wedge the joiner"
        # Flagged before the simulation went quiescent, not post hoc.
        assert stalls[0].time < net.simulator.now
        assert "0213" in stalls[0].detail

    def test_inconsistency_flagged_mid_run(self):
        net, auditor, dropped = self.run_faulted()
        report = auditor.finalize()
        mid_run = [
            i for i in report.incidents if i.kind == "consistency"
        ]
        assert mid_run, "missing table entry should surface mid-run"
        assert mid_run[0].time < net.simulator.now
        # The flagged violation is the dropped edge itself: the
        # notified node never installed the joiner.
        receiver = dropped[0][1]
        assert any(
            "false_negative" in i.detail and receiver in i.detail
            for i in mid_run
        )

    def test_quiescence_gates_also_fire(self):
        _, auditor, _ = self.run_faulted()
        report = auditor.finalize()
        kinds = {i.kind for i in report.incidents}
        assert "quiescent_stall" in kinds
        assert "final_consistency" in kinds

    def test_heartbeats_alone_cause_no_incidents(self):
        _, auditor, _ = run_audited(
            fault=False, heartbeat_until=2000, config=FAULT_CONFIG
        )
        report = auditor.finalize()
        assert report.passed
        assert report.incidents == []


class TestAuditConfig:
    def test_defaults_validate(self):
        AuditConfig().validated()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"persist_samples": 0},
            {"stall_timeout": -1.0},
            {"theorem45_tolerance": -0.1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AuditConfig(**kwargs).validated()


class TestAuditReportOutput:
    def test_json_dict_shape(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        data = auditor.finalize().to_json_dict()
        assert data["passed"] is True
        assert data["gates"]["theorem3"]["bound"] == 5
        assert data["samples"][0]["time"] >= 0.0
        assert data["incidents"] == []

    def test_render_text_sections(self):
        _, auditor, _ = run_audited(config=FAULT_CONFIG)
        text = auditor.finalize().render_text()
        assert "audit" in text
        assert "Theorem 3 gate" in text
        assert "Theorem 4/5 gate" in text
        assert "final check" in text


class TestIncrementalAuditor:
    """AuditConfig(incremental=True) must be an invisible speedup:
    same samples, incidents and verdicts as the full checker."""

    def _reports(self, fault):
        full_config = AuditConfig(
            interval=50.0, stall_timeout=700.0, persist_samples=4
        )
        inc_config = AuditConfig(
            interval=50.0, stall_timeout=700.0, persist_samples=4,
            incremental=True,
        )
        _, full_auditor, _ = run_audited(fault=fault, config=full_config)
        _, inc_auditor, _ = run_audited(fault=fault, config=inc_config)
        return full_auditor.finalize(), inc_auditor.finalize()

    def test_healthy_run_identical(self):
        full, incremental = self._reports(fault=False)
        assert incremental.passed and full.passed
        assert len(incremental.samples) == len(full.samples)
        for ours, theirs in zip(incremental.samples, full.samples):
            assert ours.to_json_dict() == theirs.to_json_dict()

    def test_faulted_run_flags_same_incidents(self):
        full, incremental = self._reports(fault=True)
        assert not incremental.passed and not full.passed
        assert [
            (incident.kind, incident.severity, incident.time)
            for incident in incremental.incidents
        ] == [
            (incident.kind, incident.severity, incident.time)
            for incident in full.incidents
        ]
        assert [s.violations for s in incremental.samples] == [
            s.violations for s in full.samples
        ]
