"""Regenerate the golden fixtures used by ``test_report.py``.

Run after any intentional change to the protocol, the tracer's record
shapes, or the report format::

    PYTHONPATH=src python tests/obs/make_golden.py

then review the diff of ``tests/obs/golden/`` before committing.
"""

import os

from repro.experiments.workloads import make_workload
from repro.obs import Observability, RunReport, write_trace_jsonl

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def main() -> None:
    obs = Observability.tracing()
    workload = make_workload(
        base=3, num_digits=3, n=10, m=3, seed=11, obs=obs
    )
    workload.start_all_joins()
    workload.run()
    assert workload.network.check_consistency().consistent

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    trace = os.path.join(GOLDEN_DIR, "small_run.jsonl")
    records = write_trace_jsonl(obs.tracer, trace)

    report = RunReport.from_file(trace)
    with open(
        os.path.join(GOLDEN_DIR, "small_run_report.txt"),
        "w", encoding="utf-8",
    ) as handle:
        handle.write(report.render_text() + "\n")
    with open(
        os.path.join(GOLDEN_DIR, "small_run_report.json"),
        "w", encoding="utf-8",
    ) as handle:
        handle.write(report.to_json())
    print(f"wrote {records} trace records and both goldens to {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
