"""MetricsRegistry unit tests: instruments, labels, snapshots."""

import pytest

from repro.obs.metrics import MetricsError, MetricsRegistry


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        registry.counter("sent").inc()
        registry.counter("sent").inc(4)
        assert registry.value("sent") == 5

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("sent", type="A").inc()
        registry.counter("sent", type="B").inc(2)
        assert registry.value("sent", type="A") == 1
        assert registry.value("sent", type="B") == 2
        assert registry.value("sent", type="C") is None

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("m", a="1", b="2").inc()
        assert registry.value("m", b="2", a="1") == 1

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("sent").inc(-1)


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.add(-3)
        assert registry.value("depth") == 7


class TestHistograms:
    def test_summary_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == 10.0
        assert hist.mean == 2.5
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_empty_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        assert hist.count == 0
        assert hist.mean == 0.0
        with pytest.raises(ValueError):
            hist.quantile(0.5)

    def test_value_rejects_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("latency").observe(1.0)
        with pytest.raises(MetricsError):
            registry.value("latency")


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricsError):
            registry.gauge("m")

    def test_snapshot_flattens_labels_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("sent", type="A").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(2.0)
        snap = registry.snapshot()
        assert snap["sent{type=A}"] == 3
        assert snap["depth"] == 7
        assert snap["lat_count"] == 1.0
        assert snap["lat_sum"] == 2.0
        assert snap["lat_mean"] == 2.0

    def test_values_by_label(self):
        registry = MetricsRegistry()
        registry.counter("sent", type="A").inc(3)
        registry.counter("sent", type="B").inc(1)
        registry.counter("other", type="A").inc(9)
        assert registry.values_by_label("sent", "type") == {"A": 3, "B": 1}

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.counter("sent", type="A")
        registry.counter("sent", type="B")
        assert "sent" in registry
        assert "missing" not in registry
        assert len(registry) == 2
