"""Integration tests: the obs layer over real protocol runs.

The acceptance bar from the ISSUE: an instrumented run must (a) emit
join phase-transition spans and message events, and (b) reproduce the
paper's Figure 15(b)/Theorem 3 accounting from the metrics registry
*exactly* -- same numbers as the legacy ``MessageStats`` API.
"""

import random

import pytest

from repro.analysis.expected_cost import theorem3_bound
from repro.ids.idspace import IdSpace
from repro.network.message import Message
from repro.network.node import NetworkNode
from repro.network.transport import Transport
from repro.obs import NullTracer, Observability
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.status import JOIN_PHASES, NodeStatus
from repro.sim.scheduler import Simulator
from repro.topology.attachment import ConstantLatencyModel

SPACE = IdSpace(4, 4)
BASE, DIGITS, N, M, SEED = 4, 4, 30, 10, 7


def run_instrumented(obs):
    ids = IdSpace(BASE, DIGITS).random_unique_ids(
        N + M, random.Random(SEED)
    )
    net = JoinProtocolNetwork.from_oracle(
        IdSpace(BASE, DIGITS), ids[:N], seed=SEED, obs=obs
    )
    for joiner in ids[N:]:
        net.start_join(joiner)
    net.run()
    assert net.all_in_system()
    assert net.check_consistency().consistent
    return net


class TestPhaseSpans:
    def test_one_root_span_per_joiner_all_closed(self):
        obs = Observability.tracing()
        net = run_instrumented(obs)
        roots = obs.tracer.spans("join")
        assert len(roots) == M
        assert all(span.finished for span in roots)
        assert obs.tracer.open_spans() == []
        assert {span.attrs["node"] for span in roots} == {
            str(j) for j in net.joiner_ids
        }

    def test_phase_children_nest_and_order(self):
        obs = Observability.tracing()
        run_instrumented(obs)
        order = [f"phase:{s.value}" for s in JOIN_PHASES[:-1]]
        for root in obs.tracer.spans("join"):
            children = obs.tracer.children(root)
            assert children, "join span has no phase children"
            names = [c.name for c in children]
            # Every visited phase appears once, in protocol order
            # (waiting may be re-entered never; copying always first).
            assert names == [n for n in order if n in names]
            assert names[0] == "phase:copying"
            # Phases tile the join span contiguously.
            assert children[0].start == root.start
            assert children[-1].end == root.end
            for prev, cur in zip(children, children[1:]):
                assert prev.end == cur.start

    def test_phase_indices_are_monotone(self):
        assert [s.phase_index for s in JOIN_PHASES] == [0, 1, 2, 3]
        assert NodeStatus.LEAVING.phase_index == -1
        assert NodeStatus.COPYING.is_join_phase
        assert not NodeStatus.LEFT.is_join_phase

    def test_join_latency_histogram(self):
        obs = Observability.tracing()
        run_instrumented(obs)
        hist = obs.metrics.histogram("join_latency")
        assert hist.count == M
        assert all(sample > 0 for sample in hist.samples)


class TestMessageEvents:
    def test_send_and_deliver_pair_up(self):
        obs = Observability.tracing()
        net = run_instrumented(obs)
        sends = obs.tracer.events("message.send")
        delivers = obs.tracer.events("message.deliver")
        assert len(sends) == net.stats.total_messages
        assert len(delivers) == len(sends)

    def test_send_counts_match_stats_by_type(self):
        obs = Observability.tracing()
        net = run_instrumented(obs)
        by_type = {}
        for event in obs.tracer.events("message.send"):
            name = event.attrs["type"]
            by_type[name] = by_type.get(name, 0) + 1
        assert by_type == net.stats.snapshot()

    def test_lossy_drop_traced(self):
        obs = Observability.tracing()
        sim = Simulator()
        transport = Transport(
            sim, ConstantLatencyModel(1.0), tracer=obs.tracer
        )
        node = NetworkNode(SPACE.from_string("0000"), transport)
        ghost = SPACE.from_string("3333")
        assert not transport.send_lossy(ghost, Message(node.node_id))
        (drop,) = obs.tracer.events("message.drop")
        assert drop.attrs["dst"] == str(ghost)
        assert transport.stats.total_dropped == 1


class TestRegistryReproducesPaperCounts:
    def test_fig15b_and_theorem3_counts_exact(self):
        obs = Observability.tracing()
        net = run_instrumented(obs)
        registry = obs.metrics
        bound = theorem3_bound(DIGITS)
        for joiner in net.joiner_ids:
            sender = str(joiner)
            # Figure 15(b): JoinNotiMsg per joiner.
            noti = registry.value(
                "messages_sent_by", sender=sender, type="JoinNotiMsg"
            ) or 0
            assert noti == net.stats.sent_by(joiner, "JoinNotiMsg")
            # Theorem 3: CpRstMsg + JoinWaitMsg <= d + 1.
            thm3 = (
                (registry.value(
                    "messages_sent_by", sender=sender, type="CpRstMsg"
                ) or 0)
                + (registry.value(
                    "messages_sent_by", sender=sender, type="JoinWaitMsg"
                ) or 0)
            )
            assert thm3 == (
                net.stats.sent_by(joiner, "CpRstMsg")
                + net.stats.sent_by(joiner, "JoinWaitMsg")
            )
            assert thm3 <= bound

    def test_registry_per_type_equals_snapshot(self):
        obs = Observability.tracing()
        net = run_instrumented(obs)
        assert obs.metrics.values_by_label("messages_sent", "type") == (
            net.stats.snapshot()
        )


class TestDisabledPath:
    def test_null_tracer_records_nothing_but_metrics_flow(self):
        obs = Observability.metrics_only()
        net = run_instrumented(obs)
        assert isinstance(obs.tracer, NullTracer)
        assert len(obs.tracer) == 0
        # Metrics still live: message counters, phases, latency.
        assert obs.metrics.value("messages_total") == (
            net.stats.total_messages
        )
        assert obs.metrics.value(
            "join_phase_transitions", phase="in_system"
        ) == M
        assert obs.metrics.histogram("join_latency").count == M

    def test_transport_normalizes_disabled_tracer_to_none(self):
        sim = Simulator()
        transport = Transport(
            sim, ConstantLatencyModel(1.0), tracer=NullTracer()
        )
        assert transport.tracer is None

    def test_uninstrumented_network_unchanged(self):
        net = run_instrumented(None)
        assert net.obs is None
        assert net.simulator.on_event_fired is None
        with pytest.raises(ValueError):
            net.collect_final_metrics()


class TestSchedulerAndTables:
    def test_scheduler_probe_samples_depth(self):
        obs = Observability.metrics_only()
        net = run_instrumented(obs)
        assert obs.metrics.value("sim_events_fired") == (
            net.simulator.events_fired
        )
        hist = obs.metrics.histogram("sim_queue_depth_sampled")
        assert hist.count >= 1

    def test_collect_final_metrics_table_fill(self):
        obs = Observability.metrics_only()
        net = run_instrumented(obs)
        snapshot = net.collect_final_metrics()
        assert snapshot["table_fill_nodes"] == N + M
        # Level 0 of every table has at least the self-pointer.
        assert snapshot["table_fill{level=0}"] >= 1.0

    def test_deterministic_traces(self):
        first = Observability.tracing()
        second = Observability.tracing()
        run_instrumented(first)
        run_instrumented(second)
        from repro.obs import trace_to_records

        assert trace_to_records(first.tracer) == trace_to_records(
            second.tracer
        )
