"""Unit tests for the trace log."""

from repro.sim.trace import NullTraceLog, TraceLog, TraceRecord


class TestTraceLog:
    def test_records_everything_by_default(self):
        log = TraceLog()
        log.record(1.0, "status", node="x")
        log.record(2.0, "fill", node="y")
        assert len(log) == 2

    def test_category_filter(self):
        log = TraceLog(categories=["status"])
        log.record(1.0, "status", node="x")
        log.record(2.0, "fill", node="y")
        assert log.count("status") == 1
        assert log.count("fill") == 0

    def test_records_by_category(self):
        log = TraceLog()
        log.record(1.0, "a", v=1)
        log.record(2.0, "b", v=2)
        assert [r.category for r in log.records("a")] == ["a"]
        assert len(log.records()) == 2

    def test_record_get(self):
        record = TraceRecord(1.0, "x", (("k", "v"),))
        assert record.get("k") == "v"
        assert record.get("missing", 7) == 7

    def test_clear(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.clear()
        assert len(log) == 0

    def test_null_trace_drops_everything(self):
        log = NullTraceLog()
        log.record(1.0, "a", v=1)
        assert len(log) == 0
        assert not log.enabled("a")
