"""Batched scheduling, the timer wheel, and tombstone compaction.

The batched-queue features must be pure throughput devices: for any
entry sequence, the pop order is identical to one-by-one pushes on the
plain heap, with or without the wheel, before or after compaction.
"""

import random

from repro.sim.events import _COMPACT_MIN_DEAD, EventQueue
from repro.sim.scheduler import Simulator


def _drain(queue):
    """Pop everything; returns the (time, seq, payload) sequence."""
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append((event.time, event.seq, event.payload))


def _random_entries(rng, count, horizon=100.0):
    return [
        (rng.uniform(0.0, horizon), None, index) for index in range(count)
    ]


class TestPushMany:
    def test_matches_individual_pushes(self):
        rng = random.Random(0)
        entries = _random_entries(rng, 200)
        one_by_one = EventQueue()
        for time, action, payload in entries:
            one_by_one.push(time, action, payload)
        batched = EventQueue()
        batched.push_many(entries)
        assert _drain(batched) == _drain(one_by_one)

    def test_simultaneous_entries_fire_in_batch_order(self):
        queue = EventQueue()
        queue.push_many([(5.0, None, tag) for tag in "abcde"])
        assert [payload for _, _, payload in _drain(queue)] == list("abcde")

    def test_batch_interleaves_with_existing_entries(self):
        queue = EventQueue()
        queue.push(2.0, None, "old-2")
        queue.push(4.0, None, "old-4")
        queue.push_many([(1.0, None, "new-1"), (3.0, None, "new-3")])
        assert [payload for _, _, payload in _drain(queue)] == [
            "new-1", "old-2", "new-3", "old-4",
        ]

    def test_returned_events_are_cancellable(self):
        queue = EventQueue()
        events = queue.push_many([(float(t), None, t) for t in range(6)])
        events[2].cancel()
        events[4].cancel()
        assert [payload for _, _, payload in _drain(queue)] == [0, 1, 3, 5]


class TestTimerWheel:
    def test_pop_sequence_identical_with_and_without_wheel(self):
        rng = random.Random(1)
        entries = _random_entries(rng, 300)
        plain = EventQueue()
        wheeled = EventQueue(wheel_tick=7.5)
        for time, action, payload in entries:
            plain.push(time, action, payload)
            wheeled.push(time, action, payload)
        assert _drain(wheeled) == _drain(plain)

    def test_push_many_identical_with_and_without_wheel(self):
        rng = random.Random(2)
        entries = _random_entries(rng, 300)
        plain = EventQueue()
        plain.push_many(entries)
        wheeled = EventQueue(wheel_tick=3.0)
        wheeled.push_many(entries)
        assert _drain(wheeled) == _drain(plain)

    def test_cancel_inside_wheel_slot(self):
        queue = EventQueue(wheel_tick=10.0)
        keep = queue.push(25.0, None, "keep")
        drop = queue.push(26.0, None, "drop")
        assert queue.wheel_slots >= 1
        drop.cancel()
        assert [payload for _, _, payload in _drain(queue)] == ["keep"]
        assert keep.time == 25.0

    def test_interleaved_pops_and_pushes(self):
        """Near-future pushes landing below the spill bound while the
        wheel still holds far-future slots."""
        rng = random.Random(3)
        plain, wheeled = EventQueue(), EventQueue(wheel_tick=5.0)
        now = 0.0
        expected_payload = 0
        for _round in range(50):
            time = now + rng.uniform(0.0, 40.0)
            for queue in (plain, wheeled):
                queue.push(time, None, _round)
            if rng.random() < 0.5:
                a, b = plain.pop(), wheeled.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    assert (a.time, a.seq, a.payload) == (
                        b.time, b.seq, b.payload,
                    )
                    now = a.time
        assert _drain(wheeled) == _drain(plain)


class TestCompaction:
    def test_tombstones_are_compacted(self):
        queue = EventQueue()
        live = queue.push(1e9, None, "survivor")
        cancelled = [
            queue.push(float(t), None, t)
            for t in range(4 * _COMPACT_MIN_DEAD)
        ]
        for event in cancelled:
            event.cancel()
        # Dead entries never outnumber live by more than the
        # compaction threshold allows.
        assert queue.dead_entries <= _COMPACT_MIN_DEAD + 1
        assert len(queue) == 1
        assert _drain(queue) == [(1e9, live.seq, "survivor")]

    def test_compaction_preserves_pop_order(self):
        rng = random.Random(4)
        entries = _random_entries(rng, 400)
        reference = EventQueue()
        compacted = EventQueue()
        keep = []
        for time, action, payload in entries:
            event = compacted.push(time, action, payload)
            if payload % 3 == 0:
                keep.append(payload)
                reference.push(time, None, payload)
                continue
            event.cancel()
        drained = [payload for _, _, payload in _drain(compacted)]
        assert drained == [payload for _, _, payload in _drain(reference)]
        assert sorted(drained) == sorted(keep)

    def test_compaction_inside_wheel(self):
        queue = EventQueue(wheel_tick=2.0)
        survivors = []
        for t in range(6 * _COMPACT_MIN_DEAD):
            event = queue.push(float(t), None, t)
            if t % 10 == 0:
                survivors.append(t)
            else:
                event.cancel()
        assert [payload for _, _, payload in _drain(queue)] == survivors


class TestSchedulerBatching:
    def test_schedule_many_equals_schedule_loop(self):
        fired_loop, fired_batch = [], []
        loop, batch = Simulator(), Simulator()
        for index in range(20):
            delay = (index * 7) % 5 + 0.5
            loop.schedule(delay, fired_loop.append, index)
        batch.schedule_many(
            ((index * 7) % 5 + 0.5, fired_batch.append, index)
            for index in range(20)
        )
        loop.run()
        batch.run()
        assert fired_batch == fired_loop

    def test_schedule_many_rejects_past_delays(self):
        simulator = Simulator()
        try:
            simulator.schedule_many([(-1.0, None, None)])
        except Exception as exc:
            assert "past" in str(exc)
        else:
            raise AssertionError("negative delay accepted")
