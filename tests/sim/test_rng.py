"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).stream("ids")
        b = RngFactory(42).stream("ids")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_streams_independent_of_creation_order(self):
        f1 = RngFactory(42)
        f2 = RngFactory(42)
        f1.stream("a")
        first = f1.stream("b").random()
        second = f2.stream("b").random()  # "a" never created on f2
        assert first == second

    def test_different_names_differ(self):
        factory = RngFactory(42)
        assert factory.stream("a").random() != factory.stream("b").random()

    def test_different_seeds_differ(self):
        assert (
            RngFactory(1).stream("x").random()
            != RngFactory(2).stream("x").random()
        )

    def test_stream_is_cached(self):
        factory = RngFactory(1)
        assert factory.stream("x") is factory.stream("x")

    def test_fork_changes_streams(self):
        base = RngFactory(1)
        forked = base.fork(3)
        assert forked.seed != base.seed
        assert base.stream("x").random() != forked.stream("x").random()

    def test_fork_deterministic(self):
        assert RngFactory(1).fork(3).seed == RngFactory(1).fork(3).seed
