"""Unit tests for the simulator run loop."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


class TestScheduling:
    def test_schedule_relative_delay(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(3.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.0]

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_rejects_past_absolute_time(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_nested_scheduling_from_handler(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(2.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 3.0]


class TestRunLoop:
    def test_time_is_monotonic(self):
        sim = Simulator()
        seen = []
        for delay in (5.0, 1.0, 3.0, 1.0):
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)

    def test_run_until_bound_is_respected(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_watchdog(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        fired = sim.run(max_events=25)
        assert fired == 25
        assert not sim.quiesced()

    def test_events_fired_accumulates(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 4

    def test_run_not_reentrant(self):
        sim = Simulator()
        error = {}

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error["raised"] = exc

        sim.schedule(1.0, reenter)
        sim.run()
        assert "raised" in error

    def test_quiesced(self):
        sim = Simulator()
        assert sim.quiesced()
        sim.schedule(1.0, lambda: None)
        assert not sim.quiesced()
        sim.run()
        assert sim.quiesced()

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        assert sim.run() == 0
        assert fired == []
