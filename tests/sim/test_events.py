"""Unit tests for the event queue."""

from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append(3))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.fire()
        assert fired == [1, 2, 3]

    def test_ties_fire_fifo(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.push(1.0, fired.append, i)
        while queue:
            queue.pop().fire()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, fired.append, "keep")
        drop = queue.push(0.5, fired.append, "drop")
        drop.cancel()
        while queue:
            queue.pop().fire()
        assert fired == ["keep"]

    def test_cancelled_event_fire_is_noop(self):
        fired = []
        event = Event(0.0, 0, fired.append, "x")
        event.cancel()
        event.fire()
        assert fired == []

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    def test_payload_passed_to_action(self):
        queue = EventQueue()
        got = []
        queue.push(1.0, got.append, {"a": 1})
        queue.pop().fire()
        assert got == [{"a": 1}]
