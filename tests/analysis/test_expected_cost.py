"""Theorems 4 and 5: the expected-cost model.

Includes the headline validation: our closed form reproduces the
paper's printed Theorem 5 bounds (8.001 twice for n=3096 and 6.986
twice for n=7192) to three decimals, and the literal Theorem 4 sum
agrees with the Vandermonde closed form exactly on small parameters.
"""

import math
import random

import pytest

from repro.analysis.expected_cost import (
    expected_join_noti,
    expected_join_noti_upper_bound,
    level_distribution,
    level_distribution_naive,
    theorem3_bound,
)
from repro.ids.idspace import IdSpace


class TestLevelDistribution:
    def test_sums_to_one(self):
        for n, b, d in [(10, 4, 5), (100, 16, 8), (3096, 16, 8), (50, 2, 10)]:
            dist = level_distribution(n, b, d)
            assert sum(dist) == pytest.approx(1.0, abs=1e-9)
            assert all(p >= -1e-12 for p in dist)

    def test_closed_form_equals_naive_sum(self):
        for n, b, d in [(5, 2, 4), (20, 4, 4), (50, 4, 5), (30, 8, 3)]:
            closed = level_distribution(n, b, d)
            naive = level_distribution_naive(n, b, d)
            for p_closed, p_naive in zip(closed, naive):
                assert p_closed == pytest.approx(p_naive, abs=1e-12)

    def test_monte_carlo_agreement(self):
        """The distribution is the law of the max-shared-suffix length
        of n random distinct IDs vs a fixed joiner."""
        b, d, n = 4, 4, 10
        space = IdSpace(b, d)
        rng = random.Random(0)
        joiner = space.from_string("0123")
        trials = 3000
        histogram = [0] * d
        for _ in range(trials):
            others = space.random_unique_ids(n, rng, exclude=[joiner])
            best = max(joiner.csuf_len(o) for o in others)
            histogram[best] += 1
        dist = level_distribution(n, b, d)
        for level in range(d):
            assert histogram[level] / trials == pytest.approx(
                dist[level], abs=0.03
            )

    def test_mass_concentrates_near_log_b_n(self):
        dist = level_distribution(4096, 16, 8)
        # log_16(4096) = 3: levels 2-4 should hold nearly all the mass.
        assert sum(dist[2:5]) > 0.9

    def test_huge_d_regime(self):
        """b=16, d=40 must not overflow or lose mass."""
        dist = level_distribution(100_000, 16, 40)
        assert sum(dist) == pytest.approx(1.0, abs=1e-6)
        # Levels far above log_16(100000) ~ 4.2 carry ~no mass
        # (P(some node shares 10 digits) ~ n/16^10 ~ 1e-7).
        assert sum(dist[10:]) < 1e-6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            level_distribution(0, 4, 4)
        with pytest.raises(ValueError):
            level_distribution(16, 2, 4)  # n > b^d - 1
        with pytest.raises(ValueError):
            level_distribution(5, 1, 4)


class TestTheorem4:
    def test_expected_join_noti_positive(self):
        assert expected_join_noti(3096, 16, 8) > 0

    def test_sawtooth_in_n(self):
        """E(J) is non-monotone in n: notification sets grow toward
        each power of b, then collapse past it."""
        values = [
            expected_join_noti(n, 16, 8)
            for n in (1000, 4000, 16000, 60000)
        ]
        diffs = [b - a for a, b in zip(values, values[1:])]
        assert any(d > 0 for d in diffs)
        assert any(d < 0 for d in diffs)
        assert all(2.0 < v < 10.0 for v in values)

    def test_monte_carlo_single_join(self):
        """Simulated JoinNotiMsg count for single joins matches E(J)."""
        from repro.protocol.join import JoinProtocolNetwork
        from repro.topology.attachment import UniformLatencyModel

        b, d, n = 4, 5, 40
        space = IdSpace(b, d)
        totals = []
        for seed in range(30):
            rng = random.Random(seed)
            ids = space.random_unique_ids(n + 1, rng)
            net = JoinProtocolNetwork.from_oracle(
                space,
                ids[:n],
                latency_model=UniformLatencyModel(random.Random(seed)),
                seed=seed,
            )
            net.start_join(ids[n], at=0.0)
            net.run()
            assert net.check_consistency().consistent
            totals.append(net.stats.sent_by(ids[n], "JoinNotiMsg"))
        measured = sum(totals) / len(totals)
        predicted = expected_join_noti(n, b, d)
        # 30 trials: allow generous but meaningful tolerance.
        assert measured == pytest.approx(predicted, rel=0.35)


class TestTheorem5:
    def test_paper_printed_bounds(self):
        """The paper reports 8.001, 8.001, 6.986, 6.986 for its four
        Figure 15(b) configurations."""
        assert expected_join_noti_upper_bound(3096, 1000, 16, 8) == pytest.approx(
            8.001, abs=5e-4
        )
        assert expected_join_noti_upper_bound(3096, 1000, 16, 40) == pytest.approx(
            8.001, abs=5e-4
        )
        assert expected_join_noti_upper_bound(7192, 1000, 16, 8) == pytest.approx(
            6.986, abs=5e-4
        )
        assert expected_join_noti_upper_bound(7192, 1000, 16, 40) == pytest.approx(
            6.986, abs=5e-4
        )

    def test_bound_dominates_theorem4(self):
        for n in (1000, 3096, 7192):
            assert expected_join_noti_upper_bound(
                n, 1, 16, 8
            ) > expected_join_noti(n, 16, 8)

    def test_bound_increases_with_m(self):
        assert expected_join_noti_upper_bound(
            3096, 2000, 16, 8
        ) > expected_join_noti_upper_bound(3096, 500, 16, 8)

    def test_bound_nearly_independent_of_d_beyond_log_n(self):
        """Figure 15(a): the d=8 and d=40 curves coincide."""
        for n in (10_000, 50_000, 100_000):
            assert expected_join_noti_upper_bound(
                n, 500, 16, 8
            ) == pytest.approx(
                expected_join_noti_upper_bound(n, 500, 16, 40), abs=1e-4
            )

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            expected_join_noti_upper_bound(100, 0, 16, 8)


class TestTheorem3Bound:
    def test_value(self):
        assert theorem3_bound(8) == 9
