"""Unit tests for combinatorial helpers."""

import math

import pytest

from repro.analysis.combinatorics import (
    comb_exact,
    comb_ratio,
    log_comb,
    log_comb_ratio,
)


class TestLogComb:
    def test_matches_exact_small(self):
        for n in range(1, 20):
            for k in range(n + 1):
                assert log_comb(n, k) == pytest.approx(
                    math.log(comb_exact(n, k)), abs=1e-9
                )

    def test_out_of_range_is_neg_inf(self):
        assert log_comb(5, 6) == float("-inf")
        assert log_comb(5, -1) == float("-inf")


class TestLogCombRatio:
    def test_matches_exact_small(self):
        for a in range(1, 15):
            for n in range(a, 18):
                for k in range(0, a + 1):
                    expected = math.log(comb_exact(a, k) / comb_exact(n, k))
                    assert log_comb_ratio(a, n, k) == pytest.approx(
                        expected, abs=1e-9
                    )

    def test_zero_when_a_equals_n(self):
        assert log_comb_ratio(100, 100, 7) == 0.0

    def test_neg_inf_when_k_exceeds_a(self):
        assert log_comb_ratio(3, 10, 5) == float("-inf")

    def test_large_k_numpy_path_matches_python_path(self):
        # k >= 64 goes through numpy; compare against exact integers.
        a, n, k = 500, 900, 100
        expected = math.log(comb_exact(a, k)) - math.log(comb_exact(n, k))
        assert log_comb_ratio(a, n, k) == pytest.approx(expected, rel=1e-10)

    def test_astronomical_upper_indices(self):
        """The b=16, d=40 regime: upper indices near 16**40."""
        n_total = 16**40 - 1
        a = 16**40 - 16**39
        value = log_comb_ratio(a, n_total, 100_000)
        # P(no node shares >= 1 digit) = (15/16)^100000 approximately.
        assert value == pytest.approx(100_000 * math.log(15 / 16), rel=1e-9)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            log_comb_ratio(10, 5, 2)  # a > n
        with pytest.raises(ValueError):
            log_comb_ratio(5, 10, 11)  # k > n
        with pytest.raises(ValueError):
            log_comb_ratio(-1, 10, 2)


class TestCombRatio:
    def test_in_unit_interval(self):
        assert 0.0 <= comb_ratio(50, 100, 10) <= 1.0

    def test_zero_when_impossible(self):
        assert comb_ratio(3, 10, 5) == 0.0

    def test_one_when_equal(self):
        assert comb_ratio(10, 10, 5) == 1.0
