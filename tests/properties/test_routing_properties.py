"""Property-based tests for oracle tables and routing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.checker import check_consistency
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import route


@st.composite
def networks(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(2, 5))
    space = IdSpace(base, num_digits)
    count = draw(st.integers(1, min(25, space.size)))
    seed = draw(st.integers(0, 10_000))
    ids = space.random_unique_ids(count, random.Random(seed))
    tables = build_consistent_tables(ids, random.Random(seed + 1))
    return space, ids, tables


class TestOracleProperties:
    @given(networks())
    @settings(max_examples=40, deadline=None)
    def test_oracle_always_consistent(self, data):
        _, _, tables = data
        assert check_consistency(tables).consistent

    @given(networks())
    @settings(max_examples=40, deadline=None)
    def test_routing_reaches_everything(self, data):
        space, ids, tables = data
        provider = lambda n: tables[n]  # noqa: E731
        rng = random.Random(0)
        pairs = (
            [(a, b) for a in ids for b in ids]
            if len(ids) <= 8
            else [tuple(rng.sample(ids, 2)) for _ in range(40)]
        )
        for source, target in pairs:
            result = route(provider, source, target)
            assert result.success
            assert result.hops <= space.num_digits

    @given(networks())
    @settings(max_examples=30, deadline=None)
    def test_route_suffix_progress_monotone(self, data):
        space, ids, tables = data
        provider = lambda n: tables[n]  # noqa: E731
        rng = random.Random(1)
        for _ in range(10):
            if len(ids) < 2:
                return
            source, target = rng.sample(ids, 2)
            result = route(provider, source, target)
            matches = [n.csuf_len(target) for n in result.path]
            assert matches == sorted(matches)
            assert all(
                later > earlier
                for earlier, later in zip(matches, matches[1:])
            )
