"""Property-based tests of the join protocol itself.

These are the executable versions of the paper's theorems:

* Theorem 1 -- after an arbitrary batch of (possibly concurrent,
  possibly dependent) joins, the network is consistent.
* Theorem 2 -- every joiner reaches status in_system.
* Theorem 3 -- every joiner sends at most d+1 CpRstMsg + JoinWaitMsg.
* Propositions 5.1-5.3 -- per notification group, the realized C-set
  tree matches the template and conditions (1)-(3) hold.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expected_cost import theorem3_bound
from repro.csettree.conditions import (
    check_condition1,
    check_condition2,
    check_condition3,
)
from repro.csettree.notification import group_by_notification_suffix
from repro.csettree.realized import build_realized_tree
from repro.csettree.template import CSetTreeTemplate
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.sizing import SizingPolicy
from repro.topology.attachment import UniformLatencyModel

MAX_EVENTS = 3_000_000


@st.composite
def join_scenarios(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(3, 6))
    space = IdSpace(base, num_digits)
    total_cap = min(30, space.size)
    n_initial = draw(st.integers(1, max(1, total_cap - 2)))
    n_joiners = draw(st.integers(1, total_cap - n_initial))
    seed = draw(st.integers(0, 100_000))
    # Random start times: mixes simultaneous, overlapping and
    # effectively-sequential joining periods.
    starts = draw(
        st.lists(
            st.floats(0, 500),
            min_size=n_joiners,
            max_size=n_joiners,
        )
    )
    sizing = draw(st.sampled_from(list(SizingPolicy)))
    return space, n_initial, n_joiners, seed, starts, sizing


def run_scenario(space, n_initial, n_joiners, seed, starts, sizing):
    rng = random.Random(seed)
    ids = space.random_unique_ids(n_initial + n_joiners, rng)
    initial, joiners = ids[:n_initial], ids[n_initial:]
    net = JoinProtocolNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(
            random.Random(seed + 1), 1.0, 100.0
        ),
        sizing=sizing,
        seed=seed,
    )
    for joiner, at in zip(joiners, starts):
        net.start_join(joiner, at=at)
    net.run(max_events=MAX_EVENTS)
    assert net.simulator.quiesced(), "event watchdog hit"
    return net, initial, joiners


class TestProtocolProperties:
    @given(join_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_theorems_1_2_3(self, scenario):
        space, n_initial, n_joiners, seed, starts, sizing = scenario
        net, initial, joiners = run_scenario(
            space, n_initial, n_joiners, seed, starts, sizing
        )
        # Theorem 2: all S-nodes.
        assert net.all_in_system()
        # Theorem 1: consistency (Definition 3.8, incl. final S states).
        report = net.check_consistency()
        assert report.consistent, report.violations[:3]
        # Theorem 3.
        bound = theorem3_bound(space.num_digits)
        assert all(c <= bound for c in net.theorem3_counts())

    @given(join_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_cset_tree_conditions_per_group(self, scenario):
        space, n_initial, n_joiners, seed, starts, sizing = scenario
        net, initial, joiners = run_scenario(
            space, n_initial, n_joiners, seed, starts, sizing
        )
        tables = net.tables()
        groups = group_by_notification_suffix(joiners, initial)
        for omega, members in groups.items():
            template = CSetTreeTemplate(omega, members)
            realized = build_realized_tree(template, initial, tables)
            assert check_condition1(template, realized) == []
            assert check_condition2(template, initial, tables) == []
            assert check_condition3(template, tables) == []

    @given(join_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_reverse_neighbors_mirror_forward_pointers(self, scenario):
        space, n_initial, n_joiners, seed, starts, sizing = scenario
        net, _, _ = run_scenario(
            space, n_initial, n_joiners, seed, starts, sizing
        )
        tables = net.tables()
        for node_id, table in tables.items():
            for entry in table.entries():
                if entry.node == node_id:
                    continue
                assert node_id in tables[entry.node].reverse_neighbors(
                    entry.level, entry.digit
                )
