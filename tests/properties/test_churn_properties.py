"""Property-based churn tests: joins, leaves, failures interleaved.

Dynamic membership (property P4) end to end: starting from a random
consistent network, apply a random sequence of churn phases --
concurrent join batches, serialized leaves, crash batches followed by
recovery -- and require Definition 3.8 consistency after every phase.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.leave import leave_sequentially
from repro.recovery import fail_nodes, recover_from_failures
from repro.topology.attachment import UniformLatencyModel


@st.composite
def churn_scripts(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(3, 5))
    seed = draw(st.integers(0, 10_000))
    phases = draw(
        st.lists(
            st.sampled_from(["join", "leave", "fail"]),
            min_size=1,
            max_size=4,
        )
    )
    return base, num_digits, seed, phases


def _pointer_graph_connected(net, victims) -> bool:
    """Is the undirected survivor pointer graph connected after
    removing ``victims``?  When it is not, no message from one side
    can ever discover the other, so full recovery is impossible."""
    survivors = [m for m in net.member_ids() if m not in victims]
    if len(survivors) <= 1:
        return True
    adjacency = {node: set() for node in survivors}
    for node in survivors:
        for neighbor in net.node(node).table.distinct_neighbors():
            if neighbor != node and neighbor in adjacency:
                adjacency[node].add(neighbor)
                adjacency[neighbor].add(node)
    seen = {survivors[0]}
    stack = [survivors[0]]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == len(survivors)


@given(churn_scripts())
@settings(max_examples=15, deadline=None)
def test_consistency_survives_churn(script):
    base, num_digits, seed, phases = script
    space = IdSpace(base, num_digits)
    rng = random.Random(seed)
    capacity = space.size
    initial = space.random_unique_ids(min(15, capacity // 2), rng)
    net = JoinProtocolNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(random.Random(seed + 1)),
        seed=seed,
    )
    all_ever = set(initial)

    for phase in phases:
        members = net.member_ids()
        if phase == "join":
            room = capacity - len(all_ever)
            count = min(rng.randint(1, 6), room)
            if count <= 0:
                continue
            joiners = space.random_unique_ids(count, rng, exclude=all_ever)
            all_ever.update(joiners)
            for joiner in joiners:
                net.start_join(
                    joiner,
                    gateway=rng.choice(members),
                    at=net.simulator.now,
                )
            net.run(max_events=2_000_000)
        elif phase == "leave":
            if len(members) <= 2:
                continue
            count = rng.randint(1, min(4, len(members) - 1))
            leave_sequentially(net, rng.sample(members, count))
        else:  # fail
            if len(members) <= 3:
                continue
            count = rng.randint(1, min(3, len(members) - 2))
            victims = rng.sample(members, count)
            survivors_connected = _pointer_graph_connected(
                net, set(victims)
            )
            fail_nodes(net, victims)
            report = recover_from_failures(net)
            if survivors_connected:
                assert report.consistent, str(report)
            elif not report.consistent:
                # A partitioned survivor pointer graph is beyond any
                # distributed recovery; the sweep must still leave no
                # dangling pointers (only missing ones).
                kinds = net.check_consistency().by_kind()
                assert set(kinds) <= {"false_negative"}, kinds
                break  # downstream phases would inherit the partition
        assert net.simulator.quiesced()
        report = net.check_consistency()
        assert report.consistent, (
            phase,
            [str(v) for v in report.violations[:3]],
        )
        assert net.all_in_system()
