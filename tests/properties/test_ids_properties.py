"""Property-based tests for the ID space and suffix algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.ids.suffix import SuffixIndex, csuf

BASES = st.sampled_from([2, 3, 4, 8, 16])


@st.composite
def id_pairs(draw):
    base = draw(BASES)
    num_digits = draw(st.integers(2, 8))
    space = IdSpace(base, num_digits)
    x = space.from_int(draw(st.integers(0, space.size - 1)))
    y = space.from_int(draw(st.integers(0, space.size - 1)))
    return space, x, y


@st.composite
def id_sets(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(2, 5))
    space = IdSpace(base, num_digits)
    values = draw(
        st.sets(st.integers(0, space.size - 1), min_size=1, max_size=20)
    )
    return space, [space.from_int(v) for v in values]


class TestCsufProperties:
    @given(id_pairs())
    @settings(max_examples=150)
    def test_csuf_symmetric(self, data):
        _, x, y = data
        assert x.csuf_len(y) == y.csuf_len(x)

    @given(id_pairs())
    @settings(max_examples=150)
    def test_csuf_is_common_suffix_and_maximal(self, data):
        _, x, y = data
        k = x.csuf_len(y)
        common = csuf(x, y)
        assert x.has_suffix(common)
        assert y.has_suffix(common)
        if k < x.num_digits:
            # One digit longer is no longer common.
            assert x.suffix(k + 1) != y.suffix(k + 1)

    @given(id_pairs())
    @settings(max_examples=100)
    def test_csuf_full_iff_equal(self, data):
        _, x, y = data
        assert (x.csuf_len(y) == x.num_digits) == (x == y)

    @given(id_pairs())
    @settings(max_examples=100)
    def test_equal_csuf_under_triangle(self, data):
        """csuf(x, z) >= min(csuf(x, y), csuf(y, z)): suffix matching
        is an ultrametric."""
        space, x, y = data
        import random

        z = space.from_int(random.Random(x.to_int() ^ y.to_int()).randrange(space.size))
        assert x.csuf_len(z) >= min(x.csuf_len(y), y.csuf_len(z))


class TestRoundTrips:
    @given(id_pairs())
    @settings(max_examples=100)
    def test_string_roundtrip(self, data):
        space, x, _ = data
        assert space.from_string(str(x)) == x

    @given(id_pairs())
    @settings(max_examples=100)
    def test_int_roundtrip(self, data):
        space, x, _ = data
        assert space.from_int(x.to_int()) == x

    @given(id_pairs())
    @settings(max_examples=100)
    def test_digits_roundtrip(self, data):
        space, x, _ = data
        assert space.from_digits(x.digits) == x


class TestSuffixIndexProperties:
    @given(id_sets(), st.integers(0, 5))
    @settings(max_examples=100)
    def test_matches_brute_force(self, data, raw_len):
        space, members = data
        index = SuffixIndex(members)
        probe = members[0]
        k = min(raw_len, space.num_digits)
        suffix = probe.suffix(k)
        expected = {m for m in members if m.has_suffix(suffix)}
        assert index.nodes_with(suffix) == expected
        assert index.any_with(suffix) == bool(expected)
        assert index.count_with(suffix) == len(expected)

    @given(id_sets())
    @settings(max_examples=50)
    def test_add_then_discard_restores(self, data):
        space, members = data
        index = SuffixIndex(members[:-1])
        before = {
            m: index.nodes_with(m.suffix(1)) for m in members[:-1]
        }
        index.add(members[-1])
        index.discard(members[-1])
        for m in members[:-1]:
            assert index.nodes_with(m.suffix(1)) == before[m]
