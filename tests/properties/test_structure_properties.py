"""Structural property tests across construction methods.

Definition 3.8 determines the *fill pattern* of every table from the
membership alone (an entry is filled iff its suffix class is
inhabited); only the choice of occupant is free.  So any two correct
constructions -- oracle, protocol bootstrap, protocol joins -- must
agree exactly on which positions are filled.  Surrogate routing's
origin-independence must likewise hold on any consistent network.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.network_init import initialize_network
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import surrogate_route
from repro.topology.attachment import UniformLatencyModel


@st.composite
def memberships(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(2, 5))
    space = IdSpace(base, num_digits)
    count = draw(st.integers(2, min(18, space.size)))
    seed = draw(st.integers(0, 10_000))
    ids = space.random_unique_ids(count, random.Random(seed))
    return space, ids, seed


def fill_pattern(table):
    return frozenset((e.level, e.digit) for e in table.entries())


class TestFillPatternDeterminism:
    @given(memberships())
    @settings(max_examples=15, deadline=None)
    def test_bootstrap_matches_oracle_pattern(self, data):
        space, ids, seed = data
        oracle = build_consistent_tables(ids, random.Random(seed))
        net = JoinProtocolNetwork(
            space,
            latency_model=UniformLatencyModel(random.Random(seed + 1)),
            seed=seed,
        )
        initialize_network(net, ids, stagger=0.0)
        net.run(max_events=3_000_000)
        assert net.all_in_system()
        for node_id in ids:
            assert fill_pattern(net.table(node_id)) == fill_pattern(
                oracle[node_id]
            ), node_id

    @given(memberships())
    @settings(max_examples=15, deadline=None)
    def test_join_protocol_matches_oracle_pattern(self, data):
        space, ids, seed = data
        if len(ids) < 4:
            return
        split = len(ids) // 2
        net = JoinProtocolNetwork.from_oracle(
            space,
            ids[:split],
            latency_model=UniformLatencyModel(random.Random(seed + 2)),
            seed=seed,
        )
        for joiner in ids[split:]:
            net.start_join(joiner, at=0.0)
        net.run(max_events=3_000_000)
        assert net.all_in_system()
        oracle = build_consistent_tables(ids)
        for node_id in ids:
            assert fill_pattern(net.table(node_id)) == fill_pattern(
                oracle[node_id]
            ), node_id


class TestSurrogateOriginIndependence:
    @given(memberships(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_origins_agree(self, data, key_seed):
        space, ids, seed = data
        tables = build_consistent_tables(ids, random.Random(seed))
        provider = lambda nid: tables[nid]  # noqa: E731
        key_rng = random.Random(key_seed)
        for _ in range(5):
            target = space.from_int(key_rng.randrange(space.size))
            roots = set()
            for origin in ids:
                result = surrogate_route(provider, origin, target)
                assert result.success
                roots.add(result.path[-1])
            assert len(roots) == 1
            root = roots.pop()
            best = max(member.csuf_len(target) for member in ids)
            assert root.csuf_len(target) == best
