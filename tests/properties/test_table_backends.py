"""Array-backed NeighborTable vs the dict reference backend.

The flat-array :class:`~repro.routing.table.NeighborTable` replaced the
sparse dict layout kept in
:class:`~repro.perf.baseline.DictNeighborTable`.  The two must be
observationally identical: same results and same exceptions for any
operation sequence, and -- end to end -- byte-identical fixed-seed
runs, because the protocol's array fast paths fall back to the public
API on the dict backend.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.workloads import make_workload
from repro.ids.idspace import IdSpace
from repro.perf.baseline import DictNeighborTable, use_dict_tables
from repro.routing.entry import NeighborState, TableEntry
from repro.routing.oracle import build_consistent_tables
from repro.routing.table import EntryConflictError, NeighborTable


def _random_occupant(space, owner, level, digit, rng):
    """A node satisfying the ``(level, digit)``-entry constraint of
    ``owner`` (shares the length-``level`` suffix, has ``digit`` next)."""
    digits = [rng.randrange(space.base) for _ in range(space.num_digits)]
    digits[:level] = owner.digits[:level]
    digits[level] = digit
    return space.from_digits(tuple(digits))


def _observable_state(table):
    """Everything a caller can see through the public API."""
    per_cell = [
        (
            table.get(level, digit),
            table.state(level, digit),
            table.is_empty(level, digit),
        )
        for level in range(table.num_levels)
        for digit in range(table.base)
    ]
    reverse = {
        position: frozenset(table.reverse_neighbors(*position))
        for position in table.reverse_positions()
    }
    return (
        per_cell,
        table.snapshot(),
        tuple(table.entries()),
        [table.entries_at_level(level) for level in range(table.num_levels)],
        table.distinct_neighbors(),
        table.filled_count(),
        len(table),
        reverse,
    )


def _apply_op(table, op, args):
    """Run one mutation; returns (result, exception type)."""
    try:
        return getattr(table, op)(*args), None
    except (EntryConflictError, KeyError, ValueError) as exc:
        return None, type(exc)


@st.composite
def op_scripts(draw):
    base = draw(st.sampled_from([2, 3, 4]))
    num_digits = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    num_ops = draw(st.integers(1, 40))
    return base, num_digits, seed, num_ops


class TestBackendEquivalence:
    @given(op_scripts())
    @settings(max_examples=60, deadline=None)
    def test_random_operation_sequences(self, script):
        base, num_digits, seed, num_ops = script
        space = IdSpace(base, num_digits)
        rng = random.Random(seed)
        owner = space.from_int(rng.randrange(space.size))
        array_table = NeighborTable(owner)
        dict_table = DictNeighborTable(owner)
        states = [NeighborState.T, NeighborState.S]

        for _ in range(num_ops):
            level = rng.randrange(num_digits)
            digit = rng.randrange(base)
            op = rng.choice(
                [
                    "set_entry",
                    "set_entry",
                    "fill_empty",
                    "set_state",
                    "replace_entry",
                    "clear_entry",
                    "add_reverse",
                    "remove_reverse",
                    "remove_reverse_everywhere",
                ]
            )
            occupant = _random_occupant(space, owner, level, digit, rng)
            state = rng.choice(states)
            if op == "set_entry" or op == "replace_entry":
                args = (level, digit, occupant, state)
            elif op == "fill_empty":
                if not array_table.is_empty(level, digit):
                    continue  # trusted fast path: caller checks first
                args = (level, digit, occupant, state)
            elif op == "set_state":
                args = (level, digit, state)
            elif op == "clear_entry":
                args = (level, digit)
            elif op == "remove_reverse_everywhere":
                args = (occupant,)
            else:  # add_reverse / remove_reverse
                args = (level, digit, occupant)

            result_a, error_a = _apply_op(array_table, op, args)
            result_d, error_d = _apply_op(dict_table, op, args)
            assert error_a == error_d, (op, args)
            assert result_a == result_d, (op, args)
            assert _observable_state(array_table) == _observable_state(
                dict_table
            )
            assert array_table.positions_of(occupant) == sorted(
                dict_table.positions_of(occupant)
            )


class TestBulkLoadEquivalence:
    @given(op_scripts())
    @settings(max_examples=40, deadline=None)
    def test_load_sorted_matches_fill_empty(self, script):
        base, num_digits, seed, _ = script
        space = IdSpace(base, num_digits)
        rng = random.Random(seed)
        owner = space.from_int(rng.randrange(space.size))
        items = []
        for level in range(num_digits):
            for digit in range(base):
                if rng.random() < 0.5:
                    continue
                occupant = _random_occupant(space, owner, level, digit, rng)
                state = rng.choice([NeighborState.T, NeighborState.S])
                items.append(TableEntry(level, digit, occupant, state))

        for cls in (NeighborTable, DictNeighborTable):
            bulk, single = cls(owner), cls(owner)
            bulk.load_sorted(items)
            for level, digit, occupant, state in items:
                single.fill_empty(level, digit, occupant, state)
            assert _observable_state(bulk) == _observable_state(single)

    def test_load_sorted_requires_empty_table(self):
        space = IdSpace(4, 3)
        owner = space.from_int(5)
        for cls in (NeighborTable, DictNeighborTable):
            table = cls(owner)
            table.fill_empty(0, owner.digit(0), owner, NeighborState.S)
            try:
                table.load_sorted(
                    [TableEntry(0, owner.digit(0), owner, NeighborState.S)]
                )
            except RuntimeError:
                pass
            else:
                raise AssertionError(f"{cls.__name__} accepted a reload")


def _oracle_fingerprint(tables):
    return {
        owner: (
            table.snapshot(),
            {
                position: frozenset(table.reverse_neighbors(*position))
                for position in table.reverse_positions()
            },
        )
        for owner, table in tables.items()
    }


def _run_golden_workload():
    workload = make_workload(
        base=4, num_digits=5, n=80, m=30, seed=13, use_topology=False
    )
    workload.start_all_joins(at=0.0)
    workload.run()
    net = workload.network
    return (
        net.stats.snapshot(),
        {owner: table.snapshot() for owner, table in net.tables().items()},
        net.runtime.events_fired,
        net.runtime.now,
    )


class TestGoldenTraces:
    def test_oracle_identical_across_backends(self):
        space = IdSpace(4, 5)
        rng = random.Random(3)
        members = [space.from_int(v) for v in rng.sample(range(space.size), 90)]
        array_tables = build_consistent_tables(
            members, rng=random.Random(17)
        )
        with use_dict_tables():
            dict_tables = build_consistent_tables(
                members, rng=random.Random(17)
            )
        assert any(
            type(table) is DictNeighborTable
            for table in dict_tables.values()
        )
        assert _oracle_fingerprint(array_tables) == _oracle_fingerprint(
            dict_tables
        )

    def test_fixed_seed_run_identical_across_backends(self):
        """The whole simulation -- message counts, event counts, final
        virtual time, every table -- is byte-identical on either
        backend for a fixed seed."""
        array_run = _run_golden_workload()
        with use_dict_tables():
            dict_run = _run_golden_workload()
        assert array_run == dict_run
