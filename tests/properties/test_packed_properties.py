"""Packed-int ID form vs the digit-tuple algebra.

Every hot path that operates on ``NodeId._packed`` directly -- the
oracle's suffix bucketing, the protocol's XOR-lowbit csuf arithmetic,
the incremental checker's masked suffix tests -- assumes the packed
form is a faithful encoding of the digit tuple.  These properties pin
that encoding down against the public digit API.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids.digits import PACKED_DIGIT_BITS, PACKED_DIGIT_MASK, NodeId
from repro.ids.idspace import IdSpace
from repro.protocol.node import _LOWBIT_K

W = PACKED_DIGIT_BITS


@st.composite
def id_pairs(draw):
    base = draw(st.sampled_from([2, 3, 4, 8, 16]))
    num_digits = draw(st.integers(2, 8))
    space = IdSpace(base, num_digits)
    x = space.from_int(draw(st.integers(0, space.size - 1)))
    y = space.from_int(draw(st.integers(0, space.size - 1)))
    # Bias toward shared suffixes so the masked comparisons actually
    # agree at positive lengths (random pairs differ at digit 0).
    if draw(st.booleans()):
        k = draw(st.integers(0, num_digits))
        y = space.from_digits(x.digits[:k] + y.digits[k:])
    return space, x, y


class TestPackedEncoding:
    @given(id_pairs())
    @settings(max_examples=200)
    def test_digit_extraction(self, data):
        """``(packed >> k*w) & mask`` is exactly ``digits[k]``
        (digit index 0 = least significant = suffix end)."""
        _, x, _ = data
        for k in range(x.num_digits):
            assert (x._packed >> (k * W)) & PACKED_DIGIT_MASK == x.digit(k)

    @given(id_pairs())
    @settings(max_examples=200)
    def test_packed_equality_iff_id_equality(self, data):
        _, x, y = data
        assert (x._packed == y._packed) == (x == y)

    @given(id_pairs())
    @settings(max_examples=200)
    def test_masked_suffix_equality(self, data):
        """Low ``k*w`` bits agree iff the length-``k`` suffixes agree
        (the oracle's and incremental checker's bucketing rule)."""
        _, x, y = data
        for k in range(x.num_digits + 1):
            mask = (1 << (k * W)) - 1
            assert ((x._packed & mask) == (y._packed & mask)) == (
                x.suffix(k) == y.suffix(k)
            )

    @given(id_pairs())
    @settings(max_examples=200)
    def test_xor_lowbit_csuf(self, data):
        """The protocol hot loop's csuf: the level of the lowest set
        bit of ``x ^ y`` equals ``csuf_len`` for distinct IDs."""
        _, x, y = data
        z = x._packed ^ y._packed
        if z == 0:
            assert x == y
            return
        lowbit = z & -z
        assert (lowbit.bit_length() - 1) // W == x.csuf_len(y)
        # The memoized lowbit->level table agrees with the arithmetic.
        assert _LOWBIT_K[lowbit] == x.csuf_len(y)

    def test_lowbit_table_is_exhaustive(self):
        """One entry per bit of a 32-digit packed ID, each mapping its
        power of two to the digit level containing that bit."""
        assert len(_LOWBIT_K) == 32 * W
        for bit in range(32 * W):
            assert _LOWBIT_K[1 << bit] == bit // W


class TestPackedSuffixChecks:
    @given(id_pairs())
    @settings(max_examples=200)
    def test_entry_constraint_matches_has_suffix(self, data):
        """The masked form of the Definition 3.8 entry constraint
        (occupant has suffix ``digit . x.suffix(level)``) used by the
        incremental checker equals the NodeId-algebra form."""
        _, x, y = data
        for level in range(x.num_digits):
            mask = (1 << (level * W)) - 1
            for digit in range(min(x.base, 4)):
                packed_ok = (y._packed & mask) == (x._packed & mask) and (
                    (y._packed >> (level * W)) & PACKED_DIGIT_MASK
                ) == digit
                algebra_ok = y.has_suffix(x.suffix(level) + (digit,))
                assert packed_ok == algebra_ok
