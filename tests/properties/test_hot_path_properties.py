"""Fast-path vs reference-implementation equivalence for NodeId.

The optimized ``csuf_len`` / cached ``__str__`` / cached ``to_int`` /
ordering operators must agree with the pre-optimization digit loops in
:mod:`repro.perf.baseline` on every input -- the fast paths are pure
speedups, never behaviour changes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids.idspace import IdSpace
from repro.perf import naive_csuf_len, naive_str, naive_to_int

BASES = st.sampled_from([2, 3, 4, 8, 16])


@st.composite
def id_pairs(draw):
    base = draw(BASES)
    num_digits = draw(st.integers(2, 8))
    space = IdSpace(base, num_digits)
    x = space.from_int(draw(st.integers(0, space.size - 1)))
    y = space.from_int(draw(st.integers(0, space.size - 1)))
    # Bias toward long shared suffixes, where the fast path's loop
    # actually runs (random pairs usually differ at digit 0).
    if draw(st.booleans()):
        k = draw(st.integers(0, num_digits))
        y = space.from_digits(x.digits[:k] + y.digits[k:])
    return space, x, y


class TestCsufFastPath:
    @given(id_pairs())
    @settings(max_examples=200)
    def test_matches_naive(self, data):
        _, x, y = data
        assert x.csuf_len(y) == naive_csuf_len(x, y)

    @given(id_pairs())
    @settings(max_examples=50)
    def test_self_and_equal_ids(self, data):
        space, x, _ = data
        assert x.csuf_len(x) == x.num_digits
        clone = space.from_digits(x.digits)  # equal but not identical
        assert clone is not x
        assert x.csuf_len(clone) == naive_csuf_len(x, clone)
        assert x.csuf_len(clone) == x.num_digits


class TestCachedForms:
    @given(id_pairs())
    @settings(max_examples=100)
    def test_str_cache_matches_naive(self, data):
        _, x, _ = data
        first = str(x)
        assert first == naive_str(x)
        assert str(x) == first  # cached second call

    @given(id_pairs())
    @settings(max_examples=100)
    def test_int_cache_matches_naive(self, data):
        _, x, _ = data
        assert x.to_int() == naive_to_int(x)
        assert x.to_int() == naive_to_int(x)


class TestComparisonFastPaths:
    @given(id_pairs())
    @settings(max_examples=150)
    def test_eq_ne_consistent(self, data):
        space, x, y = data
        naive_equal = x.digits == y.digits and x.base == y.base
        assert (x == y) == naive_equal
        assert (x != y) == (not naive_equal)
        clone = space.from_digits(x.digits)
        assert x == clone and not (x != clone)

    @given(id_pairs())
    @settings(max_examples=150)
    def test_ordering_matches_numeric_value(self, data):
        _, x, y = data
        assert (x < y) == (naive_to_int(x) < naive_to_int(y))
        assert (x <= y) == (naive_to_int(x) <= naive_to_int(y))
        assert (x > y) == (naive_to_int(x) > naive_to_int(y))
        assert (x >= y) == (naive_to_int(x) >= naive_to_int(y))
