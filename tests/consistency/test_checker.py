"""Unit tests for the Definition 3.8 consistency checker."""

import random

from repro.consistency.checker import check_consistency
from repro.ids.idspace import IdSpace
from repro.routing.entry import NeighborState
from repro.routing.oracle import build_consistent_tables
from repro.routing.table import NeighborTable

SPACE = IdSpace(4, 4)


def consistent_tables(count=20, seed=0):
    ids = SPACE.random_unique_ids(count, random.Random(seed))
    return ids, build_consistent_tables(ids, random.Random(seed))


class TestChecker:
    def test_oracle_network_is_consistent(self):
        ids, tables = consistent_tables()
        report = check_consistency(tables)
        assert report.consistent
        assert report.violations == []
        assert report.nodes_checked == len(ids)
        assert report.entries_checked == len(ids) * 4 * 4

    def test_detects_false_negative(self):
        ids, tables = consistent_tables(seed=1)
        # Blank out a non-self entry of the first node.
        table = tables[ids[0]]
        victim = next(
            e for e in table.entries() if e.node != ids[0]
        )
        fresh = NeighborTable(ids[0])
        for e in table.entries():
            if (e.level, e.digit) != (victim.level, victim.digit):
                fresh.set_entry(e.level, e.digit, e.node, e.state)
        tables[ids[0]] = fresh
        report = check_consistency(tables)
        assert not report.consistent
        assert report.by_kind().get("false_negative", 0) >= 1

    def test_detects_false_positive(self):
        # A node points at an ID that is not in the network.
        a = SPACE.from_string("0000")
        ghost = SPACE.from_string("3211")
        tables = build_consistent_tables([a])
        tables[a].set_entry(0, 1, ghost, NeighborState.S)
        report = check_consistency(tables)
        assert not report.consistent
        assert report.by_kind().get("false_positive", 0) == 1

    def test_detects_bad_occupant_not_member(self):
        ids, tables = consistent_tables(seed=3)
        outsider = next(
            candidate
            for candidate in (
                SPACE.from_int(v) for v in range(SPACE.size)
            )
            if candidate not in set(ids)
        )
        # Insert the outsider where its suffix fits.
        owner = ids[0]
        k = owner.csuf_len(outsider)
        fresh = NeighborTable(owner)
        for e in tables[owner].entries():
            if (e.level, e.digit) != (k, outsider.digit(k)):
                fresh.set_entry(e.level, e.digit, e.node, e.state)
        fresh.set_entry(k, outsider.digit(k), outsider, NeighborState.S)
        tables[owner] = fresh
        report = check_consistency(tables)
        assert not report.consistent
        kinds = report.by_kind()
        # Either flagged as non-member occupant, or (if no member had
        # that suffix) as a false positive.
        assert kinds.get("bad_occupant", 0) + kinds.get("false_positive", 0) >= 1

    def test_detects_stale_t_state(self):
        ids, tables = consistent_tables(seed=4)
        table = tables[ids[0]]
        entry = next(e for e in table.entries() if e.node != ids[0])
        table.set_state(entry.level, entry.digit, NeighborState.T)
        report = check_consistency(tables)
        assert not report.consistent
        assert report.by_kind() == {"stale_state": 1}

    def test_t_states_allowed_midjoin(self):
        ids, tables = consistent_tables(seed=5)
        table = tables[ids[0]]
        entry = next(e for e in table.entries() if e.node != ids[0])
        table.set_state(entry.level, entry.digit, NeighborState.T)
        report = check_consistency(tables, require_s_states=False)
        assert report.consistent

    def test_max_violations_truncates(self):
        a = SPACE.from_string("0000")
        tables = {a: NeighborTable(a)}  # everything missing
        report = check_consistency(tables, max_violations=2)
        assert not report.consistent
        assert len(report.violations) == 2

    def test_violation_str_is_informative(self):
        a = SPACE.from_string("0000")
        tables = {a: NeighborTable(a)}
        report = check_consistency(tables, max_violations=1)
        text = str(report.violations[0])
        assert "false_negative" in text
