"""Unit tests for the reachability verifier (Lemma 3.1)."""

import random

from repro.consistency.checker import check_consistency
from repro.consistency.verifier import verify_reachability
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.table import NeighborTable

SPACE = IdSpace(4, 4)


def consistent_tables(count=15, seed=0):
    ids = SPACE.random_unique_ids(count, random.Random(seed))
    return ids, build_consistent_tables(ids, random.Random(seed))


class TestVerifier:
    def test_exhaustive_on_consistent_network(self):
        ids, tables = consistent_tables()
        report = verify_reachability(tables)
        assert report.all_reachable
        assert report.pairs_checked == len(ids) * (len(ids) - 1)
        assert report.max_hops <= SPACE.num_digits
        assert report.failures == []

    def test_sampled_mode(self):
        ids, tables = consistent_tables(seed=1)
        report = verify_reachability(
            tables, sample_pairs=50, rng=random.Random(0)
        )
        assert report.all_reachable
        assert report.pairs_checked == 50

    def test_mean_hops_positive(self):
        ids, tables = consistent_tables(seed=2)
        report = verify_reachability(tables)
        assert 0 < report.mean_hops <= SPACE.num_digits

    def test_lemma31_failure_detected(self):
        """Breaking condition (a) breaks reachability (Lemma 3.1)."""
        ids, tables = consistent_tables(seed=3)
        # Give one node a completely empty table except self-pointers:
        # other nodes become unreachable FROM it.
        from repro.routing.entry import NeighborState

        crippled = NeighborTable(ids[0])
        for level in range(SPACE.num_digits):
            crippled.set_entry(
                level, ids[0].digit(level), ids[0], NeighborState.S
            )
        tables[ids[0]] = crippled
        assert not check_consistency(tables).consistent
        report = verify_reachability(tables, max_failures=5)
        assert not report.all_reachable
        assert len(report.failures) >= 1

    def test_single_node_trivially_reachable(self):
        node = SPACE.from_string("0123")
        tables = build_consistent_tables([node])
        report = verify_reachability(tables)
        assert report.all_reachable
        assert report.pairs_checked == 0

    def test_sampled_on_tiny_network(self):
        node = SPACE.from_string("0123")
        tables = build_consistent_tables([node])
        report = verify_reachability(tables, sample_pairs=10)
        assert report.all_reachable
