"""Mid-run invariant tests: monotone reachability during joins.

Section 3.1: "once a set of nodes can reach each other, they always
can thereafter."  These tests checkpoint that property repeatedly
*while* concurrent joins are in flight.
"""

import pytest

from repro.consistency.invariants import (
    MonitorReport,
    check_s_node_reachability,
    run_with_monitor,
)

from tests.conftest import build_network, make_ids


class TestMidRunInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_s_node_reachability_throughout_joins(self, seed):
        space, ids = make_ids(4, 4, 35, seed=seed)
        net = build_network(space, ids[:20], seed=seed)
        for joiner in ids[20:]:
            net.start_join(joiner, at=0.0)
        report = run_with_monitor(net, check_interval=20.0)
        assert report.ok, [str(v) for v in report.violations]
        assert report.checkpoints > 3
        assert net.check_consistency().consistent

    def test_monitor_with_sampled_pairs(self):
        space, ids = make_ids(4, 4, 40, seed=10)
        net = build_network(space, ids[:25], seed=10)
        for joiner in ids[25:]:
            net.start_join(joiner, at=0.0)
        report = run_with_monitor(
            net, check_interval=15.0, sample_pairs=30
        )
        assert report.ok

    def test_monitor_detects_planted_violation(self):
        """Sanity: the monitor is not vacuous -- a sabotaged table is
        caught."""
        from repro.routing.table import NeighborTable
        from repro.routing.entry import NeighborState

        space, ids = make_ids(4, 4, 20, seed=11)
        net = build_network(space, ids, seed=11)
        victim = net.node(ids[0])
        crippled = NeighborTable(ids[0])
        for level in range(space.num_digits):
            crippled.set_entry(
                level, ids[0].digit(level), ids[0], NeighborState.S
            )
        victim.table = crippled
        report = MonitorReport()
        check_s_node_reachability(net, 0.0, report)
        assert not report.ok

    def test_monitor_on_single_node_network(self):
        from repro.protocol.join import JoinProtocolNetwork
        from repro.protocol.network_init import single_node_table
        from repro.topology.attachment import ConstantLatencyModel

        space, ids = make_ids(4, 4, 1, seed=12)
        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0)
        )
        net.add_s_node(ids[0], single_node_table(ids[0]))
        report = run_with_monitor(net, check_interval=5.0)
        assert report.ok
