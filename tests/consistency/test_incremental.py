"""IncrementalChecker parity with the full Definition 3.8 scan.

The dirty-set checker must return the same verdict -- and the same
violation positions and kinds -- as relaxed-mode
:func:`check_consistency` on *every* call of any call sequence, while
re-verifying only nodes whose answer could have changed.  Details of
``false_negative`` messages may cite a different exemplar member of
the non-empty suffix class, so parity is asserted on
``(node, level, digit, kind)`` keys.
"""

import random

from repro.consistency.checker import check_consistency
from repro.consistency.incremental import IncrementalChecker
from repro.ids.idspace import IdSpace
from repro.routing.entry import NeighborState
from repro.routing.oracle import build_consistent_tables

SPACE = IdSpace(4, 4)


def _members(count, seed):
    return SPACE.random_unique_ids(count, random.Random(seed))


def _keys(report):
    return sorted(
        (str(v.node), v.level, v.digit, v.kind) for v in report.violations
    )


def _assert_parity(checker, tables, occupants, max_violations=None):
    incremental = checker.check(
        tables, occupant_set=occupants, max_violations=max_violations
    )
    full = check_consistency(
        tables,
        require_s_states=False,
        occupant_set=occupants,
        max_violations=max_violations,
    )
    assert incremental.consistent == full.consistent
    if max_violations is None:
        assert _keys(incremental) == _keys(full)
    else:
        assert len(incremental.violations) == len(full.violations)
    return incremental


class TestIncrementalParity:
    def test_consistent_network_stays_consistent(self):
        members = _members(25, seed=0)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        _assert_parity(checker, tables, tables.keys())
        first_pass = checker.nodes_reverified
        assert first_pass == len(members)
        # No mutation: second call re-verifies nothing.
        _assert_parity(checker, tables, tables.keys())
        assert checker.nodes_reverified == first_pass

    def test_empty_mapping_is_vacuously_consistent(self):
        checker = IncrementalChecker()
        report = checker.check({}, occupant_set=[])
        assert report.consistent
        full = check_consistency({}, require_s_states=False, occupant_set=[])
        assert full.consistent

    def test_growth_dirties_only_affected_nodes(self):
        members = _members(30, seed=2)
        grown = build_consistent_tables(members)
        initial = {m: t for m, t in grown.items() if m != members[-1]}
        # The initial view has false negatives at the newcomer's
        # positions in other tables only if those tables point at it;
        # either way parity must hold before and after the growth.
        checker = IncrementalChecker()
        _assert_parity(checker, initial, initial.keys())
        baseline = checker.nodes_reverified
        _assert_parity(checker, grown, grown.keys())
        assert checker.full_rescans == 0
        # Far fewer than a full rescan: the newcomer plus nodes whose
        # tables mention it or whose suffix classes it extended.
        assert checker.nodes_reverified - baseline < len(grown)

    def test_detects_introduced_false_negative(self):
        members = _members(20, seed=3)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        _assert_parity(checker, tables, tables.keys())
        victim = next(
            e
            for e in tables[members[0]].entries()
            if e.node != members[0]
        )
        tables[members[0]].clear_entry(victim.level, victim.digit)
        report = _assert_parity(checker, tables, tables.keys())
        assert not report.consistent
        # Version bump localizes the recheck to the mutated table.
        assert checker.full_rescans == 0

    def test_violation_can_resolve_without_version_change(self):
        members = _members(20, seed=4)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        victim_owner = members[0]
        victim = next(
            e
            for e in tables[victim_owner].entries()
            if e.node != victim_owner
        )
        tables[victim_owner].clear_entry(victim.level, victim.digit)
        report = _assert_parity(checker, tables, tables.keys())
        assert not report.consistent
        # Repair it; the cached-violation dirty rule must re-verify.
        tables[victim_owner].set_entry(
            victim.level, victim.digit, victim.node, NeighborState.S
        )
        report = _assert_parity(checker, tables, tables.keys())
        assert report.consistent

    def test_bad_occupant_when_occupant_set_shrinks(self):
        members = _members(20, seed=5)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        _assert_parity(checker, tables, tables.keys())
        # Drop one member from the *occupant* set but keep its table
        # audited: entries pointing at it become bad occupants, and
        # the shrink forces a full rescan.
        departed = max(
            members,
            key=lambda m: sum(
                1
                for t in tables.values()
                for e in t.entries()
                if e.node == m
            ),
        )
        occupants = [m for m in members if m != departed]
        report = _assert_parity(checker, tables, occupants)
        assert checker.full_rescans == 1
        assert not report.consistent

    def test_membership_shrink_triggers_full_rescan(self):
        members = _members(24, seed=6)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        _assert_parity(checker, tables, tables.keys())
        shrunk = {m: t for m, t in tables.items() if m != members[0]}
        _assert_parity(checker, shrunk, tables.keys())
        assert checker.full_rescans == 1
        # And the rebuilt state keeps serving incremental calls.
        before = checker.nodes_reverified
        _assert_parity(checker, shrunk, tables.keys())
        assert checker.nodes_reverified == before

    def test_caller_mutating_occupant_set_in_place(self):
        members = _members(20, seed=7)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        occupants = set(members)
        _assert_parity(checker, tables, occupants)
        # Mutating the caller's set must still be seen as a shrink on
        # the next call (the checker keeps a private copy).
        occupants.discard(members[3])
        _assert_parity(checker, tables, occupants)
        assert checker.full_rescans == 1

    def test_max_violations_truncation(self):
        members = _members(18, seed=8)
        tables = build_consistent_tables(members)
        checker = IncrementalChecker()
        _assert_parity(checker, tables, tables.keys())
        for owner in members[:6]:
            for entry in list(tables[owner].entries()):
                if entry.node != owner:
                    tables[owner].clear_entry(entry.level, entry.digit)
                    break
        _assert_parity(checker, tables, tables.keys(), max_violations=3)
        # Uncapped afterwards still agrees (cached state unconfused).
        _assert_parity(checker, tables, tables.keys())


class TestIncrementalRandomized:
    def test_random_churn_scripts_stay_in_parity(self):
        rng = random.Random(42)
        for script in range(8):
            members = _members(22, seed=100 + script)
            tables = build_consistent_tables(members)
            checker = IncrementalChecker()
            occupants = set(members)
            for _step in range(10):
                action = rng.random()
                owner = rng.choice(members)
                table = tables.get(owner)
                if action < 0.4 and table is not None:
                    filled = [
                        e for e in table.entries() if e.node != owner
                    ]
                    if filled:
                        entry = rng.choice(filled)
                        table.clear_entry(entry.level, entry.digit)
                elif action < 0.6 and table is not None:
                    cleared = [
                        (level, digit)
                        for level in range(SPACE.num_digits)
                        for digit in range(SPACE.base)
                        if table.is_empty(level, digit)
                    ]
                    # Refill from any member with the right suffix.
                    rng.shuffle(cleared)
                    for level, digit in cleared:
                        suffix = owner.suffix(level) + (digit,)
                        fits = [
                            m for m in members if m.has_suffix(suffix)
                        ]
                        if fits:
                            table.set_entry(
                                level,
                                digit,
                                rng.choice(fits),
                                NeighborState.S,
                            )
                            break
                elif action < 0.8:
                    occupants.discard(owner)
                else:
                    occupants.add(owner)
                audited = {
                    m: t for m, t in tables.items() if m in occupants
                } or tables
                _assert_parity(checker, audited, set(occupants) or members)
