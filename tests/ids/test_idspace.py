"""Unit tests for IdSpace."""

import random

import pytest

from repro.ids.idspace import IdSpace


class TestBasics:
    def test_size(self):
        assert IdSpace(4, 5).size == 4**5
        assert IdSpace(16, 8).size == 16**8

    def test_rejects_zero_digits(self):
        with pytest.raises(ValueError):
            IdSpace(4, 0)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            IdSpace(1, 4)

    def test_equality(self):
        assert IdSpace(4, 5) == IdSpace(4, 5)
        assert IdSpace(4, 5) != IdSpace(4, 6)
        assert hash(IdSpace(4, 5)) == hash(IdSpace(4, 5))


class TestParsing:
    def test_from_string_wrong_length(self):
        with pytest.raises(ValueError):
            IdSpace(4, 5).from_string("123")

    def test_from_digits(self):
        space = IdSpace(4, 3)
        node = space.from_digits((3, 2, 1))
        assert str(node) == "123"

    def test_from_digits_wrong_length(self):
        with pytest.raises(ValueError):
            IdSpace(4, 3).from_digits((1, 2))

    def test_from_int_bounds(self):
        space = IdSpace(2, 3)
        assert str(space.from_int(7)) == "111"
        with pytest.raises(ValueError):
            space.from_int(8)


class TestHashing:
    def test_hash_name_deterministic(self):
        space = IdSpace(16, 8)
        assert space.hash_name("node-1") == space.hash_name("node-1")

    def test_hash_name_distinct_inputs(self):
        space = IdSpace(16, 8)
        ids = {str(space.hash_name(f"node-{i}")) for i in range(100)}
        assert len(ids) > 95  # collisions vanishingly unlikely

    def test_hash_name_md5_supported(self):
        space = IdSpace(16, 8)
        node = space.hash_name("x", algorithm="md5")
        assert node.num_digits == 8


class TestSampling:
    def test_random_ids_unique(self):
        space = IdSpace(4, 4)
        ids = space.random_unique_ids(100, random.Random(1))
        assert len(set(ids)) == 100

    def test_random_ids_respect_exclusions(self):
        space = IdSpace(2, 4)
        rng = random.Random(1)
        first = space.random_unique_ids(8, rng)
        rest = space.random_unique_ids(8, rng, exclude=first)
        assert not set(first) & set(rest)

    def test_random_ids_exhausts_space_exactly(self):
        space = IdSpace(2, 3)
        ids = space.random_unique_ids(8, random.Random(0))
        assert len(set(ids)) == 8

    def test_random_ids_too_many(self):
        space = IdSpace(2, 3)
        with pytest.raises(ValueError):
            space.random_unique_ids(9, random.Random(0))

    def test_reproducible_for_seed(self):
        space = IdSpace(16, 6)
        a = space.random_unique_ids(20, random.Random(7))
        b = space.random_unique_ids(20, random.Random(7))
        assert a == b
