"""Unit tests for the suffix algebra and SuffixIndex."""

import pytest

from repro.ids.idspace import IdSpace
from repro.ids.suffix import (
    SuffixIndex,
    csuf,
    csuf_len,
    extend_suffix,
    has_suffix,
    notification_set,
    notification_suffix_len,
    parse_suffix,
    sort_ids,
    suffix_of,
    suffix_str,
)

SPACE = IdSpace(8, 5)


def _id(text):
    return SPACE.from_string(text)


class TestSuffixOps:
    def test_csuf_returns_common_suffix(self):
        assert csuf(_id("10261"), _id("00261")) == parse_suffix("0261", 8)

    def test_csuf_len_matches_csuf(self):
        a, b = _id("10261"), _id("47051")
        assert len(csuf(a, b)) == csuf_len(a, b)

    def test_extend_suffix_is_left_concatenation(self):
        # j . omega: 2 . "61" == "261"
        omega = parse_suffix("61", 8)
        assert extend_suffix(2, omega) == parse_suffix("261", 8)

    def test_suffix_str_roundtrip(self):
        assert suffix_str(parse_suffix("261", 8)) == "261"
        assert suffix_str(()) == ""

    def test_parse_suffix_validates_base(self):
        with pytest.raises(ValueError):
            parse_suffix("9", 8)

    def test_suffix_of_and_has_suffix(self):
        node = _id("10261")
        assert suffix_of(node, 2) == parse_suffix("61", 8)
        assert has_suffix(node, parse_suffix("61", 8))

    def test_sort_ids_deterministic(self):
        ids = [_id("10261"), _id("00261"), _id("47051")]
        assert sort_ids(ids) == sort_ids(list(reversed(ids)))


class TestSuffixIndex:
    def test_membership_by_suffix(self):
        index = SuffixIndex([_id("10261"), _id("00261"), _id("47051")])
        assert index.nodes_with(parse_suffix("261", 8)) == {
            _id("10261"),
            _id("00261"),
        }
        assert index.count_with(parse_suffix("1", 8)) == 3

    def test_empty_suffix_matches_all(self):
        members = [_id("10261"), _id("47051")]
        index = SuffixIndex(members)
        assert index.nodes_with(()) == set(members)

    def test_any_with(self):
        index = SuffixIndex([_id("10261")])
        assert index.any_with(parse_suffix("0261", 8))
        assert not index.any_with(parse_suffix("3261", 8))

    def test_add_is_idempotent(self):
        index = SuffixIndex()
        index.add(_id("10261"))
        index.add(_id("10261"))
        assert len(index) == 1

    def test_discard_removes_all_suffix_buckets(self):
        index = SuffixIndex([_id("10261")])
        index.discard(_id("10261"))
        assert len(index) == 0
        assert not index.any_with(parse_suffix("1", 8))

    def test_discard_missing_is_noop(self):
        index = SuffixIndex([_id("10261")])
        index.discard(_id("47051"))
        assert len(index) == 1

    def test_contains_and_iter(self):
        index = SuffixIndex([_id("10261")])
        assert _id("10261") in index
        assert list(index) == [_id("10261")]

    def test_nodes_with_returns_copy(self):
        index = SuffixIndex([_id("10261")])
        bucket = index.nodes_with(parse_suffix("1", 8))
        bucket.clear()
        assert index.count_with(parse_suffix("1", 8)) == 1


class TestNotificationSets:
    """Definition 3.4, on the paper's own example (Section 3.3)."""

    V = [_id(s) for s in ["72430", "10353", "62332", "13141", "31701"]]

    def test_paper_example_noti_set_is_v1(self):
        index = SuffixIndex(self.V)
        # For joiners 10261 and 00261 the notification set is V_1.
        expected = {_id("13141"), _id("31701")}
        assert notification_set(_id("10261"), index) == expected
        assert notification_set(_id("00261"), index) == expected
        assert notification_set(_id("47051"), index) == expected

    def test_noti_suffix_len(self):
        index = SuffixIndex(self.V)
        assert notification_suffix_len(_id("10261"), index) == 1

    def test_noti_set_is_whole_v_when_no_digit_matches(self):
        # No node of V ends in 4, 5, 6 or 7; a joiner ending in such a
        # digit notifies all of V (Definition 3.4's V_x[0] empty case).
        index = SuffixIndex(self.V)
        assert notification_set(_id("11444"), index) == set(self.V)
        assert notification_suffix_len(_id("11444"), index) == 0

    def test_rejects_joiner_already_in_network(self):
        index = SuffixIndex(self.V)
        with pytest.raises(ValueError):
            notification_set(_id("72430"), index)

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            notification_set(_id("72430"), SuffixIndex())
