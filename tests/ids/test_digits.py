"""Unit tests for NodeId (digit representation, suffix operations)."""

import pytest

from repro.ids.digits import (
    MAX_BASE,
    NodeId,
    digits_from_int,
    digits_from_string,
)
from repro.ids.idspace import IdSpace


class TestConstruction:
    def test_digits_stored_rightmost_first(self):
        space = IdSpace(4, 5)
        node = space.from_string("21233")
        # x[0] is the rightmost digit.
        assert node.digit(0) == 3
        assert node.digit(1) == 3
        assert node.digit(2) == 2
        assert node.digit(3) == 1
        assert node.digit(4) == 2

    def test_str_roundtrip(self):
        space = IdSpace(16, 8)
        node = space.from_string("0a1b2c3d")
        assert str(node) == "0a1b2c3d"
        assert space.from_string(str(node)) == node

    def test_rejects_digit_out_of_base(self):
        with pytest.raises(ValueError):
            NodeId((0, 5), base=4)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            NodeId((0,), base=1)
        with pytest.raises(ValueError):
            NodeId((0,), base=MAX_BASE + 1)

    def test_rejects_empty_digits(self):
        with pytest.raises(ValueError):
            NodeId((), base=4)

    def test_getitem_and_iter(self):
        node = NodeId((3, 1, 2), base=4)
        assert node[0] == 3
        assert list(node) == [3, 1, 2]
        assert len(node) == 3


class TestIntConversion:
    def test_to_int_rightmost_least_significant(self):
        space = IdSpace(10, 3)
        assert space.from_string("123").to_int() == 123

    def test_from_int_roundtrip(self):
        space = IdSpace(16, 4)
        for value in (0, 1, 255, 16**4 - 1):
            assert space.from_int(value).to_int() == value

    def test_digits_from_int_rejects_overflow(self):
        with pytest.raises(ValueError):
            digits_from_int(16, base=2, num_digits=4)

    def test_digits_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            digits_from_int(-1, base=2, num_digits=4)

    def test_digits_from_string_rejects_out_of_base(self):
        with pytest.raises(ValueError):
            digits_from_string("19", base=8)

    def test_digits_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            digits_from_string("1%", base=8)


class TestSuffix:
    def test_suffix_returns_rightmost_digits(self):
        space = IdSpace(8, 5)
        node = space.from_string("10261")
        # suffix "261" is (1, 6, 2) rightmost-first
        assert node.suffix(3) == (1, 6, 2)
        assert node.suffix(0) == ()
        assert node.suffix(5) == node.digits

    def test_suffix_out_of_range(self):
        node = NodeId((1, 2), base=4)
        with pytest.raises(ValueError):
            node.suffix(3)
        with pytest.raises(ValueError):
            node.suffix(-1)

    def test_has_suffix(self):
        space = IdSpace(8, 5)
        node = space.from_string("10261")
        assert node.has_suffix((1,))
        assert node.has_suffix((1, 6, 2))
        assert not node.has_suffix((2,))
        assert node.has_suffix(())

    def test_has_suffix_longer_than_id(self):
        node = NodeId((1, 2), base=4)
        assert not node.has_suffix((1, 2, 3))

    def test_csuf_len_paper_example(self):
        # 10261 and 00261 share suffix 0261 (4 digits).
        space = IdSpace(8, 5)
        a = space.from_string("10261")
        b = space.from_string("00261")
        assert a.csuf_len(b) == 4
        assert b.csuf_len(a) == 4

    def test_csuf_len_no_match(self):
        space = IdSpace(8, 5)
        assert space.from_string("10261").csuf_len(
            space.from_string("47052")
        ) == 0

    def test_csuf_len_self_is_d(self):
        space = IdSpace(8, 5)
        node = space.from_string("10261")
        assert node.csuf_len(node) == 5


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = NodeId((1, 2, 3), base=4)
        b = NodeId((1, 2, 3), base=4)
        c = NodeId((1, 2, 3), base=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_ordering_by_value(self):
        space = IdSpace(10, 2)
        assert space.from_string("12") < space.from_string("21")
        assert space.from_string("21") >= space.from_string("12")

    def test_not_equal_other_types(self):
        assert NodeId((1,), base=4) != "1"

    def test_repr_contains_string_form(self):
        assert "21233" in repr(IdSpace(4, 5).from_string("21233"))
