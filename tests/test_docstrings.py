"""Documentation quality gate: every public item has a docstring."""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(item) or inspect.isfunction(item)):
                    continue
                if getattr(item, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (item.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_documented(self):
        """Public methods of public classes in the core packages."""
        missing = []
        for module in iter_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if getattr(cls, "__module__", None) != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if not (meth.__doc__ or "").strip():
                        missing.append(
                            f"{module.__name__}.{cls_name}.{meth_name}"
                        )
        assert missing == []
