"""The sans-io surface: JoinMachine effects and the pure interpreter.

Nothing in this file touches repro.sim or asyncio (the architecture
lint enforces that for the modules under test; this suite shows the
pure form actually *runs* the paper's protocol).
"""

import random

import pytest

from repro.consistency import check_consistency
from repro.core import (
    CancelTimer,
    JoinMachine,
    MessageReceived,
    Send,
    SendLossy,
    StartTimer,
    StatusChanged,
    TimerFired,
    run_effect_loop,
)
from repro.core.machine import MachineError
from repro.ids.idspace import IdSpace
from repro.protocol.messages import CpRstMsg
from repro.protocol.status import NodeStatus
from repro.routing import build_consistent_tables


def make_machines(base=4, num_digits=3, n=8, m=2, seed=1):
    """An n-node consistent (oracle) network of machines plus m
    fresh joiner machines."""
    space = IdSpace(base, num_digits)
    rng = random.Random(seed)
    ids = space.random_unique_ids(n + m, rng)
    initial, joiners = ids[:n], ids[n:]
    tables = build_consistent_tables(initial)
    machines = {
        nid: JoinMachine(
            nid, status=NodeStatus.IN_SYSTEM, table=tables[nid]
        )
        for nid in initial
    }
    return machines, initial, joiners


class TestEffectShapes:
    def test_construction_is_pure(self):
        machines, initial, joiners = make_machines()
        for machine in machines.values():
            assert machine.status is NodeStatus.IN_SYSTEM

    def test_begin_join_emits_one_cprst(self):
        machines, initial, joiners = make_machines()
        joiner = JoinMachine(joiners[0])
        effects = joiner.begin_join(initial[0])
        sends = [e for e in effects if isinstance(e, Send)]
        assert len(sends) == 1
        assert sends[0].dst == initial[0]
        assert isinstance(sends[0].message, CpRstMsg)
        assert sends[0].message.sender == joiners[0]
        # No timers at join start, and any status effect is our own.
        assert not any(isinstance(e, StartTimer) for e in effects)
        for e in effects:
            if isinstance(e, StatusChanged):
                assert e.node_id == joiners[0]

    def test_time_cannot_run_backwards(self):
        machines, initial, joiners = make_machines()
        joiner = JoinMachine(joiners[0])
        joiner.begin_join(initial[0], now=5.0)
        with pytest.raises(MachineError, match="backwards"):
            joiner.begin_join(initial[0], now=1.0)

    def test_non_input_rejected(self):
        machines, initial, joiners = make_machines()
        with pytest.raises(MachineError, match="not a machine input"):
            machines[initial[0]].handle("not an input")


class TestEffectLoop:
    def test_concurrent_joins_reach_consistency(self):
        machines, initial, joiners = make_machines(n=8, m=3, seed=2)
        gateway = initial[0]
        seeds = []
        for joiner in joiners:
            machines[joiner] = JoinMachine(joiner)
            seeds.append((joiner, machines[joiner].begin_join(gateway)))
        steps = run_effect_loop(machines, seeds)
        assert steps > 0
        assert all(
            m.status is NodeStatus.IN_SYSTEM for m in machines.values()
        )  # Theorem 2
        tables = {nid: m.table for nid, m in machines.items()}
        report = check_consistency(tables)
        assert report.consistent, report.violations[:5]  # Theorem 1

    def test_loop_is_deterministic(self):
        def run_once():
            machines, initial, joiners = make_machines(n=8, m=3, seed=4)
            gateway = initial[0]
            seeds = []
            for joiner in joiners:
                machines[joiner] = JoinMachine(joiner)
                seeds.append(
                    (joiner, machines[joiner].begin_join(gateway))
                )
            steps = run_effect_loop(machines, seeds)
            tables = {
                str(nid): sorted(
                    str(n) for n in m.table.distinct_neighbors()
                )
                for nid, m in machines.items()
            }
            return steps, tables

        assert run_once() == run_once()

    def test_leave_through_the_machine(self):
        machines, initial, joiners = make_machines(n=8, m=0, seed=6)
        leaver = initial[-1]
        effects = machines[leaver].begin_leave()
        run_effect_loop(machines, [(leaver, effects)])
        assert machines[leaver].departed
        for nid, machine in machines.items():
            if nid == leaver:
                continue
            assert leaver not in machine.table.distinct_neighbors()


class TestFailureDetectionEffects:
    def test_sweep_arms_a_timer_and_pings_neighbors(self):
        machines, initial, joiners = make_machines(n=8, m=0, seed=7)
        machine = machines[initial[0]]
        effects = machine.begin_failure_detection(30.0)
        timers = [e for e in effects if isinstance(e, StartTimer)]
        assert len(timers) == 1 and timers[0].delay == 30.0
        pings = {e.dst for e in effects if isinstance(e, SendLossy)}
        assert pings  # every distinct neighbor probed, lossily
        assert initial[0] not in pings

    def test_cancel_emits_canceltimer(self):
        machines, initial, joiners = make_machines(n=8, m=0, seed=7)
        machine = machines[initial[0]]
        effects = machine.begin_failure_detection(30.0)
        (start,) = [e for e in effects if isinstance(e, StartTimer)]
        cancel_effects = machine.cancel_failure_detection()
        cancels = [
            e for e in cancel_effects if isinstance(e, CancelTimer)
        ]
        assert len(cancels) == 1
        assert cancels[0].timer is start.timer
        assert start.timer.cancelled

    def test_cancelled_timer_cannot_be_delivered(self):
        machines, initial, joiners = make_machines(n=8, m=0, seed=7)
        machine = machines[initial[0]]
        effects = machine.begin_failure_detection(30.0)
        (start,) = [e for e in effects if isinstance(e, StartTimer)]
        machine.cancel_failure_detection()
        with pytest.raises(MachineError, match="cancelled timer"):
            machine.handle(TimerFired(start.timer))

    def test_timer_fires_once_only(self):
        machines, initial, joiners = make_machines(n=8, m=0, seed=7)
        machine = machines[initial[0]]
        effects = machine.begin_failure_detection(30.0)
        (start,) = [e for e in effects if isinstance(e, StartTimer)]
        machine.handle(TimerFired(start.timer), now=30.0)
        with pytest.raises(MachineError, match="twice"):
            machine.handle(TimerFired(start.timer))

    def test_unanswered_sweep_suspects_every_neighbor(self):
        """Fire the timeout without delivering any pong: every pinged
        position must become suspected (the environment decides who is
        dead; the machine only observes silence)."""
        machines, initial, joiners = make_machines(n=8, m=0, seed=8)
        machine = machines[initial[0]]
        effects = machine.begin_failure_detection(30.0)
        (start,) = [e for e in effects if isinstance(e, StartTimer)]
        machine.handle(TimerFired(start.timer), now=30.0)
        assert machine.node.suspected_positions
