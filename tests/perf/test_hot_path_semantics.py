"""The optimization pass must be invisible to simulation semantics.

Runs the same fixed-seed concurrent-join workload once with the
pre-optimization reference implementations swapped in
(:func:`repro.perf.use_pre_pr_hot_path`) and once with the current
fast paths, then demands identical observable outcomes: per-type
message counts, final neighbor tables, and consistency.
"""

from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.ids.digits import NodeId
from repro.perf import use_pre_pr_hot_path
from repro.perf.baseline import naive_csuf_len
from repro.routing.table import NeighborTable
from repro.sim.scheduler import Simulator


def _run_fixed_seed(use_topology):
    workload = make_workload(
        base=16,
        num_digits=8,
        n=120,
        m=40,
        seed=7,
        use_topology=use_topology,
        topology_params=SMALL_TOPOLOGY if use_topology else None,
    )
    workload.start_all_joins(at=0.0)
    workload.run()
    net = workload.network
    tables = {
        str(node_id): net.node(node_id).table.snapshot()
        for node_id in net.member_ids()
    }
    return {
        "stats": net.stats.snapshot(),
        "total_bytes": net.stats.total_bytes,
        "consistent": net.check_consistency().consistent,
        "all_in_system": net.all_in_system(),
        "join_noti": tuple(net.join_noti_counts()),
        "events": net.simulator.events_fired,
        "now": net.simulator.now,
        "tables": tables,
    }


class TestSemanticsUnchanged:
    def test_uniform_latency_workload(self):
        with use_pre_pr_hot_path():
            before = _run_fixed_seed(use_topology=False)
        after = _run_fixed_seed(use_topology=False)
        assert before == after
        assert after["consistent"] and after["all_in_system"]

    def test_topology_workload(self):
        # Exercises the memoized hierarchical/transport latency paths.
        with use_pre_pr_hot_path():
            before = _run_fixed_seed(use_topology=True)
        after = _run_fixed_seed(use_topology=True)
        assert before == after
        assert after["consistent"] and after["all_in_system"]


class TestPatchRestore:
    def test_methods_swapped_and_restored(self):
        originals = {
            "csuf": NodeId.csuf_len,
            "str": NodeId.__str__,
            "entries": NeighborTable.entries,
            "run": Simulator.run,
        }
        with use_pre_pr_hot_path():
            assert NodeId.csuf_len is not originals["csuf"]
            assert NodeId.__str__ is not originals["str"]
            assert NeighborTable.entries is not originals["entries"]
            assert Simulator.run is not originals["run"]
        assert NodeId.csuf_len is originals["csuf"]
        assert NodeId.__str__ is originals["str"]
        assert NeighborTable.entries is originals["entries"]
        assert Simulator.run is originals["run"]

    def test_restored_even_on_error(self):
        original = NodeId.csuf_len
        try:
            with use_pre_pr_hot_path():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert NodeId.csuf_len is original

    def test_naive_csuf_len_reference(self):
        from repro.ids.idspace import IdSpace

        space = IdSpace(4, 5)
        x = space.from_string("21233")
        y = space.from_string("10233")
        assert naive_csuf_len(x, y) == 3
        assert x.csuf_len(y) == 3
