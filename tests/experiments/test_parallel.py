"""Tests for the process fan-out engine (:mod:`repro.experiments.parallel`).

The load-bearing property throughout: ``parallel_map(fn, tasks, jobs=k)``
equals ``[fn(t) for t in tasks]`` for every ``k`` and chunk size -- the
simulation campaign results must not depend on how they were scheduled.
"""

import os

import pytest

from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.parallel import (
    JoinTaskConfig,
    default_chunksize,
    parallel_map,
    resolve_jobs,
    run_join_tasks,
    seeded_configs,
    verified_parallel_map,
)
from repro.experiments.sweep import sweep_fig15b
from repro.experiments.workloads import SMALL_TOPOLOGY


def _square(x):
    """Module-level so worker processes can unpickle it."""
    return x * x


def _worker_pid(_):
    """Deliberately scheduling-dependent (for the verifier's error path)."""
    return os.getpid()


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestDefaultChunksize:
    def test_spreads_tasks_over_workers(self):
        assert default_chunksize(32, 2) == 4
        assert default_chunksize(8, 4) == 1

    def test_never_below_one(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(3, 8) == 1


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_equals_serial(self):
        tasks = list(range(17))
        serial = parallel_map(_square, tasks, jobs=1)
        for jobs in (2, 4):
            for chunksize in (None, 1, 3, 17):
                assert (
                    parallel_map(_square, tasks, jobs=jobs,
                                 chunksize=chunksize)
                    == serial
                )

    def test_progress_reaches_total(self):
        calls = []
        parallel_map(
            _square, list(range(7)), jobs=2, chunksize=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        dones = [done for done, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1][0] == 7
        assert all(total == 7 for _, total in calls)

    def test_serial_progress_after_every_task(self):
        calls = []
        parallel_map(
            _square, [5, 6], jobs=1,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_single_task_short_circuits(self):
        # jobs > 1 with one task must not pay for an executor.
        assert parallel_map(_square, [7], jobs=8) == [49]


class TestVerifiedParallelMap:
    def test_deterministic_fn_passes(self):
        assert verified_parallel_map(
            _square, list(range(9)), jobs=3
        ) == [x * x for x in range(9)]

    def test_scheduling_dependent_fn_caught(self):
        # Worker processes have different PIDs from the coordinator, so
        # a fn leaking scheduling state must trip the verifier.
        with pytest.raises(AssertionError, match="diverge"):
            verified_parallel_map(_worker_pid, [1, 2, 3, 4], jobs=2)


class TestSeededConfigs:
    def test_only_seed_varies(self):
        base = JoinTaskConfig(n=50, m=10, seed=0)
        configs = seeded_configs(base, [4, 9])
        assert [c.seed for c in configs] == [4, 9]
        assert all(c.n == 50 and c.m == 10 for c in configs)


class TestJoinTasks:
    def test_jobs_invariant_results(self):
        configs = seeded_configs(
            JoinTaskConfig(base=16, num_digits=8, n=60, m=20), [0, 1, 2]
        )
        serial = run_join_tasks(configs, jobs=1)
        parallel = run_join_tasks(configs, jobs=3)
        assert serial == parallel
        assert all(r.consistent and r.all_in_system for r in serial)
        assert [r.seed for r in serial] == [0, 1, 2]


class TestSweepJobsEquivalence:
    def test_sweep_identical_across_jobs(self):
        """ISSUE acceptance: jobs=1 vs jobs=4 sweeps agree per seed and
        in aggregate."""
        config = Fig15bConfig(
            n=60,
            m=20,
            base=16,
            num_digits=8,
            use_topology=True,
            topology_params=SMALL_TOPOLOGY,
        )
        seeds = [0, 1, 2, 3]
        serial = sweep_fig15b(config, seeds, jobs=1)
        parallel = sweep_fig15b(config, seeds, jobs=4)

        for left, right in zip(serial.results, parallel.results):
            assert left.config == right.config
            assert left.join_noti_counts == right.join_noti_counts
            assert left.message_counts == right.message_counts
            assert left.total_messages == right.total_messages
            assert left.consistent == right.consistent

        assert (
            serial.mean_join_noti.per_seed
            == parallel.mean_join_noti.per_seed
        )
        assert serial.mean_join_noti.mean == parallel.mean_join_noti.mean
        assert serial.all_consistent and parallel.all_consistent
