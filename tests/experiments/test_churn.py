"""Tests for the churn lifecycle experiment module."""

import pytest

from repro.experiments.churn import ChurnConfig, run_churn
from repro.experiments.workloads import SMALL_TOPOLOGY


class TestChurnExperiment:
    def test_full_lifecycle(self):
        result = run_churn(
            ChurnConfig(
                n=60,
                m=15,
                leaves=10,
                failures=8,
                seed=1,
                topology_params=SMALL_TOPOLOGY,
            )
        )
        assert result.all_consistent
        names = [phase.name for phase in result.phases]
        assert names == [
            "bootstrap",
            "15 concurrent joins",
            "10 leaves",
            "8 crashes + recovery",
            "optimization",
        ]
        assert result.recovery is not None
        assert result.recovery.consistent
        assert result.stretch_after < result.stretch_before

    def test_membership_accounting(self):
        config = ChurnConfig(
            n=50, m=10, leaves=8, failures=5, seed=2,
            topology_params=SMALL_TOPOLOGY,
        )
        result = run_churn(config)
        members = [phase.members for phase in result.phases]
        assert members[0] == 50
        assert members[1] == 60
        assert members[2] == 52
        assert members[3] == 47

    def test_without_topology_skips_optimization(self):
        result = run_churn(
            ChurnConfig(
                n=40, m=8, leaves=5, failures=4, seed=3,
                base=4, num_digits=4, use_topology=False,
            )
        )
        assert result.all_consistent
        assert result.phases[-1].name == "4 crashes + recovery"
        assert result.stretch_after == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_seeds(self, seed):
        result = run_churn(
            ChurnConfig(
                n=40, m=10, leaves=6, failures=5, seed=seed,
                base=4, num_digits=4, use_topology=False,
            )
        )
        assert result.all_consistent, [str(p) for p in result.phases]
