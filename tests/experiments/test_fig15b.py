"""Figure 15(b) reproduction tests (scaled-down configurations)."""

import pytest

from repro.experiments.fig15b import (
    Fig15bConfig,
    PAPER_CONFIGS,
    run_fig15b,
)
from repro.experiments.workloads import SMALL_TOPOLOGY


def scaled_config(**overrides):
    defaults = dict(
        n=200,
        m=60,
        base=16,
        num_digits=8,
        seed=0,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    defaults.update(overrides)
    return Fig15bConfig(**defaults)


class TestFig15bScaled:
    def test_run_produces_correct_network(self):
        result = run_fig15b(scaled_config())
        assert result.consistent
        assert result.all_in_system
        assert result.theorem3_violations == 0
        assert len(result.join_noti_counts) == 60

    def test_mean_below_theorem5_bound(self):
        result = run_fig15b(scaled_config(seed=1))
        assert result.mean_join_noti < result.theorem5_bound

    def test_cdf_shape_majority_send_few(self):
        """Figure 15(b)'s qualitative shape: the majority of joiners
        send a small number of JoinNotiMsg."""
        result = run_fig15b(scaled_config(seed=2))
        cdf = result.cdf
        assert cdf.at(10) >= 0.5
        assert cdf.at(result.cdf.max) == 1.0

    def test_uniform_latency_variant(self):
        result = run_fig15b(
            scaled_config(seed=3, use_topology=False)
        )
        assert result.consistent
        assert result.all_in_system

    def test_d40_variant(self):
        result = run_fig15b(scaled_config(seed=4, num_digits=40, n=120, m=40))
        assert result.consistent
        assert result.all_in_system
        assert result.theorem3_violations == 0

    def test_summary_text(self):
        result = run_fig15b(scaled_config(seed=5, n=80, m=20))
        text = result.summary()
        assert "mean JoinNotiMsg" in text
        assert "Theorem 5 bound" in text

    def test_paper_configs_defined(self):
        assert len(PAPER_CONFIGS) == 4
        assert {c.n for c in PAPER_CONFIGS} == {3096, 7192}
        assert {c.num_digits for c in PAPER_CONFIGS} == {8, 40}
        for config in PAPER_CONFIGS:
            assert config.topology_params.num_routers == 8320
