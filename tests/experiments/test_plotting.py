"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import MARKERS, ascii_chart, cdf_chart


class TestAsciiChart:
    def test_renders_axes_and_legend(self):
        chart = ascii_chart(
            {"up": [(0, 0.0), (1, 1.0)], "down": [(0, 1.0), (1, 0.0)]},
            width=20,
            height=8,
        )
        assert "* up" in chart
        assert "+ down" in chart
        assert "+--------------------" in chart

    def test_extremes_placed_at_grid_corners(self):
        chart = ascii_chart({"s": [(0, 0.0), (10, 5.0)]}, width=10, height=5)
        lines = chart.splitlines()
        plot_lines = [l for l in lines if "|" in l]
        # Max value on the top plot row, min on the bottom.
        assert "*" in plot_lines[0]
        assert "*" in plot_lines[-1]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(0, 2.0), (5, 2.0)]})
        assert "flat" in chart

    def test_y_bounds_override(self):
        chart = ascii_chart(
            {"s": [(0, 0.5)]}, y_min=0.0, y_max=1.0, height=5
        )
        assert "1.00" in chart
        assert "0.00" in chart

    def test_many_series_cycle_markers(self):
        labels = {f"s{i}": [(0, i)] for i in range(10)}
        chart = ascii_chart(labels)
        assert MARKERS[0] in chart


class TestCdfChart:
    def test_monotone_step_shape(self):
        chart = cdf_chart({"a": [0, 0, 1, 5]}, width=30, height=6)
        assert "cumulative fraction" in chart
        assert "#JoinNotiMsg" in chart

    def test_x_max_clamps(self):
        chart = cdf_chart({"a": [0, 100]}, x_max=10, width=20)
        assert "10" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_chart({"a": []})
