"""Unit tests for the experiment harness (CDF, summaries)."""

import pytest

from repro.experiments.harness import Cdf, render_cdf_table, summarize


class TestCdf:
    def test_at(self):
        cdf = Cdf([1, 2, 2, 3])
        assert cdf.at(0) == 0.0
        assert cdf.at(1) == 0.25
        assert cdf.at(2) == 0.75
        assert cdf.at(3) == 1.0
        assert cdf.at(100) == 1.0

    def test_series_steps(self):
        cdf = Cdf([1, 1, 3])
        assert cdf.series() == [(1, 2 / 3), (3, 1.0)]

    def test_quantile(self):
        cdf = Cdf(list(range(1, 11)))
        assert cdf.quantile(0.5) == 5
        assert cdf.quantile(1.0) == 10
        assert cdf.quantile(0.0) == 1

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Cdf([1]).quantile(1.5)

    def test_mean_and_max(self):
        cdf = Cdf([0, 2, 4])
        assert cdf.mean == 2.0
        assert cdf.max == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_render_table(self):
        text = render_cdf_table(Cdf([0, 1, 5, 20]))
        assert "cumulative" in text
        assert "1.0000" in text


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.stddev == pytest.approx((2 / 3) ** 0.5)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))
