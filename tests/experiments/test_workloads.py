"""Unit tests for workload construction."""

import random

from repro.experiments.workloads import (
    SMALL_TOPOLOGY,
    make_latency_model,
    make_workload,
    sample_ids,
)
from repro.ids.idspace import IdSpace
from repro.topology.attachment import (
    TopologyLatencyModel,
    UniformLatencyModel,
)

from tests.conftest import assert_network_correct


class TestSampleIds:
    def test_counts_and_disjointness(self):
        space = IdSpace(16, 8)
        initial, joiners = sample_ids(space, 50, 20, random.Random(0))
        assert len(initial) == 50
        assert len(joiners) == 20
        assert not set(initial) & set(joiners)

    def test_reproducible(self):
        space = IdSpace(16, 8)
        a = sample_ids(space, 10, 5, random.Random(3))
        b = sample_ids(space, 10, 5, random.Random(3))
        assert a == b


class TestMakeLatencyModel:
    def test_uniform_when_no_topology(self):
        model = make_latency_model([], random.Random(0), use_topology=False)
        assert isinstance(model, UniformLatencyModel)

    def test_topology_model(self):
        space = IdSpace(4, 4)
        hosts = space.random_unique_ids(5, random.Random(1))
        model = make_latency_model(
            hosts, random.Random(0), use_topology=True,
            topology_params=SMALL_TOPOLOGY,
        )
        assert isinstance(model, TopologyLatencyModel)
        assert model.latency(hosts[0], hosts[1]) > 0


class TestMakeWorkload:
    def test_end_to_end(self):
        workload = make_workload(
            base=4, num_digits=4, n=25, m=10, seed=0
        )
        assert len(workload.initial_ids) == 25
        assert len(workload.joiner_ids) == 10
        workload.start_all_joins()
        workload.run()
        assert_network_correct(workload.network)

    def test_seeds_change_ids(self):
        w0 = make_workload(base=16, num_digits=8, n=10, m=5, seed=0)
        w1 = make_workload(base=16, num_digits=8, n=10, m=5, seed=1)
        assert w0.initial_ids != w1.initial_ids


class TestBatchedJoinStart:
    def test_batched_equals_sequential_start(self):
        """start_all_joins goes through the runtime's schedule_many;
        the run must be byte-identical to per-joiner start_join calls
        (same gateway draws, same event order)."""
        batched = make_workload(base=4, num_digits=5, n=60, m=25, seed=2)
        batched.start_all_joins()
        batched.run()

        sequential = make_workload(base=4, num_digits=5, n=60, m=25, seed=2)
        for joiner in sequential.joiner_ids:
            sequential.network.start_join(joiner)
        sequential.run()

        assert (
            batched.network.stats.snapshot()
            == sequential.network.stats.snapshot()
        )
        assert batched.network.runtime.events_fired == (
            sequential.network.runtime.events_fired
        )
        assert {
            owner: table.snapshot()
            for owner, table in batched.network.tables().items()
        } == {
            owner: table.snapshot()
            for owner, table in sequential.network.tables().items()
        }
