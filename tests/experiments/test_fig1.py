"""Figure 1 reproduction tests."""

from repro.consistency.checker import check_consistency
from repro.experiments.fig1 import (
    FIGURE1_ENTRIES,
    figure1_example,
    figure1_network_ids,
)
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables

SPACE = IdSpace(4, 5)
OWNER = SPACE.from_string("21233")


class TestFigure1:
    def test_figure_entries_are_valid_choices(self):
        """Every neighbor printed in Figure 1 satisfies the suffix
        constraint of its entry."""
        for (level, digit), name in FIGURE1_ENTRIES.items():
            node = SPACE.from_string(name)
            assert node.csuf_len(OWNER) >= level, (level, digit, name)
            assert node.digit(level) == digit, (level, digit, name)

    def test_fill_pattern_matches_figure(self):
        """Our oracle table for the figure's membership is filled at
        exactly the figure's positions."""
        table, _ = figure1_example()
        ours = {
            (e.level, e.digit) for e in table.entries()
        }
        assert ours == set(FIGURE1_ENTRIES)

    def test_self_entries_match_paper_convention(self):
        table, _ = figure1_example()
        for level in range(5):
            assert table.get(level, OWNER.digit(level)) == OWNER

    def test_example_network_is_consistent(self):
        members = figure1_network_ids(SPACE)
        assert check_consistency(build_consistent_tables(members)).consistent

    def test_rendering_shows_all_neighbors(self):
        _, rendering = figure1_example()
        # At least the owner and a few fixed entries appear.
        for name in ("21233", "01100", "31033"):
            assert name in rendering
