"""Figure 15(a) reproduction tests."""

import pytest

from repro.experiments.fig15a import (
    FIG15A_CONFIGS,
    FIG15A_N_VALUES,
    Fig15aConfig,
    figure15a_series,
    render_figure15a,
)


class TestFigure15a:
    def test_axis_matches_paper(self):
        assert FIG15A_N_VALUES[0] == 10_000
        assert FIG15A_N_VALUES[-1] == 100_000
        assert len(FIG15A_CONFIGS) == 4

    def test_series_shape(self):
        series = figure15a_series(FIG15A_CONFIGS[0])
        assert len(series) == len(FIG15A_N_VALUES)
        assert all(3.0 <= bound <= 9.0 for _, bound in series)

    def test_m1000_above_m500(self):
        """More concurrent joiners -> higher bound, pointwise."""
        low = dict(figure15a_series(Fig15aConfig(500, 16, 8)))
        high = dict(figure15a_series(Fig15aConfig(1000, 16, 8)))
        for n in FIG15A_N_VALUES:
            assert high[n] > low[n]

    def test_d8_and_d40_curves_coincide(self):
        """In the paper's plot the d=8 and d=40 curves overlap."""
        d8 = dict(figure15a_series(Fig15aConfig(500, 16, 8)))
        d40 = dict(figure15a_series(Fig15aConfig(500, 16, 40)))
        for n in FIG15A_N_VALUES:
            assert d8[n] == pytest.approx(d40[n], abs=1e-4)

    def test_sawtooth_behaviour_on_fine_grid(self):
        """The bound is non-monotone in n (dips after each power of
        b): verify there is both a rise and a fall over a fine grid."""
        series = figure15a_series(
            Fig15aConfig(500, 16, 8),
            n_values=range(20_000, 90_000, 5_000),
        )
        values = [bound for _, bound in series]
        diffs = [b - a for a, b in zip(values, values[1:])]
        assert any(d > 0 for d in diffs)
        assert any(d < 0 for d in diffs)

    def test_y_range_matches_paper_plot(self):
        """The paper's y-axis runs from 3 to 9 and all four curves fit
        inside it."""
        for config in FIG15A_CONFIGS:
            for _, bound in figure15a_series(config):
                assert 3.0 < bound < 9.0

    def test_render_table(self):
        text = render_figure15a()
        assert "m=500, b=16, d=40" in text
        assert "10000" in text
