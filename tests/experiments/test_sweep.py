"""Tests for the sweep driver and joining-period statistics."""

import pytest

from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.sweep import (
    SweepStats,
    joining_period_stats,
    sweep_fig15b,
)
from repro.experiments.workloads import SMALL_TOPOLOGY

from tests.conftest import build_network, make_ids, run_joins


class TestSweepStats:
    def test_aggregates(self):
        stats = SweepStats("x", [1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev == pytest.approx((2 / 3) ** 0.5)

    def test_str(self):
        assert "seeds" in str(SweepStats("x", [1.0]))


class TestFig15bSweep:
    def test_three_seed_sweep(self):
        config = Fig15bConfig(
            n=80,
            m=25,
            base=16,
            num_digits=8,
            use_topology=True,
            topology_params=SMALL_TOPOLOGY,
        )
        sweep = sweep_fig15b(config, seeds=[0, 1, 2])
        assert len(sweep.results) == 3
        assert sweep.all_consistent
        assert sweep.bound_never_exceeded
        stats = sweep.mean_join_noti
        assert stats.minimum <= stats.mean <= stats.maximum
        # Different seeds produce different workloads.
        assert len(set(stats.per_seed)) > 1


class TestJoiningPeriods:
    def test_stats_after_concurrent_joins(self):
        space, ids = make_ids(4, 4, 30, seed=0)
        net = build_network(space, ids[:20], seed=0)
        run_joins(net, ids[20:])
        stats = joining_period_stats(net)
        assert stats.count == 10
        assert stats.minimum > 0
        assert stats.maximum >= stats.mean >= stats.minimum

    def test_incomplete_join_rejected(self):
        space, ids = make_ids(4, 4, 21, seed=1)
        net = build_network(space, ids[:20], seed=1)
        net.start_join(ids[20], at=1000.0)  # scheduled, never run
        with pytest.raises(ValueError):
            joining_period_stats(net)
