"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "21233" in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "C_61" in out
        assert "consistent: True" in out

    def test_fig15a(self, capsys):
        assert main(["fig15a"]) == 0
        out = capsys.readouterr().out
        assert "m=1000, b=16, d=8" in out

    def test_fig15b_scaled(self, capsys):
        assert main(
            ["fig15b", "--n", "60", "--m", "20", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "bound" in out

    def test_join(self, capsys):
        assert main(
            ["join", "--n", "50", "--m", "15", "--base", "4",
             "--digits", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Theorem 1 (consistent): True" in out

    def test_join_trace_and_metrics(self, capsys, tmp_path):
        trace_path = str(tmp_path / "out.jsonl")
        csv_path = str(tmp_path / "metrics.csv")
        assert main(
            ["join", "--n", "50", "--m", "15", "--base", "4",
             "--digits", "4", "--trace", trace_path, "--metrics",
             "--metrics-csv", csv_path]
        ) == 0
        out = capsys.readouterr().out
        assert "join phase durations" in out
        assert "metrics snapshot:" in out
        from repro.obs import read_trace_jsonl

        spans, events = read_trace_jsonl(trace_path)
        assert any(s["name"] == "phase:copying" for s in spans)
        assert any(e["name"] == "message.send" for e in events)
        with open(csv_path) as handle:
            assert handle.readline().strip() == "metric,value"

    def test_churn(self, capsys):
        assert main(
            ["churn", "--n", "50", "--m", "10", "--leaves", "8",
             "--failures", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "final consistency  : True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
