"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "21233" in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "C_61" in out
        assert "consistent: True" in out

    def test_fig15a(self, capsys):
        assert main(["fig15a"]) == 0
        out = capsys.readouterr().out
        assert "m=1000, b=16, d=8" in out

    def test_fig15b_scaled(self, capsys):
        assert main(
            ["fig15b", "--n", "60", "--m", "20", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "bound" in out

    def test_join(self, capsys):
        assert main(
            ["join", "--n", "50", "--m", "15", "--base", "4",
             "--digits", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Theorem 1 (consistent): True" in out

    def test_join_trace_and_metrics(self, capsys, tmp_path):
        trace_path = str(tmp_path / "out.jsonl")
        csv_path = str(tmp_path / "metrics.csv")
        assert main(
            ["join", "--n", "50", "--m", "15", "--base", "4",
             "--digits", "4", "--trace", trace_path, "--metrics",
             "--metrics-csv", csv_path]
        ) == 0
        out = capsys.readouterr().out
        assert "join phase durations" in out
        assert "metrics snapshot:" in out
        from repro.obs import read_trace_jsonl

        spans, events = read_trace_jsonl(trace_path)
        assert any(s["name"] == "phase:copying" for s in spans)
        assert any(e["name"] == "message.send" for e in events)
        with open(csv_path) as handle:
            assert handle.readline().strip() == "metric,value"

    def test_churn(self, capsys):
        assert main(
            ["churn", "--n", "50", "--m", "10", "--leaves", "8",
             "--failures", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "final consistency  : True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_audit(self, capsys, tmp_path):
        audit_json = str(tmp_path / "audit.json")
        assert main(
            ["join", "--n", "50", "--m", "15", "--base", "4",
             "--digits", "4", "--audit", "--audit-json", audit_json]
        ) == 0
        out = capsys.readouterr().out
        assert "audit" in out and "PASS" in out
        assert "Theorem 3 gate" in out
        assert "Theorem 4/5 gate" in out
        import json

        with open(audit_json) as handle:
            data = json.load(handle)
        assert data["passed"] is True
        assert data["final"]["consistent"] is True
        assert len(data["samples"]) > 0

    def test_join_messages_csv(self, tmp_path):
        csv_path = str(tmp_path / "messages.csv")
        assert main(
            ["join", "--n", "30", "--m", "8", "--base", "4",
             "--digits", "4", "--messages-csv", csv_path]
        ) == 0
        from repro.obs import read_message_type_csv

        rows = read_message_type_csv(csv_path)
        assert rows["CpRstMsg"]["sent"] > 0

    def test_report_text_and_outputs(self, capsys, tmp_path):
        import json
        import os

        trace = os.path.join(
            os.path.dirname(__file__), "obs", "golden", "small_run.jsonl"
        )
        json_path = str(tmp_path / "report.json")
        html_path = str(tmp_path / "report.html")
        assert main(
            ["report", trace, "--json", json_path, "--html", html_path]
        ) == 0
        out = capsys.readouterr().out
        assert "== run summary ==" in out
        assert "== theorem 3 ==" in out
        with open(json_path) as handle:
            data = json.load(handle)
        assert data["lifecycles"]["completed"] == 3
        with open(html_path) as handle:
            assert handle.read().startswith("<!DOCTYPE html>")

    def test_report_flags_stalled_trace(self, capsys, tmp_path):
        # A trace whose join never completes must exit non-zero.
        import json

        trace = tmp_path / "stalled.jsonl"
        records = [
            {"kind": "span", "id": 1, "parent": None, "name": "join",
             "start": 0.0, "end": None, "attrs": {"node": "11"}},
            {"kind": "span", "id": 2, "parent": 1,
             "name": "phase:copying", "start": 0.0, "end": None,
             "attrs": {"node": "11"}},
        ]
        trace.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert main(["report", str(trace)]) == 1
        assert "STALLED" in capsys.readouterr().out


class TestNetCli:
    """Parser and validation paths of the deployment commands (the
    live multi-process path is covered by tests/net/test_cluster.py)."""

    def test_node_parser(self):
        args = build_parser().parse_args([
            "node", "--listen", "127.0.0.1:0",
            "--rendezvous", "127.0.0.1:9000",
            "--base", "4", "--num-digits", "4", "--loss", "0.05",
        ])
        assert args.listen == "127.0.0.1:0"
        assert args.loss == 0.05
        assert not args.seed_node

    def test_node_requires_a_join_path(self, capsys):
        # No --seed-node, no --rendezvous, no --bootstrap: refused.
        assert main(["node", "--listen", "127.0.0.1:0"]) == 2
        assert "rendezvous" in capsys.readouterr().err

    def test_cluster_parser(self):
        args = build_parser().parse_args([
            "cluster", "--nodes", "8", "--joins", "4",
            "--loss", "0.05", "--report", "out.json",
        ])
        assert (args.nodes, args.joins) == (8, 4)
        assert args.report == "out.json"

    def test_cluster_rejects_bad_shape(self, capsys):
        assert main(["cluster", "--nodes", "2", "--joins", "2"]) == 2
        assert "joins" in capsys.readouterr().err

    def test_rendezvous_parser(self):
        args = build_parser().parse_args(
            ["rendezvous", "--listen", ":0", "--ttl", "30"]
        )
        assert args.listen == ":0"
        assert args.ttl == 30.0


class TestExecCli:
    """Execution-engine flags: ``--backend``/``--workers`` on the
    campaign commands, the ``worker`` daemon entry, multi-seed churn."""

    def test_worker_parser(self):
        args = build_parser().parse_args([
            "worker", "--listen", "127.0.0.1:0",
            "--rendezvous", "127.0.0.1:9000",
            "--announce-interval", "5",
        ])
        assert args.listen == "127.0.0.1:0"
        assert args.rendezvous == "127.0.0.1:9000"
        assert args.announce_interval == 5.0

    def test_backend_flags_parse_on_campaign_commands(self):
        for command in ("fig15b", "join", "sweep", "churn"):
            args = build_parser().parse_args(
                [command, "--backend", "pool"]
            )
            assert args.backend == "pool"
        args = build_parser().parse_args(
            ["sweep", "--workers", "127.0.0.1:7001,127.0.0.1:7002"]
        )
        assert args.workers == "127.0.0.1:7001,127.0.0.1:7002"

    def test_backend_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "threads"])

    def test_remote_backend_without_workers_is_refused(self, capsys):
        assert main(
            ["sweep", "--seeds", "2", "--n", "40", "--m", "10",
             "--backend", "remote"]
        ) == 2
        assert "rendezvous" in capsys.readouterr().err

    def test_sweep_inline_backend_writes_json(self, capsys, tmp_path):
        import json

        out = str(tmp_path / "sweep.json")
        assert main(
            ["sweep", "--seeds", "2", "--n", "40", "--m", "10",
             "--backend", "inline", "--out", out]
        ) == 0
        assert "seeds" in capsys.readouterr().out
        with open(out) as handle:
            data = json.load(handle)
        assert data["seeds"] == [0, 1]
        assert len(data["per_seed"]) == 2
        assert data["all_consistent"] is True

    def test_churn_multi_seed(self, capsys):
        assert main(
            ["churn", "--n", "40", "--m", "8", "--leaves", "6",
             "--failures", "4", "--seeds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed" in out
        assert "all consistent" in out
