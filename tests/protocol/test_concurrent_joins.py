"""Concurrent joins: the headline Theorems 1 and 2.

The paper proves the join protocol leaves the network consistent after
an *arbitrary* number of concurrent joins, including dependent ones
(intersecting notification sets).  These tests cover engineered
dependent scenarios, mixed workloads, and staggered starts.
"""

import random

import pytest

from repro.csettree.classify import (
    joins_are_dependent,
    joins_are_independent,
)
from repro.csettree.notification import notification_set
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

from tests.conftest import (
    assert_network_correct,
    build_network,
    make_ids,
    run_joins,
)


class TestConcurrentJoins:
    @pytest.mark.parametrize("seed", range(6))
    def test_theorems_1_and_2_random_workloads(self, seed):
        space, ids = make_ids(4, 4, 40, seed=seed)
        net = build_network(space, ids[:25], seed=seed)
        run_joins(net, ids[25:])
        assert_network_correct(net)

    def test_dependent_joins_same_notification_set(self):
        """The paper's hard case: joiners that each think they might be
        the only node with their suffix (Section 3.3's 10261/00261)."""
        space = make_ids(8, 5, 0)[0]
        existing = [
            space.from_string(s)
            for s in ["72430", "10353", "62332", "13141", "31701"]
        ]
        joiners = [
            space.from_string(s) for s in ["10261", "00261", "20261", "30261"]
        ]
        notify = {j: notification_set(j, existing) for j in joiners}
        assert joins_are_dependent(notify)
        net = build_network(space, existing, seed=11)
        run_joins(net, joiners)
        assert_network_correct(net)
        # All four joiners must know each other.
        for a in joiners:
            for b in joiners:
                assert net.route(a, b).success

    def test_independent_joins(self):
        space = make_ids(8, 5, 0)[0]
        existing = [
            space.from_string(s)
            for s in ["72430", "10353", "62332", "13141", "31701"]
        ]
        joiners = [space.from_string("10261"), space.from_string("67320")]
        notify = {j: notification_set(j, existing) for j in joiners}
        assert joins_are_independent(notify)
        net = build_network(space, existing, seed=12)
        run_joins(net, joiners)
        assert_network_correct(net)

    def test_many_joiners_small_network(self):
        """More joiners than existing nodes."""
        space, ids = make_ids(4, 4, 36, seed=13)
        net = build_network(space, ids[:6], seed=13)
        run_joins(net, ids[6:])
        assert_network_correct(net)

    def test_staggered_starts(self):
        """Overlapping but not simultaneous joining periods."""
        space, ids = make_ids(4, 4, 30, seed=14)
        net = build_network(space, ids[:20], seed=14)
        starts = [i * 3.0 for i in range(10)]
        run_joins(net, ids[20:], start_times=starts)
        assert_network_correct(net)

    def test_binary_base_heavy_collisions(self):
        """b=2 forces deep shared suffixes and heavy dependence."""
        space, ids = make_ids(2, 8, 60, seed=15)
        net = build_network(space, ids[:20], seed=15)
        run_joins(net, ids[20:])
        assert_network_correct(net)

    def test_all_entries_have_s_state_at_end(self):
        space, ids = make_ids(4, 4, 30, seed=16)
        net = build_network(space, ids[:22], seed=16)
        run_joins(net, ids[22:])
        # check_consistency(require_s_states=True) inside:
        assert_network_correct(net)
        for node_id, table in net.tables().items():
            from repro.routing.entry import NeighborState

            for entry in table.entries():
                assert entry.state is NeighborState.S

    def test_reverse_neighbor_bookkeeping(self):
        """Every forward pointer is mirrored by a reverse record."""
        space, ids = make_ids(4, 4, 26, seed=17)
        net = build_network(space, ids[:20], seed=17)
        run_joins(net, ids[20:])
        tables = net.tables()
        for node_id, table in tables.items():
            for entry in table.entries():
                if entry.node == node_id:
                    continue
                assert node_id in tables[entry.node].reverse_neighbors(
                    entry.level, entry.digit
                ), (
                    f"{node_id} points at {entry.node} "
                    f"({entry.level},{entry.digit}) without reverse record"
                )

    def test_two_joiners_one_existing_node(self):
        """Degenerate V: a single seed node, two dependent joiners."""
        space = make_ids(4, 4, 0)[0]
        from repro.protocol.network_init import single_node_table
        from repro.topology.attachment import ConstantLatencyModel

        seed_node = space.from_string("0000")
        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0), seed=18
        )
        net.add_s_node(seed_node, single_node_table(seed_node))
        joiners = [space.from_string("1111"), space.from_string("2111")]
        run_joins(net, joiners)
        assert_network_correct(net)

    def test_join_noti_counts_recorded_per_joiner(self):
        space, ids = make_ids(4, 4, 30, seed=19)
        net = build_network(space, ids[:20], seed=19)
        run_joins(net, ids[20:])
        counts = net.join_noti_counts()
        assert len(counts) == 10
        assert all(c >= 0 for c in counts)
        assert sum(counts) == net.stats.count("JoinNotiMsg")
