"""Unit tests for protocol message types and size accounting."""

from repro.ids.idspace import IdSpace
from repro.network.message import ENTRY_BYTES, HEADER_BYTES
from repro.protocol.messages import (
    BIG_MESSAGE_TYPES,
    CpRlyMsg,
    CpRstMsg,
    InSysNotiMsg,
    JoinNotiMsg,
    JoinNotiRlyMsg,
    JoinWaitMsg,
    JoinWaitRlyMsg,
    RvNghNotiMsg,
    RvNghNotiRlyMsg,
    SpeNotiMsg,
    SpeNotiRlyMsg,
    snapshot_view,
)
from repro.routing.entry import NeighborState, TableEntry

SPACE = IdSpace(4, 4)
A = SPACE.from_string("0123")
B = SPACE.from_string("3210")


def snapshot(n=3):
    entries = []
    digits = ["3103", "2103", "1103"]
    for i in range(n):
        node = SPACE.from_string(digits[i])
        entries.append(TableEntry(3, node.digit(3), node, NeighborState.S))
    return tuple(entries)


class TestSnapshotView:
    def test_lookup(self):
        view = snapshot_view(snapshot())
        assert view[(3, 3)][0] == SPACE.from_string("3103")
        assert (0, 0) not in view

    def test_empty(self):
        assert snapshot_view(()) == {}


class TestMessageSizes:
    def test_plain_messages_are_header_only(self):
        assert CpRstMsg(A).size_bytes() == HEADER_BYTES
        assert InSysNotiMsg(A).size_bytes() == HEADER_BYTES
        assert JoinWaitMsg(A).size_bytes() == HEADER_BYTES

    def test_table_messages_charge_per_entry(self):
        msg = CpRlyMsg(A, snapshot(3))
        assert msg.size_bytes() == HEADER_BYTES + 3 * ENTRY_BYTES
        assert msg.carries_table

    def test_join_wait_rly_includes_referral(self):
        msg = JoinWaitRlyMsg(A, True, B, snapshot(2))
        assert msg.size_bytes() > HEADER_BYTES + 2 * ENTRY_BYTES
        assert msg.positive
        assert msg.referral == B

    def test_join_noti_bit_vector_bytes(self):
        base = JoinNotiMsg(A, snapshot(2), noti_level=1)
        reduced = JoinNotiMsg(
            A, snapshot(2), noti_level=1, bit_vector_bytes=2
        )
        assert reduced.size_bytes() == base.size_bytes() + 2

    def test_join_noti_rly_flags(self):
        msg = JoinNotiRlyMsg(A, False, snapshot(1), conflict=True)
        assert not msg.positive
        assert msg.conflict

    def test_spe_noti_carries_two_refs(self):
        msg = SpeNotiMsg(A, origin=A, subject=B)
        assert msg.origin == A
        assert msg.subject == B
        assert msg.size_bytes() > HEADER_BYTES
        reply = SpeNotiRlyMsg(B, origin=A, subject=B)
        assert reply.size_bytes() == msg.size_bytes()

    def test_rv_ngh_messages_small(self):
        msg = RvNghNotiMsg(A, 1, 2, NeighborState.T)
        reply = RvNghNotiRlyMsg(B, 1, 2, NeighborState.S)
        assert msg.size_bytes() < HEADER_BYTES + 10
        assert reply.size_bytes() < HEADER_BYTES + 10

    def test_big_message_types_match_paper(self):
        assert set(BIG_MESSAGE_TYPES) == {
            "CpRstMsg",
            "JoinWaitMsg",
            "JoinNotiMsg",
        }

    def test_type_names_unique(self):
        names = [
            cls.type_name
            for cls in (
                CpRstMsg,
                CpRlyMsg,
                JoinWaitMsg,
                JoinWaitRlyMsg,
                JoinNotiMsg,
                JoinNotiRlyMsg,
                InSysNotiMsg,
                SpeNotiMsg,
                SpeNotiRlyMsg,
                RvNghNotiMsg,
                RvNghNotiRlyMsg,
            )
        ]
        assert len(names) == len(set(names)) == 11
