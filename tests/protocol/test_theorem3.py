"""Theorem 3: a joining node sends at most d+1 CpRstMsg + JoinWaitMsg."""

import pytest

from repro.analysis.expected_cost import theorem3_bound

from tests.conftest import build_network, make_ids, run_joins


class TestTheorem3:
    @pytest.mark.parametrize("seed", range(5))
    def test_bound_holds_concurrent(self, seed):
        space, ids = make_ids(4, 5, 40, seed=seed)
        net = build_network(space, ids[:25], seed=seed)
        run_joins(net, ids[25:])
        bound = theorem3_bound(space.num_digits)
        for count in net.theorem3_counts():
            assert count <= bound

    def test_bound_holds_binary_base(self):
        """Deep suffix collisions maximize JoinWaitMsg chains."""
        space, ids = make_ids(2, 10, 80, seed=100)
        net = build_network(space, ids[:30], seed=100)
        run_joins(net, ids[30:])
        bound = theorem3_bound(space.num_digits)
        assert max(net.theorem3_counts()) <= bound

    def test_bound_value(self):
        assert theorem3_bound(8) == 9
        assert theorem3_bound(40) == 41

    def test_single_join_well_below_bound(self):
        space, ids = make_ids(16, 8, 51, seed=7)
        net = build_network(space, ids[:50], seed=7)
        run_joins(net, [ids[50]])
        count = net.theorem3_counts()[0]
        # Expected: ~log_16(50) CpRstMsg + 1 JoinWaitMsg.
        assert count <= theorem3_bound(8)
        assert count >= 2  # at least one CpRst and one JoinWait
