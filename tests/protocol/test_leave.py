"""The leave protocol (extension; paper Section 7 future work)."""

import random

import pytest

from repro.protocol.leave import leave_sequentially, replacement_candidates
from repro.protocol.node import ProtocolError
from repro.protocol.status import NodeStatus

from tests.conftest import (
    assert_network_correct,
    build_network,
    make_ids,
    run_joins,
)


class TestSingleLeave:
    def test_consistency_after_one_leave(self):
        space, ids = make_ids(4, 4, 25, seed=0)
        net = build_network(space, ids, seed=0)
        net.start_leave(ids[0], at=0.0)
        net.run()
        assert net.has_departed(ids[0])
        assert ids[0] not in net.nodes
        report = net.check_consistency()
        assert report.consistent, report.violations[:3]

    def test_leaver_absent_from_all_tables(self):
        space, ids = make_ids(4, 4, 25, seed=1)
        net = build_network(space, ids, seed=1)
        net.start_leave(ids[3], at=0.0)
        net.run()
        for node_id, table in net.tables().items():
            assert ids[3] not in table.distinct_neighbors()

    def test_leaver_absent_from_reverse_records(self):
        space, ids = make_ids(4, 4, 25, seed=2)
        net = build_network(space, ids, seed=2)
        net.start_leave(ids[3], at=0.0)
        net.run()
        for node_id, table in net.tables().items():
            assert ids[3] not in table.all_reverse_neighbors()

    def test_status_transitions(self):
        space, ids = make_ids(4, 4, 10, seed=3)
        net = build_network(space, ids, seed=3)
        node = net.node(ids[0])
        net.start_leave(ids[0], at=0.0)
        net.run()
        assert node.status is NodeStatus.LEFT
        assert node.left_at is not None

    def test_entry_cleared_when_class_dies(self):
        """The sole member of a suffix class leaves: entries for that
        class must become null (condition (b))."""
        space = make_ids(4, 4, 0)[0]
        # 3210 is the only node ending in 0.
        members = [
            space.from_string(s) for s in ["3210", "0001", "1111", "2221"]
        ]
        net = build_network(space, members, seed=4)
        lone = members[0]
        net.start_leave(lone, at=0.0)
        net.run()
        assert net.check_consistency().consistent
        for node_id, table in net.tables().items():
            assert table.get(0, 0) is None

    def test_entry_replaced_when_class_survives(self):
        space = make_ids(4, 4, 0)[0]
        members = [
            space.from_string(s) for s in ["3210", "1110", "0001", "1111"]
        ]
        net = build_network(space, members, seed=5)
        survivor = members[1]
        net.start_leave(members[0], at=0.0)
        net.run()
        assert net.check_consistency().consistent
        # The class "...0" still exists: entries must now point at 1110.
        for node_id, table in net.tables().items():
            if node_id.digit(0) != 0:
                assert table.get(0, 0) == survivor


class TestLeaveGuards:
    def test_cannot_leave_while_joining(self):
        space, ids = make_ids(4, 4, 11, seed=6)
        net = build_network(space, ids[:10], seed=6)
        joiner = net.start_join(ids[10], at=5.0)
        with pytest.raises(ProtocolError):
            joiner.begin_leave()

    def test_replacement_candidates_shape(self):
        space, ids = make_ids(4, 4, 25, seed=7)
        net = build_network(space, ids, seed=7)
        node = net.node(ids[0])
        for level, digit in node.table.reverse_positions():
            for candidate in replacement_candidates(node, level):
                # Candidates share at least level+1 digits with the
                # leaver -- exactly the class a reverse (level, digit)
                # entry requires.
                assert candidate.csuf_len(ids[0]) >= level + 1
                assert candidate != ids[0]


class TestManyLeaves:
    @pytest.mark.parametrize("seed", range(4))
    def test_sequential_leaves_preserve_consistency(self, seed):
        space, ids = make_ids(4, 4, 40, seed=seed)
        net = build_network(space, ids, seed=seed)
        rng = random.Random(seed)
        leavers = rng.sample(ids, 20)
        leave_sequentially(net, leavers)
        assert len(net.nodes) == 20
        report = net.check_consistency()
        assert report.consistent, report.violations[:3]

    def test_leave_down_to_one_node(self):
        space, ids = make_ids(4, 4, 12, seed=20)
        net = build_network(space, ids, seed=20)
        leave_sequentially(net, ids[:-1])
        assert len(net.nodes) == 1
        assert net.check_consistency().consistent

    def test_join_after_leaves(self):
        """Full membership churn: join, leave, join again."""
        space, ids = make_ids(4, 4, 30, seed=21)
        net = build_network(space, ids[:20], seed=21)
        run_joins(net, ids[20:25])
        leave_sequentially(net, ids[:10])
        run_joins(net, ids[25:])
        assert_network_correct(net)

    def test_concurrent_distant_leaves(self):
        """Two simultaneous leaves that are not candidates for each
        other's entries still compose safely."""
        space = make_ids(8, 4, 0)[0]
        members = [
            space.from_string(s)
            for s in ["1110", "2220", "3331", "4441", "5552", "6662"]
        ]
        net = build_network(space, members, seed=22)
        # 1110 and 3331 are in different classes at every level below
        # their csuf (which is 0), and neither is the other's sole
        # class representative.
        net.start_leave(members[0], at=0.0)
        net.start_leave(members[2], at=0.0)
        net.run()
        assert net.has_departed(members[0])
        assert net.has_departed(members[2])
        assert net.check_consistency().consistent

    def test_departed_excluded_from_membership(self):
        space, ids = make_ids(4, 4, 10, seed=23)
        net = build_network(space, ids, seed=23)
        leave_sequentially(net, [ids[0]])
        assert ids[0] not in net.member_ids()
        assert ids[0] not in net.tables()
        assert net.all_in_system()
