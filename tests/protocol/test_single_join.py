"""Single-join tests (Section 3.2, Lemma 5.1)."""

import random

import pytest

from repro.consistency.verifier import verify_reachability
from repro.protocol.status import NodeStatus
from repro.routing.entry import NeighborState

from tests.conftest import (
    assert_network_correct,
    build_network,
    make_ids,
    run_joins,
)


class TestSingleJoin:
    def test_lemma_5_1_consistency_after_one_join(self):
        space, ids = make_ids(4, 4, 21, seed=0)
        net = build_network(space, ids[:20], seed=0)
        run_joins(net, [ids[20]])
        assert_network_correct(net)

    def test_joiner_reaches_and_is_reached(self):
        space, ids = make_ids(4, 4, 16, seed=1)
        net = build_network(space, ids[:15], seed=1)
        run_joins(net, [ids[15]])
        report = verify_reachability(net.tables())
        assert report.all_reachable

    def test_status_progression(self):
        space, ids = make_ids(4, 4, 11, seed=2)
        net = build_network(space, ids[:10], seed=2)
        joiner_node = net.start_join(ids[10], at=0.0)
        assert joiner_node.status is NodeStatus.COPYING
        net.run()
        assert joiner_node.status is NodeStatus.IN_SYSTEM
        assert joiner_node.join_began_at == 0.0
        assert joiner_node.became_s_at is not None
        assert joiner_node.became_s_at > 0.0

    def test_join_into_network_with_close_id(self):
        """Joiner sharing a long suffix with an existing node."""
        space, ids = make_ids(4, 4, 10, seed=3)
        existing = ids[0]
        # Build a joiner differing only in the most significant digit.
        digits = list(existing.digits)
        digits[-1] = (digits[-1] + 1) % 4
        joiner = space.from_digits(digits)
        if joiner in set(ids[:10]):
            pytest.skip("collision in sampled ids")
        net = build_network(space, ids[:10], seed=3)
        run_joins(net, [joiner])
        assert_network_correct(net)
        # The existing node must now know the joiner at the top level.
        k = existing.csuf_len(joiner)
        assert net.table(existing).get(k, joiner.digit(k)) == joiner

    def test_join_with_unique_rightmost_digit(self):
        """No existing node shares even one digit: notification set is
        all of V (Definition 3.4's V_x[0] empty case)."""
        space = make_ids(4, 4, 0)[0]
        existing = [
            space.from_string(s) for s in ["0000", "1110", "2220", "3330"]
        ]
        joiner = space.from_string("1111")
        net = build_network(space, existing, seed=4)
        run_joins(net, [joiner])
        assert_network_correct(net)
        # Every existing node must have filled its (0, 1)-entry.
        for node in existing:
            assert net.table(node).get(0, 1) == joiner

    def test_joiner_states_all_s_at_end(self):
        space, ids = make_ids(4, 4, 13, seed=5)
        net = build_network(space, ids[:12], seed=5)
        run_joins(net, [ids[12]])
        table = net.table(ids[12])
        for entry in table.entries():
            assert entry.state is NeighborState.S

    def test_default_gateway_is_initial_member(self):
        space, ids = make_ids(4, 4, 11, seed=6)
        net = build_network(space, ids[:10], seed=6)
        net.start_join(ids[10])  # no explicit gateway
        net.run()
        assert_network_correct(net)

    def test_join_into_single_node_network(self):
        space = make_ids(4, 4, 0)[0]
        seed_node = space.from_string("0123")
        joiner = space.from_string("3210")
        from repro.protocol.join import JoinProtocolNetwork
        from repro.protocol.network_init import single_node_table
        from repro.topology.attachment import ConstantLatencyModel

        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0), seed=7
        )
        net.add_s_node(seed_node, single_node_table(seed_node))
        run_joins(net, [joiner])
        assert_network_correct(net)
        assert net.table(seed_node).get(0, 0) == joiner
