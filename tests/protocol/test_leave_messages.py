"""Message-level tests for the leave protocol and recovery messages."""

from repro.ids.idspace import IdSpace
from repro.network.message import HEADER_BYTES
from repro.protocol.leave import (
    LeaveForgetMsg,
    LeaveNotifyMsg,
    LeaveNotifyRlyMsg,
    replacement_candidates,
)
from repro.recovery.messages import (
    AdvertiseMsg,
    PingMsg,
    PongMsg,
    RepairFindMsg,
    RepairFindRlyMsg,
)
from repro.optimize.messages import OptFindMsg, OptFindRlyMsg

SPACE = IdSpace(4, 4)
A = SPACE.from_string("0123")
B = SPACE.from_string("3210")


class TestLeaveMessages:
    def test_notify_size_scales_with_candidates(self):
        small = LeaveNotifyMsg(A, 1, 2, ())
        large = LeaveNotifyMsg(A, 1, 2, (B, A))
        assert large.size_bytes() > small.size_bytes()
        assert small.size_bytes() > HEADER_BYTES

    def test_notify_carries_position(self):
        msg = LeaveNotifyMsg(A, 2, 3, (B,))
        assert (msg.level, msg.digit) == (2, 3)
        assert msg.candidates == (B,)

    def test_plain_leave_messages(self):
        assert LeaveNotifyRlyMsg(A).size_bytes() == HEADER_BYTES
        assert LeaveForgetMsg(A).size_bytes() == HEADER_BYTES


class TestRecoveryMessages:
    def test_ping_pong_echo(self):
        ping = PingMsg(A, 12.5, token=1)
        pong = PongMsg(B, ping.sent_at, ping.token)
        assert pong.sent_at == 12.5
        assert pong.token == 1

    def test_repair_find_fields(self):
        msg = RepairFindMsg(A, A, (1, 2), ttl=2)
        assert msg.origin == A
        assert msg.suffix == (1, 2)
        assert msg.ttl == 2
        assert msg.size_bytes() > HEADER_BYTES

    def test_repair_find_rly_size(self):
        empty = RepairFindRlyMsg(A, (1,), ())
        full = RepairFindRlyMsg(A, (1,), (B, A))
        assert full.size_bytes() > empty.size_bytes()

    def test_advertise_is_tiny(self):
        assert AdvertiseMsg(A).size_bytes() == HEADER_BYTES


class TestOptimizeMessages:
    def test_opt_find_roundtrip_fields(self):
        msg = OptFindMsg(A, (3, 2))
        assert msg.suffix == (3, 2)
        reply = OptFindRlyMsg(B, msg.suffix, (A,))
        assert reply.suffix == msg.suffix
        assert reply.candidates == (A,)
        assert reply.size_bytes() > msg.size_bytes()


class TestReplacementCandidates:
    def test_orders_deterministically_and_excludes_self(self):
        from repro.protocol.join import JoinProtocolNetwork
        from repro.topology.attachment import ConstantLatencyModel
        from repro.routing.oracle import build_consistent_tables
        from repro.protocol.node import ProtocolNode
        from repro.protocol.status import NodeStatus
        import random

        ids = SPACE.random_unique_ids(20, random.Random(1))
        tables = build_consistent_tables(ids)
        net = JoinProtocolNetwork(
            SPACE, latency_model=ConstantLatencyModel(1.0)
        )
        node = net.add_s_node(ids[0], tables[ids[0]])
        for level in range(SPACE.num_digits):
            candidates = replacement_candidates(node, level)
            assert ids[0] not in candidates
            assert candidates == replacement_candidates(node, level)
