"""Node status machinery and protocol guards."""

import pytest

from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.node import ProtocolError, ProtocolNode
from repro.protocol.status import NodeStatus
from repro.routing.table import NeighborTable
from repro.topology.attachment import ConstantLatencyModel

from tests.conftest import build_network, make_ids, run_joins


class TestNodeStatus:
    def test_is_s_node(self):
        assert NodeStatus.IN_SYSTEM.is_s_node
        for status in (
            NodeStatus.COPYING,
            NodeStatus.WAITING,
            NodeStatus.NOTIFYING,
        ):
            assert not status.is_s_node

    def test_str(self):
        assert str(NodeStatus.COPYING) == "copying"


class TestGuards:
    def test_double_start_join_rejected(self):
        space, ids = make_ids(4, 4, 12, seed=0)
        net = build_network(space, ids[:10], seed=0)
        net.start_join(ids[10], at=0.0)
        with pytest.raises(ValueError):
            net.start_join(ids[10], at=1.0)

    def test_join_of_existing_member_rejected(self):
        space, ids = make_ids(4, 4, 10, seed=1)
        net = build_network(space, ids[:10], seed=1)
        with pytest.raises(ValueError):
            net.start_join(ids[0])

    def test_begin_join_twice_rejected(self):
        space, ids = make_ids(4, 4, 12, seed=2)
        net = build_network(space, ids[:10], seed=2)
        node = net.start_join(ids[10], at=0.0)
        net.run()
        with pytest.raises(ProtocolError):
            node.begin_join(ids[0])

    def test_join_via_itself_rejected(self):
        space, ids = make_ids(4, 4, 11, seed=3)
        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0)
        )
        from repro.protocol.network_init import single_node_table

        net.add_s_node(ids[0], single_node_table(ids[0]))
        node = ProtocolNode(
            ids[1], net.transport, status=NodeStatus.COPYING
        )
        with pytest.raises(ProtocolError):
            node.begin_join(ids[1])

    def test_table_owner_mismatch_rejected(self):
        space, ids = make_ids(4, 4, 2, seed=4)
        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0)
        )
        with pytest.raises(ValueError):
            ProtocolNode(
                ids[0], net.transport, table=NeighborTable(ids[1])
            )

    def test_join_without_existing_nodes_rejected(self):
        space, ids = make_ids(4, 4, 1, seed=5)
        net = JoinProtocolNetwork(
            space, latency_model=ConstantLatencyModel(1.0)
        )
        with pytest.raises(ValueError):
            net.start_join(ids[0])


class TestBookkeeping:
    def test_initial_members_have_te_zero(self):
        space, ids = make_ids(4, 4, 10, seed=6)
        net = build_network(space, ids[:10], seed=6)
        for node_id in ids[:10]:
            assert net.node(node_id).became_s_at == 0.0
            assert net.node(node_id).join_began_at is None

    def test_joiner_queues_empty_after_completion(self):
        space, ids = make_ids(4, 4, 16, seed=7)
        net = build_network(space, ids[:10], seed=7)
        run_joins(net, ids[10:])
        for joiner in ids[10:]:
            node = net.node(joiner)
            assert node.q_reply == set()
            assert node.q_spe_reply == set()
            assert node.q_joinwait == set()

    def test_joining_period_ordering(self):
        space, ids = make_ids(4, 4, 14, seed=8)
        net = build_network(space, ids[:10], seed=8)
        run_joins(net, ids[10:])
        for joiner in ids[10:]:
            node = net.node(joiner)
            assert node.join_began_at == 0.0
            assert node.became_s_at > node.join_began_at
