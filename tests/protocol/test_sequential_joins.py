"""Sequential joins (Definition 3.2, Lemma 5.2)."""

from repro.baselines.sequential_gate import join_sequentially
from repro.csettree.classify import JoiningPeriod, joins_are_sequential

from tests.conftest import assert_network_correct, build_network, make_ids


class TestSequentialJoins:
    def test_lemma_5_2_consistency(self):
        space, ids = make_ids(4, 4, 30, seed=0)
        net = build_network(space, ids[:20], seed=0)
        join_sequentially(net, ids[20:], gap=1.0)
        assert_network_correct(net)

    def test_joining_periods_are_sequential(self):
        space, ids = make_ids(4, 4, 26, seed=1)
        net = build_network(space, ids[:20], seed=1)
        join_sequentially(net, ids[20:], gap=1.0)
        periods = [
            JoiningPeriod(
                joiner,
                net.node(joiner).join_began_at,
                net.node(joiner).became_s_at,
            )
            for joiner in ids[20:]
        ]
        assert joins_are_sequential(periods)

    def test_later_joiners_know_earlier_ones_when_needed(self):
        """After sequential joins the network is one system: routing
        works between any pair of joiners."""
        space, ids = make_ids(4, 4, 28, seed=2)
        net = build_network(space, ids[:20], seed=2)
        join_sequentially(net, ids[20:], gap=1.0)
        for source in ids[20:]:
            for target in ids[20:]:
                assert net.route(source, target).success

    def test_sequential_gate_raises_on_incomplete_join(self):
        """join_sequentially validates completion (sanity guard)."""
        space, ids = make_ids(4, 4, 22, seed=3)
        net = build_network(space, ids[:20], seed=3)
        # Normal operation should never raise.
        join_sequentially(net, ids[20:], gap=0.5)
        assert_network_correct(net)
