"""Trace-based protocol invariants.

The TraceLog records status transitions and entry fills; these tests
check temporal invariants the consistency proof leans on: monotone
status progression, no entry ever refilled with a different node
during joins, and joining-period bookkeeping matching the trace.
"""

import random

from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.status import NodeStatus
from repro.sim.trace import TraceLog
from repro.topology.attachment import UniformLatencyModel

from tests.conftest import make_ids

EXPECTED_ORDER = [
    NodeStatus.WAITING,
    NodeStatus.NOTIFYING,
    NodeStatus.IN_SYSTEM,
]


def traced_run(seed=0, n=20, m=10):
    space, ids = make_ids(4, 4, n + m, seed=seed)
    trace = TraceLog(categories=["status", "fill"])
    net = JoinProtocolNetwork.from_oracle(
        space,
        ids[:n],
        latency_model=UniformLatencyModel(random.Random(seed + 1)),
        trace=trace,
        seed=seed,
    )
    for joiner in ids[n:]:
        net.start_join(joiner, at=0.0)
    net.run()
    assert net.check_consistency().consistent
    return net, ids[n:], trace


class TestStatusTraces:
    def test_every_joiner_walks_the_status_chain(self):
        net, joiners, trace = traced_run(seed=1)
        for joiner in joiners:
            transitions = [
                record.get("status")
                for record in trace.records("status")
                if record.get("node") == joiner
            ]
            assert transitions == EXPECTED_ORDER, (joiner, transitions)

    def test_status_timestamps_monotone(self):
        net, joiners, trace = traced_run(seed=2)
        for joiner in joiners:
            times = [
                record.time
                for record in trace.records("status")
                if record.get("node") == joiner
            ]
            assert times == sorted(times)

    def test_became_s_matches_trace(self):
        net, joiners, trace = traced_run(seed=3)
        for joiner in joiners:
            in_system_records = [
                record
                for record in trace.records("status")
                if record.get("node") == joiner
                and record.get("status") is NodeStatus.IN_SYSTEM
            ]
            assert len(in_system_records) == 1
            assert net.node(joiner).became_s_at == in_system_records[0].time


class TestFillTraces:
    def test_no_position_filled_with_two_different_nodes(self):
        """The join protocol only fills empty entries; a position
        receiving two different occupants would break the monotone
        expansion argument of the proof."""
        net, joiners, trace = traced_run(seed=4)
        seen = {}
        for record in trace.records("fill"):
            key = (record.get("node"), record.get("level"),
                   record.get("digit"))
            neighbor = record.get("neighbor")
            if key in seen:
                assert seen[key] == neighbor, key
            seen[key] = neighbor

    def test_fills_respect_suffix_constraints(self):
        net, joiners, trace = traced_run(seed=5)
        for record in trace.records("fill"):
            owner = record.get("node")
            neighbor = record.get("neighbor")
            level = record.get("level")
            digit = record.get("digit")
            assert neighbor.csuf_len(owner) >= level
            assert neighbor.digit(level) == digit

    def test_fill_count_bounded_by_final_table_sizes(self):
        net, joiners, trace = traced_run(seed=6)
        total_filled = sum(
            table.filled_count() for table in net.tables().values()
        )
        # Every traced fill is distinct (no refills), so the trace
        # cannot exceed the final occupancy (self-pointers and oracle
        # fills are not traced).
        assert trace.count("fill") <= total_filled
