"""Delivery-order robustness.

The paper assumes reliable delivery but NOT FIFO channels, and the
proof never orders messages between different pairs.  The protocol
must therefore produce consistent tables under any latency regime.
These tests run the same workload under qualitatively different
models: constant delay (synchronous rounds), tiny jitter (near-FIFO),
heavy-tailed ("bimodal": most messages fast, some extremely slow --
maximal reordering), and per-pair asymmetric delays.
"""

import random

import pytest

from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import (
    ConstantLatencyModel,
    LatencyModel,
    UniformLatencyModel,
)

from tests.conftest import MAX_EVENTS, assert_network_correct


class BimodalLatencyModel(LatencyModel):
    """90% fast (1-2), 10% two orders of magnitude slower."""

    def __init__(self, rng):
        self._rng = rng

    def latency(self, src, dst):
        if self._rng.random() < 0.1:
            return self._rng.uniform(200.0, 500.0)
        return self._rng.uniform(1.0, 2.0)


class AsymmetricLatencyModel(LatencyModel):
    """Deterministic per-ordered-pair delay: A->B and B->A differ."""

    def latency(self, src, dst):
        return 1.0 + (hash((src, dst)) % 97) / 10.0


def run_workload(latency_model, seed=0):
    space = IdSpace(4, 4)
    rng = random.Random(seed)
    ids = space.random_unique_ids(35, rng)
    net = JoinProtocolNetwork.from_oracle(
        space, ids[:20], latency_model=latency_model, seed=seed
    )
    for joiner in ids[20:]:
        net.start_join(joiner, at=0.0)
    net.run(max_events=MAX_EVENTS)
    assert net.simulator.quiesced()
    return net


class TestDeliveryOrders:
    def test_constant_delay(self):
        net = run_workload(ConstantLatencyModel(1.0), seed=1)
        assert_network_correct(net)

    def test_near_fifo_jitter(self):
        net = run_workload(
            UniformLatencyModel(random.Random(2), 1.0, 1.01), seed=2
        )
        assert_network_correct(net)

    @pytest.mark.parametrize("seed", range(4))
    def test_bimodal_heavy_reordering(self, seed):
        net = run_workload(
            BimodalLatencyModel(random.Random(seed + 10)), seed=seed
        )
        assert_network_correct(net)

    def test_asymmetric_pairs(self):
        net = run_workload(AsymmetricLatencyModel(), seed=3)
        assert_network_correct(net)

    def test_same_workload_all_models_agree_on_membership(self):
        """Different orders may build different (valid) tables, but
        membership and consistency are model-independent."""
        models = [
            ConstantLatencyModel(1.0),
            UniformLatencyModel(random.Random(4), 1.0, 100.0),
            BimodalLatencyModel(random.Random(5)),
        ]
        memberships = []
        for model in models:
            net = run_workload(model, seed=7)
            assert_network_correct(net)
            memberships.append(frozenset(net.member_ids()))
        assert len(set(memberships)) == 1
