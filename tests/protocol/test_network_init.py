"""Section 6.1: network initialization from a single node."""

import pytest

from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.network_init import initialize_network, single_node_table
from repro.protocol.status import NodeStatus
from repro.routing.entry import NeighborState

from tests.conftest import (
    MAX_EVENTS,
    assert_network_correct,
    make_ids,
)
from repro.topology.attachment import UniformLatencyModel
import random


def make_net(space, seed=0):
    return JoinProtocolNetwork(
        space,
        latency_model=UniformLatencyModel(random.Random(seed), 1.0, 50.0),
        seed=seed,
    )


class TestSingleNodeTable:
    def test_matches_section_6_1(self):
        space, ids = make_ids(4, 4, 1)
        table = single_node_table(ids[0])
        # N_x(i, x[i]) = x with state S; everything else null.
        for level in range(space.num_digits):
            for digit in range(space.base):
                if digit == ids[0].digit(level):
                    assert table.get(level, digit) == ids[0]
                    assert table.state(level, digit) is NeighborState.S
                else:
                    assert table.get(level, digit) is None


class TestInitializeNetwork:
    def test_concurrent_bootstrap(self):
        space, ids = make_ids(4, 4, 25, seed=1)
        net = make_net(space, seed=1)
        initialize_network(net, ids, stagger=0.0)
        net.run(max_events=MAX_EVENTS)
        assert net.simulator.quiesced()
        assert_network_correct(net)

    def test_staggered_bootstrap(self):
        space, ids = make_ids(4, 4, 15, seed=2)
        net = make_net(space, seed=2)
        initialize_network(net, ids, stagger=5.0)
        net.run(max_events=MAX_EVENTS)
        assert_network_correct(net)

    def test_seed_node_is_s_node_from_start(self):
        space, ids = make_ids(4, 4, 5, seed=3)
        net = make_net(space, seed=3)
        initialize_network(net, ids, stagger=0.0)
        assert net.node(ids[0]).status is NodeStatus.IN_SYSTEM
        net.run(max_events=MAX_EVENTS)
        assert_network_correct(net)

    def test_bootstrap_matches_oracle_consistency(self):
        """Protocol bootstrap and oracle construction both satisfy
        Definition 3.8 for the same membership."""
        from repro.consistency.checker import check_consistency
        from repro.routing.oracle import build_consistent_tables

        space, ids = make_ids(4, 4, 20, seed=4)
        net = make_net(space, seed=4)
        initialize_network(net, ids, stagger=0.0)
        net.run(max_events=MAX_EVENTS)
        assert check_consistency(net.tables()).consistent
        assert check_consistency(build_consistent_tables(ids)).consistent

    def test_empty_id_list_rejected(self):
        space, _ = make_ids(4, 4, 0)
        net = make_net(space)
        with pytest.raises(ValueError):
            initialize_network(net, [])

    def test_two_node_bootstrap(self):
        space, ids = make_ids(4, 4, 2, seed=5)
        net = make_net(space, seed=5)
        initialize_network(net, ids)
        net.run(max_events=MAX_EVENTS)
        assert_network_correct(net)
