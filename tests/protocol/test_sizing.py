"""Section 6.2: message-size reduction.

The REDUCED policy must (a) preserve protocol correctness -- final
tables still consistent, everyone still becomes an S-node -- and
(b) actually shrink the table-carrying messages.
"""

import pytest

from repro.ids.idspace import IdSpace
from repro.protocol.sizing import (
    SizingPolicy,
    join_noti_payload,
    join_noti_reply_payload,
)
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable

from tests.conftest import (
    assert_network_correct,
    build_network,
    make_ids,
    run_joins,
)

SPACE = IdSpace(4, 4)


def sample_table():
    owner = SPACE.from_string("0123")
    table = NeighborTable(owner)
    for level in range(4):
        table.set_entry(level, owner.digit(level), owner, NeighborState.S)
    table.set_entry(0, 0, SPACE.from_string("1230"), NeighborState.S)
    table.set_entry(1, 0, SPACE.from_string("1203"), NeighborState.S)
    table.set_entry(2, 0, SPACE.from_string("1023"), NeighborState.T)
    return table


class TestPayloadPolicies:
    def test_full_policy_sends_whole_table(self):
        table = sample_table()
        snapshot, bitmap, bvb = join_noti_payload(
            SizingPolicy.FULL, table, noti_level=1, csuf_with_receiver=2
        )
        assert len(snapshot) == table.filled_count()
        assert bitmap is None
        assert bvb == 0

    def test_reduced_policy_restricts_levels(self):
        table = sample_table()
        snapshot, bitmap, bvb = join_noti_payload(
            SizingPolicy.REDUCED, table, noti_level=1, csuf_with_receiver=2
        )
        assert all(1 <= e.level <= 2 for e in snapshot)
        assert bitmap == {
            (e.level, e.digit) for e in table.entries()
        }
        # 4x4 entries = 16 bits = 2 bytes.
        assert bvb == 2

    def test_reduced_reply_filters_filled_low_levels(self):
        table = sample_table()
        # Notifier has filled (0, 0) and its own (0, 3): those are
        # omitted below noti_level; levels >= noti_level all included.
        bitmap = frozenset({(0, 0), (0, 3)})
        reply = join_noti_reply_payload(
            SizingPolicy.REDUCED, table, noti_level=1, bitmap=bitmap
        )
        positions = {(e.level, e.digit) for e in reply}
        assert (0, 0) not in positions
        assert (0, 3) not in positions
        assert (1, 0) in positions
        assert (2, 0) in positions

    def test_reduced_reply_includes_unfilled_low_levels(self):
        table = sample_table()
        bitmap = frozenset()  # notifier has nothing
        reply = join_noti_reply_payload(
            SizingPolicy.REDUCED, table, noti_level=2, bitmap=bitmap
        )
        assert len(reply) == table.filled_count()

    def test_full_reply_ignores_bitmap(self):
        table = sample_table()
        reply = join_noti_reply_payload(
            SizingPolicy.FULL, table, noti_level=1, bitmap=frozenset()
        )
        assert len(reply) == table.filled_count()


class TestEndToEndReduced:
    @pytest.mark.parametrize("seed", range(4))
    def test_reduced_policy_preserves_consistency(self, seed):
        space, ids = make_ids(4, 4, 32, seed=seed)
        net = build_network(
            space, ids[:20], seed=seed, sizing=SizingPolicy.REDUCED
        )
        run_joins(net, ids[20:])
        assert_network_correct(net)

    def test_reduced_policy_saves_bytes(self):
        space, ids = make_ids(4, 5, 60, seed=50)

        def total_bytes(sizing):
            net = build_network(space, ids[:40], seed=50, sizing=sizing)
            run_joins(net, ids[40:])
            assert_network_correct(net)
            return (
                net.stats.bytes_by_type["JoinNotiMsg"]
                + net.stats.bytes_by_type["JoinNotiRlyMsg"]
            )

        full = total_bytes(SizingPolicy.FULL)
        reduced = total_bytes(SizingPolicy.REDUCED)
        assert reduced < full

    def test_reduced_policy_binary_base(self):
        """Heavy-collision workload under the reduced policy."""
        space, ids = make_ids(2, 7, 50, seed=51)
        net = build_network(
            space, ids[:20], seed=51, sizing=SizingPolicy.REDUCED
        )
        run_joins(net, ids[20:])
        assert_network_correct(net)
