"""Handler-level unit tests: each Figure 6-14 action in isolation.

These construct small controlled configurations, invoke a single
message handler, and inspect the exact state change and messages sent
-- complementing the end-to-end suites with pinpoint coverage of each
branch in the pseudo-code.
"""

import pytest

from repro.ids.idspace import IdSpace
from repro.protocol.messages import (
    InSysNotiMsg,
    JoinNotiMsg,
    JoinNotiRlyMsg,
    JoinWaitMsg,
    JoinWaitRlyMsg,
    RvNghNotiMsg,
    RvNghNotiRlyMsg,
    SpeNotiMsg,
    SpeNotiRlyMsg,
)
from repro.protocol.node import ProtocolNode
from repro.protocol.status import NodeStatus
from repro.network.transport import Transport
from repro.network.stats import MessageStats
from repro.routing.entry import NeighborState
from repro.sim.scheduler import Simulator
from repro.topology.attachment import ConstantLatencyModel

SPACE = IdSpace(4, 4)


class Harness:
    """A transport with hand-built nodes and message capture."""

    def __init__(self):
        self.simulator = Simulator()
        self.stats = MessageStats()
        self.transport = Transport(
            self.simulator, ConstantLatencyModel(1.0), self.stats
        )

    def s_node(self, text):
        node_id = SPACE.from_string(text)
        node = ProtocolNode(
            node_id, self.transport, status=NodeStatus.IN_SYSTEM
        )
        for level in range(SPACE.num_digits):
            node.table.set_entry(
                level, node_id.digit(level), node_id, NeighborState.S
            )
        return node

    def t_node(self, text, status=NodeStatus.WAITING):
        node_id = SPACE.from_string(text)
        node = ProtocolNode(node_id, self.transport, status=status)
        for level in range(SPACE.num_digits):
            node.table.set_entry(
                level, node_id.digit(level), node_id, NeighborState.T
            )
        return node

    def sent(self, type_name):
        return self.stats.count(type_name)


@pytest.fixture
def harness():
    return Harness()


class TestJoinWaitHandler:
    """Figure 6."""

    def test_s_node_with_empty_entry_replies_positive(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")  # csuf = 2, entry (2, 3)
        y._on_join_wait(JoinWaitMsg(x.node_id))
        assert y.table.get(2, 3) == x.node_id
        assert y.table.state(2, 3) is NeighborState.T
        assert harness.sent("JoinWaitRlyMsg") == 1
        assert harness.sent("RvNghNotiMsg") == 1  # fill bookkeeping

    def test_s_node_with_occupied_entry_replies_negative(self, harness):
        y = harness.s_node("0123")
        other = harness.s_node("1323")
        y.table.set_entry(2, 3, other.node_id, NeighborState.S)
        x = harness.t_node("3323")
        y._on_join_wait(JoinWaitMsg(x.node_id))
        # The entry keeps its occupant; x is told about it.
        assert y.table.get(2, 3) == other.node_id
        assert harness.sent("JoinWaitRlyMsg") == 1

    def test_t_node_queues_joiner(self, harness):
        y = harness.t_node("0123", status=NodeStatus.NOTIFYING)
        x = harness.t_node("3323")
        y._on_join_wait(JoinWaitMsg(x.node_id))
        assert x.node_id in y.q_joinwait
        assert harness.sent("JoinWaitRlyMsg") == 0


class TestJoinWaitRlyHandler:
    """Figure 7."""

    def test_positive_reply_moves_to_notifying(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")
        x.q_reply.add(y.node_id)
        # y NOT pre-added to Qn: Check_Ngh_Table will then (re)notify
        # it, keeping x in notifying status with one reply pending.
        x._on_join_wait_rly(
            JoinWaitRlyMsg(y.node_id, True, x.node_id, y.table.snapshot())
        )
        assert x.status is NodeStatus.NOTIFYING
        assert x.noti_level == 2  # csuf(0123, 3323)
        assert y.node_id in x.table.reverse_neighbors(2, x.node_id.digit(2))
        assert x.q_reply == {y.node_id}
        assert harness.sent("JoinNotiMsg") == 1

    def test_negative_reply_chains_join_wait(self, harness):
        y = harness.s_node("0123")
        referral = harness.s_node("1323")
        x = harness.t_node("3323")
        x.q_reply.add(y.node_id)
        x._on_join_wait_rly(
            JoinWaitRlyMsg(
                y.node_id, False, referral.node_id, y.table.snapshot()
            )
        )
        assert x.status is NodeStatus.WAITING
        assert harness.sent("JoinWaitMsg") == 1
        assert referral.node_id in x.q_reply
        assert referral.node_id in x.q_notified

    def test_positive_in_wrong_status_raises(self, harness):
        from repro.protocol.node import ProtocolError

        y = harness.s_node("0123")
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        with pytest.raises(ProtocolError):
            x._on_join_wait_rly(
                JoinWaitRlyMsg(
                    y.node_id, True, x.node_id, y.table.snapshot()
                )
            )

    def test_immediate_switch_when_nothing_to_notify(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")
        x.q_reply.add(y.node_id)
        x.q_notified.add(y.node_id)
        x._on_join_wait_rly(
            JoinWaitRlyMsg(y.node_id, True, x.node_id, y.table.snapshot())
        )
        # y's table only held itself (already in Qn): x switches.
        assert x.status is NodeStatus.IN_SYSTEM


class TestJoinNotiHandler:
    """Figure 9."""

    def test_fills_and_replies_positive(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        x.noti_level = 2
        y._on_join_noti(
            JoinNotiMsg(x.node_id, x.table.snapshot(), x.noti_level)
        )
        assert y.table.get(2, 3) == x.node_id
        assert harness.sent("JoinNotiRlyMsg") == 1

    def test_conflict_flag_when_notifier_lacks_receiver(self, harness):
        """f = true: x's table does not hold y at (csuf, y[csuf])."""
        y = harness.s_node("0123")
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        other = harness.s_node("2123")
        # x stored 2123 where y would go (same "123"-suffix class).
        x.table.set_entry(2, 1, other.node_id, NeighborState.S)
        harness.simulator.run()  # flush RvNgh noise
        before = harness.sent("JoinNotiRlyMsg")
        y._on_join_noti(
            JoinNotiMsg(x.node_id, x.table.snapshot(), x.noti_level)
        )
        assert harness.sent("JoinNotiRlyMsg") == before + 1

    def test_negative_when_entry_already_taken(self, harness):
        y = harness.s_node("0123")
        other = harness.s_node("1323")
        y.table.set_entry(2, 3, other.node_id, NeighborState.S)
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        y._on_join_noti(
            JoinNotiMsg(x.node_id, x.table.snapshot(), x.noti_level)
        )
        assert y.table.get(2, 3) == other.node_id


class TestSpeNotiHandler:
    """Figures 11 and 12."""

    def test_fills_empty_entry_and_replies(self, harness):
        u = harness.s_node("0023")
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        y = harness.s_node("1123")
        u._on_spe_noti(SpeNotiMsg(x.node_id, x.node_id, y.node_id))
        k = u.node_id.csuf_len(y.node_id)
        assert u.table.get(k, y.node_id.digit(k)) == y.node_id
        assert harness.sent("SpeNotiRlyMsg") == 1

    def test_forwards_when_entry_held_by_other(self, harness):
        u = harness.s_node("0023")
        occupant = harness.s_node("2123")  # same (2,1)-class as 1123
        u.table.set_entry(2, 1, occupant.node_id, NeighborState.S)
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        y = harness.s_node("1123")
        u._on_spe_noti(SpeNotiMsg(x.node_id, x.node_id, y.node_id))
        assert harness.sent("SpeNotiMsg") == 1  # forwarded
        assert harness.sent("SpeNotiRlyMsg") == 0

    def test_reply_clears_qsr_and_switches(self, harness):
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        y = harness.s_node("1123")
        x.q_spe_reply.add(y.node_id)
        x._on_spe_noti_rly(
            SpeNotiRlyMsg(y.node_id, x.node_id, y.node_id)
        )
        assert not x.q_spe_reply
        assert x.status is NodeStatus.IN_SYSTEM


class TestInSysAndRvNgh:
    """Figures 13, 14 and the RvNgh bookkeeping."""

    def test_in_sys_noti_flips_all_positions(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")
        y.table.set_entry(2, 3, x.node_id, NeighborState.T)
        y._on_in_sys_noti(InSysNotiMsg(x.node_id))
        assert y.table.state(2, 3) is NeighborState.S

    def test_rv_ngh_noti_records_reverse_and_corrects_state(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")
        # x recorded y as T -- wrong, y is an S-node: y must reply.
        y._on_rv_ngh_noti(
            RvNghNotiMsg(x.node_id, 2, 0, NeighborState.T)
        )
        assert x.node_id in y.table.reverse_neighbors(2, 0)
        assert harness.sent("RvNghNotiRlyMsg") == 1

    def test_rv_ngh_noti_consistent_state_no_reply(self, harness):
        y = harness.s_node("0123")
        x = harness.t_node("3323")
        y._on_rv_ngh_noti(
            RvNghNotiMsg(x.node_id, 2, 0, NeighborState.S)
        )
        assert harness.sent("RvNghNotiRlyMsg") == 0

    def test_rv_ngh_rly_updates_state(self, harness):
        x = harness.t_node("3323")
        y = harness.s_node("0123")
        x.table.set_entry(2, 1, y.node_id, NeighborState.T)
        x._on_rv_ngh_noti_rly(
            RvNghNotiRlyMsg(y.node_id, 2, 1, NeighborState.S)
        )
        assert x.table.state(2, 1) is NeighborState.S

    def test_rv_ngh_rly_ignores_stale_position(self, harness):
        x = harness.t_node("3323")
        y = harness.s_node("0123")
        # Position empty: reply must be a no-op.
        x._on_rv_ngh_noti_rly(
            RvNghNotiRlyMsg(y.node_id, 2, 1, NeighborState.S)
        )
        assert x.table.get(2, 1) is None

    def test_switch_flushes_queued_joiners(self, harness):
        x = harness.t_node("3323", status=NodeStatus.NOTIFYING)
        waiting = harness.t_node("1323")
        x.q_joinwait.add(waiting.node_id)
        x._switch_to_s_node()
        assert x.status is NodeStatus.IN_SYSTEM
        assert not x.q_joinwait
        k = x.node_id.csuf_len(waiting.node_id)
        assert x.table.get(k, waiting.node_id.digit(k)) == waiting.node_id
        assert harness.sent("JoinWaitRlyMsg") == 1
