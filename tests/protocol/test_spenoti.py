"""The SpeNotiMsg repair path.

The paper (footnote 8) observes SpeNotiMsg is rarely sent; it exists to
repair a corner case of concurrent dependent joins where an S-node
notices the notifier recorded some other node in the entry where the
S-node itself would go.  These tests pin down workloads that exercise
the path (found by seed search: b=2 IDs force deep suffix collisions)
and verify consistency still holds.
"""

import random

import pytest

from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

from tests.conftest import MAX_EVENTS, assert_network_correct


def run_collision_heavy(seed):
    space = IdSpace(2, 6)
    rng = random.Random(seed)
    ids = space.random_unique_ids(50, rng)
    net = JoinProtocolNetwork.from_oracle(
        space,
        ids[:10],
        latency_model=UniformLatencyModel(random.Random(seed + 5000)),
        seed=seed,
    )
    for joiner in ids[10:]:
        net.start_join(joiner, at=0.0)
    net.run(max_events=MAX_EVENTS)
    return net


class TestSpeNoti:
    @pytest.mark.parametrize("seed", [0, 5, 8, 12, 15])
    def test_spenoti_fires_and_network_stays_consistent(self, seed):
        net = run_collision_heavy(seed)
        assert net.stats.count("SpeNotiMsg") > 0, (
            "expected this seed to exercise the SpeNotiMsg path"
        )
        # Every SpeNotiMsg chain terminates with exactly one reply to
        # the originator.
        assert net.stats.count("SpeNotiRlyMsg") >= 1
        assert_network_correct(net)

    def test_spenoti_rare_in_typical_workloads(self):
        """Footnote 8: 'we observed that SpeNotiMsg is rarely sent'."""
        space = IdSpace(16, 8)
        rng = random.Random(1)
        ids = space.random_unique_ids(250, rng)
        net = JoinProtocolNetwork.from_oracle(
            space,
            ids[:200],
            latency_model=UniformLatencyModel(random.Random(2)),
            seed=1,
        )
        for joiner in ids[200:]:
            net.start_join(joiner, at=0.0)
        net.run(max_events=MAX_EVENTS)
        assert_network_correct(net)
        spe = net.stats.count("SpeNotiMsg")
        noti = net.stats.count("JoinNotiMsg")
        assert spe <= max(1, noti // 20), (
            f"SpeNotiMsg should be rare: {spe} vs {noti} JoinNotiMsg"
        )
