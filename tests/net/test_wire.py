"""Frame format tests: framing, addresses, table snapshots."""

import json

import pytest

from repro.ids.idspace import IdSpace
from repro.net.wire import (
    ACK,
    CTL,
    MSG,
    RSP,
    ack_frame,
    ctl_frame,
    decode_frame,
    encode_frame,
    format_hostport,
    frame_message,
    msg_frame,
    node_id_from_wire,
    node_id_to_wire,
    parse_hostport,
    rsp_frame,
    table_from_wire,
    table_to_wire,
)
from repro.protocol.messages import CpRstMsg, JoinWaitMsg
from repro.protocol.network_init import single_node_table
from repro.routing.entry import NeighborState
from repro.runtime.codec import (
    CAUSAL_SLOTS,
    MAX_DATAGRAM_BYTES,
    MalformedWireError,
    OversizedMessageError,
    message_from_obj,
    message_to_obj,
)

SPACE = IdSpace(4, 4)


class TestFraming:
    def test_message_frame_round_trip(self):
        sender = SPACE.from_string("0123")
        message = JoinWaitMsg(sender)
        frame = decode_frame(encode_frame(msg_frame(9, message)))
        assert frame["k"] == MSG
        assert frame["s"] == 9
        decoded = frame_message(frame)
        assert type(decoded) is JoinWaitMsg
        assert decoded.sender == sender

    def test_ack_frame_round_trip(self):
        frame = decode_frame(encode_frame(ack_frame(42)))
        assert frame == {"k": ACK, "s": 42}

    def test_control_frames_round_trip(self):
        ctl = decode_frame(encode_frame(ctl_frame(3, "status")))
        assert (ctl["k"], ctl["r"], ctl["op"], ctl["b"]) == (
            CTL, 3, "status", {},
        )
        rsp = decode_frame(encode_frame(rsp_frame(3, {"ok": True})))
        assert (rsp["k"], rsp["r"], rsp["b"]) == (RSP, 3, {"ok": True})

    def test_oversized_frame_refused(self):
        frame = {"k": MSG, "s": 1, "m": "x" * MAX_DATAGRAM_BYTES}
        with pytest.raises(OversizedMessageError):
            encode_frame(frame)

    def test_garbage_rejected(self):
        with pytest.raises(MalformedWireError):
            decode_frame(b"\xff\xfe not json")
        with pytest.raises(MalformedWireError):
            decode_frame(b"[1,2,3]")
        with pytest.raises(MalformedWireError):
            decode_frame(json.dumps({"k": "z"}).encode())


class TestCausalIds:
    """Causal stamps must survive the wire -- and their absence (an
    unstamped sender, or a peer from before stamping existed) must
    decode cleanly to ``None``."""

    def test_causal_ids_round_trip_through_codec(self):
        message = CpRstMsg(SPACE.from_string("0123"))
        message.msg_id = "0123#00000007"
        message.parent_id = "3210#00000002"
        message.trace_id = "3210#00000001"
        obj = message_to_obj(message)
        json.dumps(obj)  # must be JSON-ready
        decoded = message_from_obj(obj)
        assert decoded.msg_id == "0123#00000007"
        assert decoded.parent_id == "3210#00000002"
        assert decoded.trace_id == "3210#00000001"

    def test_causal_ids_round_trip_through_frame(self):
        message = JoinWaitMsg(SPACE.from_string("2301"))
        message.msg_id = "2301#00000001"
        message.trace_id = "2301#00000001"
        frame = decode_frame(encode_frame(msg_frame(4, message)))
        decoded = frame_message(frame)
        assert decoded.msg_id == "2301#00000001"
        assert decoded.parent_id is None
        assert decoded.trace_id == "2301#00000001"

    def test_unstamped_message_omits_causal_slots(self):
        obj = message_to_obj(CpRstMsg(SPACE.from_string("0123")))
        assert not (CAUSAL_SLOTS & set(obj["f"]))

    def test_frame_without_causal_fields_decodes(self):
        # A frame as an older (pre-telemetry) peer would emit: the
        # causal slots simply absent, not null.
        obj = message_to_obj(CpRstMsg(SPACE.from_string("0123")))
        for slot in CAUSAL_SLOTS:
            obj["f"].pop(slot, None)
        decoded = message_from_obj(obj)
        assert decoded.msg_id is None
        assert decoded.parent_id is None
        assert decoded.trace_id is None

    def test_other_missing_slots_still_rejected(self):
        obj = message_to_obj(CpRstMsg(SPACE.from_string("0123")))
        del obj["f"]["sender"]
        with pytest.raises(MalformedWireError):
            message_from_obj(obj)


class TestAddresses:
    def test_parse_and_format(self):
        assert parse_hostport("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_hostport(":0") == ("127.0.0.1", 0)
        assert format_hostport(("10.0.0.1", 9000)) == "10.0.0.1:9000"

    def test_bad_hostport_rejected(self):
        with pytest.raises(ValueError):
            parse_hostport("no-port-here")
        with pytest.raises(ValueError):
            parse_hostport("host:notaport")


class TestProtocolValues:
    def test_node_id_round_trip(self):
        node_id = SPACE.from_string("3210")
        wire = node_id_to_wire(node_id)
        json.dumps(wire)  # must be JSON-ready
        assert node_id_from_wire(wire) == node_id

    def test_node_id_type_enforced(self):
        with pytest.raises(MalformedWireError):
            node_id_from_wire({"$en": ["NeighborState", "S"]})

    def test_table_round_trip(self):
        owner = SPACE.from_string("0123")
        table = single_node_table(owner)
        table.set_entry(
            0, 2, SPACE.from_string("3332"), NeighborState.T
        )
        wire = table_to_wire(table)
        json.dumps(wire)  # must be JSON-ready
        rebuilt = table_from_wire(wire)
        assert rebuilt.owner == owner
        assert {
            (e.level, e.digit, e.node, e.state)
            for e in rebuilt.snapshot()
        } == {
            (e.level, e.digit, e.node, e.state)
            for e in table.snapshot()
        }

    def test_bad_table_snapshot_rejected(self):
        with pytest.raises(MalformedWireError):
            table_from_wire({"entries": []})  # no owner
        owner = node_id_to_wire(SPACE.from_string("0123"))
        with pytest.raises(MalformedWireError):
            table_from_wire({"owner": owner, "entries": [[0, 1]]})
