"""In-process loopback cluster: several DatagramTransports and
protocol nodes over real UDP sockets, sharing one AsyncioRuntime.

Because all endpoints live on the same runtime loop, ``runtime.run()``
observes *network-wide* quiescence -- it returns when every message
has been delivered, acked, and handled, which makes socket tests as
deterministic as simulator tests without subprocess machinery.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultPlan
from repro.obs.instrument import JoinObserver
from repro.obs.remote import RemoteTelemetry
from repro.protocol.network_init import single_node_table
from repro.protocol.node import ProtocolNode
from repro.protocol.status import NodeStatus
from repro.runtime.realtime import AsyncioRuntime

#: Fast wall clock for tests: 0.2 ms per protocol unit.
TEST_TIME_SCALE = 0.0002


class LoopbackNet:
    """``count`` nodes over loopback UDP on one runtime.

    Node 0 is the in-system seed; the rest are created *copying* and
    join on demand via :meth:`join`.  All peer addresses are statically
    seeded (the multi-process rendezvous path has its own tests).

    ``telemetry=True`` gives every transport its own
    :class:`~repro.obs.remote.RemoteTelemetry` bundle (mirroring one
    daemon per process) plus a phase-observing
    :class:`~repro.obs.instrument.JoinObserver`, so merge/causality
    tests can exercise the real multi-tracer geometry in-process.
    """

    def __init__(
        self,
        count: int,
        base: int = 4,
        num_digits: int = 4,
        seed: int = 7,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
        telemetry: bool = False,
    ):
        self.runtime = AsyncioRuntime(time_scale=TEST_TIME_SCALE)
        self.space = IdSpace(base, num_digits)
        rng = random.Random(seed)
        self.ids: List[NodeId] = self.space.random_unique_ids(count, rng)
        fault_plans = fault_plans or {}
        self.transports: List[DatagramTransport] = []
        self.telemetries: List[Optional[RemoteTelemetry]] = []
        self.observers: List[Optional[JoinObserver]] = []
        for index in range(count):
            if telemetry:
                bundle: Optional[RemoteTelemetry] = RemoteTelemetry(
                    node=str(self.ids[index])
                )
                observer: Optional[JoinObserver] = JoinObserver(
                    bundle.observability()
                )
            else:
                bundle = None
                observer = None
            self.telemetries.append(bundle)
            self.observers.append(observer)
            transport = DatagramTransport(
                self.runtime,
                ("127.0.0.1", 0),
                faults=fault_plans.get(index),
                tracer=bundle.tracer if bundle is not None else None,
                metrics=bundle.metrics if bundle is not None else None,
            )
            transport.open()
            self.transports.append(transport)
        for a in range(count):
            for b in range(count):
                if a != b:
                    self.transports[a].add_peer(
                        self.ids[b], self.transports[b].local_addr
                    )
        seed_id = self.ids[0]
        self.nodes: List[ProtocolNode] = [
            ProtocolNode(
                seed_id,
                self.transports[0],
                status=NodeStatus.IN_SYSTEM,
                table=single_node_table(seed_id),
            )
        ]
        for index in range(1, count):
            self.nodes.append(
                ProtocolNode(
                    self.ids[index],
                    self.transports[index],
                    status=NodeStatus.COPYING,
                )
            )
        if telemetry:
            for index, node in enumerate(self.nodes):
                node.on_phase = self.observers[index].on_phase

    def join(self, index: int, gateway_index: int = 0) -> None:
        """Schedule node ``index`` to begin joining at t=0."""
        gateway = self.ids[gateway_index]
        self.runtime.schedule(0.0, self.nodes[index].begin_join, gateway)

    def run(self, wall_budget: float = 20.0) -> int:
        """Run to network-wide quiescence."""
        return self.runtime.run(wall_budget=wall_budget)

    def tables(self):
        """Live tables keyed by node ID (the consistency checker's input)."""
        return {node.node_id: node.table for node in self.nodes}

    def daemon_traces(self):
        """Per-node :class:`~repro.obs.remote.DaemonTrace` inputs for
        merge tests.  All endpoints share one runtime clock, so the
        identity anchor (now=0 at wall=0, scale=1) is exact."""
        from repro.obs.remote import DaemonTrace

        traces = []
        for index, bundle in enumerate(self.telemetries):
            if bundle is None:
                continue
            traces.append(
                DaemonTrace(
                    name=str(self.ids[index]),
                    spans=[s.to_record() for s in bundle.tracer.spans()],
                    events=[e.to_record() for e in bundle.tracer.events()],
                )
            )
        return traces

    def close(self) -> None:
        for transport in self.transports:
            transport.close()
        self.runtime.close()

    def __enter__(self) -> "LoopbackNet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
