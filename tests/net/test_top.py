"""``repro top`` tests: table rendering and a live poll against a
rendezvous plus a canned-status daemon."""

import io
import socket
import threading

from repro.ids.idspace import IdSpace
from repro.net.control import ControlClient
from repro.net.rendezvous import RendezvousServer
from repro.net.top import poll_cluster, render_rows, run_top
from repro.net.wire import (
    CTL,
    decode_frame,
    encode_frame,
    node_id_to_wire,
    rsp_frame,
)

SPACE = IdSpace(4, 4)


class TestRenderRows:
    def test_header_and_alignment(self):
        text = render_rows([])
        assert text.startswith("NODE")
        assert "UNACKED" in text and "RTT-MS" in text

    def test_value_formatting(self):
        rows = [
            {
                "node": "0123", "status": "in_system", "s": True,
                "table": 12, "unacked": 0, "retransmits": 0,
                "deduped": 3, "rtt_ms": 0.44, "now": 812.0,
            },
            {"node": "2330", "status": "unreachable"},
        ]
        lines = render_rows(rows).splitlines()
        assert len(lines) == 3
        # Bools render as a star, floats to one decimal, missing as -.
        assert "*" in lines[1] and "0.4" in lines[1]
        assert "unreachable" in lines[2] and "-" in lines[2]

    def test_false_bool_renders_empty(self):
        line = render_rows(
            [{"node": "1", "status": "waiting", "s": False}]
        ).splitlines()[1]
        assert "*" not in line


class _CannedDaemon:
    """A UDP endpoint that answers ``status`` control requests with a
    fixed body -- a daemon's control surface without a daemon."""

    def __init__(self, body):
        self.body = body
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.settimeout(0.1)
        self.addr = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                data, src = self._sock.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                return
            frame = decode_frame(data)
            if frame.get("k") == CTL and frame.get("op") == "status":
                self._sock.sendto(
                    encode_frame(rsp_frame(frame["r"], self.body)), src
                )

    def announce(self, rendezvous, node_id, s):
        """Register with the rendezvous *from this socket*, so the
        recorded source address is the daemon's own."""
        self._sock.sendto(
            encode_frame(
                {
                    "k": CTL, "r": 99, "op": "announce",
                    "b": {"id": node_id_to_wire(node_id), "s": s},
                }
            ),
            rendezvous,
        )

    def close(self):
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._sock.close()


class TestLivePoll:
    def test_poll_and_run_top_against_live_roster(self):
        server = RendezvousServer(("127.0.0.1", 0), ttl=60.0)
        rendezvous = server.open()
        server_thread = threading.Thread(target=server.serve, daemon=True)
        server_thread.start()
        daemon = _CannedDaemon(
            {
                "id": "0123", "status": "in_system", "s": True,
                "table_filled": 9, "now": 42.0, "telemetry": True,
                "wire": {
                    "sent": 17, "retransmitted": 1, "deduped": 2,
                    "acked": 17, "gave_up": 0, "unacked": 0,
                },
            }
        )
        # A registered-but-gone daemon: announces, then its socket dies.
        ghost = _CannedDaemon({})
        try:
            with ControlClient(timeout=0.2, retries=1) as client:
                daemon.announce(
                    rendezvous, SPACE.from_string("0123"), s=True
                )
                ghost.announce(
                    rendezvous, SPACE.from_string("2330"), s=False
                )
                ghost.close()
                # Wait until the rendezvous has both registrations.
                for _ in range(50):
                    pong = client.request(rendezvous, "ping")
                    if pong["nodes"] == 2:
                        break
                assert pong["nodes"] == 2

                # The live daemon shows with its wire counters; the
                # dead one still gets a row instead of vanishing.
                rows = poll_cluster(client, rendezvous)
                by_node = {row["node"]: row for row in rows}
                assert set(by_node) == {"0123", "2330"}
                live = by_node["0123"]
                assert live["status"] == "in_system"
                assert live["s"] is True
                assert live["retransmits"] == 1
                assert live["deduped"] == 2
                assert live["rtt_ms"] >= 0.0
                assert by_node["2330"]["status"] == "unreachable"

                out = io.StringIO()
                taken = run_top(
                    rendezvous, interval=0.0, iterations=2,
                    out=out, client=client,
                )
                assert taken == 2
                text = out.getvalue()
                assert text.count("repro top --") == 2
                assert "0123" in text and "in_system" in text
                # Not a TTY: no clear codes, samples just append.
                assert "\x1b" not in text
        finally:
            daemon.close()
            server.stop()
            server_thread.join(timeout=5.0)
            server.close()
