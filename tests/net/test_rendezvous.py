"""Rendezvous directory tests: handler logic and live-socket service."""

import threading

import pytest

from repro.ids.idspace import IdSpace
from repro.net.control import ControlClient, ControlError
from repro.net.rendezvous import RendezvousServer
from repro.net.wire import node_id_from_wire, node_id_to_wire

SPACE = IdSpace(4, 4)


def wire_id(text):
    return node_id_to_wire(SPACE.from_string(text))


class TestHandlerLogic:
    """Direct ``handle()`` tests -- no sockets."""

    def setup_method(self):
        self.server = RendezvousServer(("127.0.0.1", 0), ttl=60.0)

    def teardown_method(self):
        self.server.close()

    def test_announce_returns_other_s_nodes_only(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("0000"), "s": True},
               ("127.0.0.1", 10))
        handle("announce", {"id": wire_id("1111"), "s": False},
               ("127.0.0.1", 11))
        response = handle(
            "announce", {"id": wire_id("2222"), "s": True},
            ("127.0.0.1", 12),
        )
        peers = response["peers"]
        # Only the S-node, and never the announcer itself.
        assert [node_id_from_wire(row[0]) for row in peers] == [
            SPACE.from_string("0000")
        ]
        assert peers[0][1] == ["127.0.0.1", 10]

    def test_resolve_any_announced_node(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("1111"), "s": False},
               ("127.0.0.1", 11))
        assert handle("resolve", {"id": wire_id("1111")}, ("c", 1)) == {
            "addr": ["127.0.0.1", 11]
        }
        assert handle("resolve", {"id": wire_id("3333")}, ("c", 1)) == {
            "addr": None
        }

    def test_remove_forgets_a_node(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("1111"), "s": True},
               ("127.0.0.1", 11))
        handle("remove", {"id": wire_id("1111")}, ("c", 1))
        assert handle("resolve", {"id": wire_id("1111")}, ("c", 1)) == {
            "addr": None
        }

    def test_ttl_expires_stale_registrations(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("1111"), "s": True},
               ("127.0.0.1", 11))
        registration = self.server.registrations[SPACE.from_string("1111")]
        registration.refreshed_at -= 120.0  # age it past the TTL
        assert handle("ping", None or {}, ("c", 1))["nodes"] == 0
        assert handle("peers", {}, ("c", 1))["peers"] == []

    def test_directory_lists_every_live_node_with_s_bits(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("2222"), "s": True},
               ("127.0.0.1", 12))
        handle("announce", {"id": wire_id("0000"), "s": False},
               ("127.0.0.1", 10))
        nodes = handle("directory", {}, ("c", 1))["nodes"]
        # Full roster -- S and non-S alike -- sorted by id.
        assert [
            (str(node_id_from_wire(row[0])), row[1], row[2])
            for row in nodes
        ] == [
            ("0000", ["127.0.0.1", 10], False),
            ("2222", ["127.0.0.1", 12], True),
        ]

    def test_directory_respects_ttl(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("1111"), "s": False},
               ("127.0.0.1", 11))
        registration = self.server.registrations[SPACE.from_string("1111")]
        registration.refreshed_at -= 120.0
        assert handle("directory", {}, ("c", 1))["nodes"] == []

    def test_unknown_op(self):
        assert "error" in self.server.handle("wat", {}, ("c", 1))

    def test_directory_rows_carry_kind_defaulting_to_node(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("0000"), "s": True},
               ("127.0.0.1", 10))  # no kind: a protocol node
        handle(
            "announce",
            {"id": wire_id("1111"), "s": False, "kind": "worker"},
            ("127.0.0.1", 11),
        )
        nodes = handle("directory", {}, ("c", 1))["nodes"]
        assert [(str(node_id_from_wire(r[0])), r[3]) for r in nodes] == [
            ("0000", "node"),
            ("1111", "worker"),
        ]

    def test_workers_never_appear_in_peer_lists(self):
        handle = self.server.handle
        handle("announce", {"id": wire_id("0000"), "s": True},
               ("127.0.0.1", 10))
        # Even a (misconfigured) worker announcing s=True is not a
        # bootstrap contact.
        handle(
            "announce",
            {"id": wire_id("1111"), "s": True, "kind": "worker"},
            ("127.0.0.1", 11),
        )
        peers = handle("peers", {}, ("c", 1))["peers"]
        assert [node_id_from_wire(row[0]) for row in peers] == [
            SPACE.from_string("0000")
        ]


class TestLiveService:
    """End-to-end over a real socket, driven by the blocking client."""

    def test_announce_resolve_stop_over_udp(self):
        server = RendezvousServer(("127.0.0.1", 0), ttl=60.0)
        addr = server.open()
        thread = threading.Thread(target=server.serve, daemon=True)
        thread.start()
        try:
            with ControlClient(timeout=1.0, retries=3) as client:
                pong = client.request(addr, "ping")
                assert pong["ok"] and pong["nodes"] == 0
                client.request(
                    addr, "announce", {"id": wire_id("0123"), "s": True}
                )
                resolved = client.request(
                    addr, "resolve", {"id": wire_id("0123")}
                )
                assert resolved["addr"] is not None
                assert client.request(addr, "stop")["ok"]
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        finally:
            server.stop()
            thread.join(timeout=5.0)
            server.close()

    def test_client_times_out_against_dead_address(self):
        with ControlClient(timeout=0.05, retries=1) as client:
            # A bound-then-closed socket: nothing listens there.
            import socket as socket_module

            probe = socket_module.socket(
                socket_module.AF_INET, socket_module.SOCK_DGRAM
            )
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()
            probe.close()
            with pytest.raises(ControlError):
                client.request((dead[0], dead[1]), "ping")
            assert client.try_request((dead[0], dead[1]), "ping") is None
