"""Cluster harness smoke tests: real OS processes over real UDP.

These boot actual ``python -m repro node`` / ``repro rendezvous``
subprocesses -- the same path the CI ``cluster-smoke`` job and the
``repro cluster`` CLI take -- so they are the slowest tests in the
suite (a few seconds each).
"""

import pytest

from repro.net.cluster import ClusterConfig, run_cluster


def quiet(_message):
    """Swallow harness progress lines in test output."""


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=1, joins=1)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, joins=4)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, joins=0)


class TestClusterSmoke:
    def test_multiprocess_concurrent_joins(self):
        report = run_cluster(
            ClusterConfig(
                nodes=4, joins=2, base=4, num_digits=4,
                converge_timeout=30.0,
            ),
            log=quiet,
        )
        assert report["ok"], report
        assert report["consistency"]["consistent"]
        assert report["all_in_system"]
        assert report["theorem3"]["ok"]
        bound = report["theorem3"]["bound"]
        assert bound == 5  # d + 1 with d = 4
        assert all(
            entry["count"] <= bound
            for entry in report["theorem3"]["per_node"]
        )

    def test_multiprocess_telemetry_merge(self, tmp_path):
        out_dir = str(tmp_path / "telemetry")
        report = run_cluster(
            ClusterConfig(
                nodes=4, joins=2, base=4, num_digits=4,
                converge_timeout=30.0, telemetry_dir=out_dir,
            ),
            log=quiet,
        )
        assert report["ok"], report
        telemetry = report["telemetry"]
        assert telemetry["complete"], telemetry
        assert telemetry["daemons_pulled"] == 4
        assert telemetry["causal_ok"], telemetry["causal_problems"]
        assert telemetry["records"] > 0
        # One validated join tree per joining node -- the sequential
        # base-network join plus both concurrent joiners.
        assert len(telemetry["join_trees"]) == 3
        for tree in telemetry["join_trees"].values():
            assert tree["messages"] >= 2
            assert tree["critical_path"][0]["type"] == "CpRstMsg"
        # Per-daemon clock sync converged to sub-second offsets on
        # loopback.
        for clock in telemetry["clocks"]:
            assert abs(clock["offset_ms"]) < 1000.0
        # The merged artifacts exist and the report parses.
        import json
        import os

        assert os.path.exists(telemetry["trace_file"])
        with open(telemetry["report_file"]) as handle:
            run_report = json.load(handle)
        assert run_report["causality"]["problems"] == []
        assert {"summary", "lifecycles", "causality", "theorem3"} <= set(
            run_report
        )
        # Wire counters surfaced through status into the report.
        assert "clean_wire" in report

    def test_multiprocess_joins_with_loss(self):
        report = run_cluster(
            ClusterConfig(
                nodes=3, joins=1, base=4, num_digits=4,
                loss=0.05, fault_seed=3, converge_timeout=45.0,
            ),
            log=quiet,
        )
        assert report["ok"], report
        assert report["loss"] == 0.05
