"""Cluster harness smoke tests: real OS processes over real UDP.

These boot actual ``python -m repro node`` / ``repro rendezvous``
subprocesses -- the same path the CI ``cluster-smoke`` job and the
``repro cluster`` CLI take -- so they are the slowest tests in the
suite (a few seconds each).
"""

import pytest

from repro.net.cluster import ClusterConfig, run_cluster


def quiet(_message):
    """Swallow harness progress lines in test output."""


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=1, joins=1)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, joins=4)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, joins=0)


class TestClusterSmoke:
    def test_multiprocess_concurrent_joins(self):
        report = run_cluster(
            ClusterConfig(
                nodes=4, joins=2, base=4, num_digits=4,
                converge_timeout=30.0,
            ),
            log=quiet,
        )
        assert report["ok"], report
        assert report["consistency"]["consistent"]
        assert report["all_in_system"]
        assert report["theorem3"]["ok"]
        bound = report["theorem3"]["bound"]
        assert bound == 5  # d + 1 with d = 4
        assert all(
            entry["count"] <= bound
            for entry in report["theorem3"]["per_node"]
        )

    def test_multiprocess_joins_with_loss(self):
        report = run_cluster(
            ClusterConfig(
                nodes=3, joins=1, base=4, num_digits=4,
                loss=0.05, fault_seed=3, converge_timeout=45.0,
            ),
            log=quiet,
        )
        assert report["ok"], report
        assert report["loss"] == 0.05
