"""DatagramTransport tests: the protocol over real loopback UDP.

These run the unmodified :class:`~repro.protocol.node.ProtocolNode`
state machine over kernel sockets -- including the wire-adversity
acceptance scenario: a ``JoinNotiMsg`` dropped at the UDP layer must
be recovered by the retransmission (recovery) timer, and the network
must still converge to Definition 3.8 consistency.
"""

import pytest

from repro.consistency.checker import check_consistency
from repro.ids.idspace import IdSpace
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultPlan
from repro.protocol.messages import JoinWaitMsg
from repro.protocol.status import NodeStatus
from repro.runtime.realtime import AsyncioRuntime

from tests.net.conftest import TEST_TIME_SCALE, LoopbackNet

SPACE = IdSpace(4, 4)


class TestTransportBasics:
    def test_open_resolves_port_zero(self):
        runtime = AsyncioRuntime(time_scale=TEST_TIME_SCALE)
        transport = DatagramTransport(runtime, ("127.0.0.1", 0))
        try:
            host, port = transport.open()
            assert host == "127.0.0.1"
            assert port != 0
        finally:
            transport.close()
            runtime.close()

    def test_one_node_per_transport(self):
        with LoopbackNet(1) as net:
            transport = net.transports[0]
            with pytest.raises(ValueError):
                transport.register(net.nodes[0])

    def test_raw_message_crosses_the_wire(self):
        with LoopbackNet(2) as net:
            received = []
            net.nodes[1].handles(JoinWaitMsg, received.append)
            message = JoinWaitMsg(net.ids[0])
            net.runtime.schedule(
                0.0, lambda: net.transports[0].send(net.ids[1], message)
            )
            net.run(wall_budget=10.0)
            assert len(received) == 1
            assert received[0].sender == net.ids[0]
            assert net.transports[0].counters["acks_received"] == 1

    def test_malformed_datagram_is_counted_not_fatal(self):
        with LoopbackNet(2) as net:
            target = net.transports[1]
            sock_addr = target.local_addr

            def blast():
                net.transports[0]._endpoint.sendto(b"garbage", sock_addr)

            net.runtime.schedule(0.0, blast)
            # A follow-up real message proves the endpoint survived.
            message = JoinWaitMsg(net.ids[0])
            received = []
            net.nodes[1].handles(JoinWaitMsg, received.append)
            net.runtime.schedule(
                5.0, lambda: net.transports[0].send(net.ids[1], message)
            )
            net.run(wall_budget=10.0)
            assert target.counters["malformed"] == 1
            assert len(received) == 1


class TestJoinsOverUdp:
    def test_single_join_over_loopback(self):
        with LoopbackNet(2) as net:
            net.join(1)
            net.run(wall_budget=20.0)
            assert net.nodes[1].status is NodeStatus.IN_SYSTEM
            assert check_consistency(net.tables()).consistent

    def test_concurrent_joins_over_loopback(self):
        with LoopbackNet(5) as net:
            for index in range(1, 5):
                net.join(index)
            net.run(wall_budget=40.0)
            assert all(
                node.status is NodeStatus.IN_SYSTEM for node in net.nodes
            )
            assert check_consistency(net.tables()).consistent


class TestWireAdversity:
    """The acceptance scenario: loss at the UDP layer, recovery by
    retransmission timer, convergence to Definition 3.8."""

    def test_dropped_join_noti_recovers_via_retransmit_timer(self):
        # Node 2 joins with its first outgoing JoinNotiMsg eaten by
        # the wire; node 1 joins cleanly first to give it someone to
        # notify.
        plan = FaultPlan(drop_first={"JoinNotiMsg": 1})
        with LoopbackNet(3, fault_plans={2: plan}) as net:
            net.join(1)
            net.run(wall_budget=20.0)
            net.join(2)
            net.run(wall_budget=30.0)

            joiner = net.transports[2]
            assert joiner.faults.dropped >= 1, "the drop must have happened"
            assert joiner.counters["retransmits"] >= 1, (
                "recovery timer must have fired and retransmitted"
            )
            assert joiner.counters["gave_up"] == 0
            assert all(
                node.status is NodeStatus.IN_SYSTEM for node in net.nodes
            )
            report = check_consistency(net.tables())
            assert report.consistent, report.violations

    def test_random_loss_still_converges(self):
        plans = {
            index: FaultPlan(loss=0.10, seed=index + 1)
            for index in range(4)
        }
        with LoopbackNet(4, fault_plans=plans) as net:
            for index in range(1, 4):
                net.join(index)
            net.run(wall_budget=60.0)
            assert all(
                node.status is NodeStatus.IN_SYSTEM for node in net.nodes
            )
            assert check_consistency(net.tables()).consistent
            total_dropped = sum(
                t.faults.dropped for t in net.transports
            )
            assert total_dropped > 0, "loss plan should have bitten"

    def test_duplicates_are_suppressed(self):
        plans = {0: FaultPlan(duplicate=1.0)}
        with LoopbackNet(2, fault_plans=plans) as net:
            received = []
            net.nodes[1].handles(JoinWaitMsg, received.append)
            message = JoinWaitMsg(net.ids[0])
            net.runtime.schedule(
                0.0, lambda: net.transports[0].send(net.ids[1], message)
            )
            net.run(wall_budget=10.0)
            assert len(received) == 1, "duplicate delivered twice"
            assert (
                net.transports[1].counters["duplicates_suppressed"] >= 1
            )


class TestAddressLearning:
    def test_receiver_learns_sender_address_from_datagram(self):
        with LoopbackNet(2) as net:
            # Receiver does NOT know the sender a priori.
            del net.transports[1].peers[net.ids[0]]
            received = []
            net.nodes[1].handles(JoinWaitMsg, received.append)
            net.runtime.schedule(
                0.0,
                lambda: net.transports[0].send(
                    net.ids[1], JoinWaitMsg(net.ids[0])
                ),
            )
            net.run(wall_budget=10.0)
            assert len(received) == 1
            assert (
                net.transports[1].peers[net.ids[0]]
                == net.transports[0].local_addr
            )

    def test_send_without_address_or_rendezvous_drops(self):
        with LoopbackNet(2) as net:
            sender = net.transports[0]
            del sender.peers[net.ids[1]]
            net.runtime.schedule(
                0.0,
                lambda: sender.send(net.ids[1], JoinWaitMsg(net.ids[0])),
            )
            net.run(wall_budget=10.0)
            assert sender.counters["resolve_failures"] == 1
            assert sender.stats.total_dropped == 1
