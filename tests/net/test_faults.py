"""Fault injector tests: plans, budgets, reproducibility."""

import pytest

from repro.net.faults import FaultInjector, FaultPlan


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate=-0.1)

    def test_active(self):
        assert not FaultPlan().active
        assert FaultPlan(loss=0.1).active
        assert FaultPlan(drop_first={"JoinNotiMsg": 1}).active
        assert FaultPlan(latency=2.0).active

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(latency=-1.0)


class TestFaultInjector:
    def test_clean_plan_passes_everything(self):
        injector = FaultInjector(FaultPlan())
        assert injector.transmissions("JoinNotiMsg") == [0.0]
        assert injector.transmissions(None) == [0.0]
        assert injector.dropped == 0

    def test_drop_first_budget_is_per_type_and_finite(self):
        injector = FaultInjector(FaultPlan(drop_first={"JoinNotiMsg": 2}))
        assert injector.transmissions("JoinNotiMsg") == []
        assert injector.transmissions("CpRstMsg") == [0.0]  # other types pass
        assert injector.transmissions("JoinNotiMsg") == []
        # Budget exhausted: the third one goes through.
        assert injector.transmissions("JoinNotiMsg") == [0.0]
        assert injector.dropped == 2

    def test_acks_bypass_targeted_drops(self):
        injector = FaultInjector(FaultPlan(drop_first={"JoinNotiMsg": 1}))
        assert injector.transmissions(None) == [0.0]

    def test_full_loss_drops_all(self):
        injector = FaultInjector(FaultPlan(loss=1.0))
        for _ in range(10):
            assert injector.transmissions("PingMsg") == []
        assert injector.dropped == 10

    def test_duplicate_produces_two_sends(self):
        injector = FaultInjector(FaultPlan(duplicate=1.0))
        sends = injector.transmissions("PingMsg")
        assert len(sends) == 2
        assert sends[0] == 0.0
        assert injector.duplicated == 1

    def test_reorder_holds_datagram_back(self):
        injector = FaultInjector(FaultPlan(reorder=1.0, reorder_delay=30.0))
        (delay,) = injector.transmissions("PingMsg")
        assert delay > 0.0
        assert injector.reordered == 1

    def test_latency_delays_every_transmission(self):
        # Deterministic (no RNG draw): LAN/WAN emulation, acks included.
        injector = FaultInjector(FaultPlan(latency=2.5))
        assert injector.transmissions("PingMsg") == [2.5]
        assert injector.transmissions(None) == [2.5]
        assert injector.dropped == 0
        # Reorder delay stacks on top of the base latency.
        stacked = FaultInjector(
            FaultPlan(latency=2.5, reorder=1.0, reorder_delay=30.0)
        )
        (delay,) = stacked.transmissions("PingMsg")
        assert delay > 2.5

    def test_seed_reproducibility(self):
        plan = FaultPlan(loss=0.4, duplicate=0.2, seed=99)
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append(
                [tuple(injector.transmissions("M")) for _ in range(50)]
            )
        assert runs[0] == runs[1]
