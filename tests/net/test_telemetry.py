"""Distributed telemetry over real UDP sockets.

The loopback cluster gives every transport its own tracer/registry --
one per would-be process -- so these tests exercise the true
multi-tracer geometry: causal ids crossing the wire, per-daemon
traces merged onto one axis, and the analysis tier consuming the
merged stream exactly as it consumes a simulator trace.
"""

from repro.consistency.checker import check_consistency
from repro.obs.causality import CausalForest
from repro.obs.instrument import Observability
from repro.obs.remote import merge_traces
from repro.obs.report import RunReport
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.network_init import single_node_table

from tests.net.conftest import LoopbackNet


def _merged_forest(net):
    spans, events = merge_traces(net.daemon_traces())
    return spans, events, CausalForest.from_event_records(events)


class TestDistributedCausality:
    def test_concurrent_joins_build_validated_join_trees(self):
        with LoopbackNet(4, telemetry=True) as net:
            for index in range(1, 4):
                net.join(index)
            net.run()
            tables = net.tables()
            assert check_consistency(tables).consistent
            spans, events, forest = _merged_forest(net)
        assert forest.validate() == []
        trees = forest.join_trees()
        joiners = {str(net_id) for net_id in net.ids[1:]}
        assert set(trees) == joiners
        for joiner, tree in trees.items():
            root = tree[0]
            assert root.type == "CpRstMsg"
            assert root.src == joiner
            # The copy walk progressed: root has causal descendants,
            # and the cross-process deliver was matched to the send.
            assert len(tree) >= 2
            assert root.deliver_time is not None
            path = forest.critical_path(root.msg_id)
            assert path[0] is root

    def test_message_ids_are_cluster_unique_strings(self):
        with LoopbackNet(3, telemetry=True) as net:
            net.join(1)
            net.join(2)
            net.run()
            _, _, forest = _merged_forest(net)
        assert len(forest) > 0
        for msg_id, record in forest.records.items():
            assert isinstance(msg_id, str) and "#" in msg_id
            # Stamped by its sender: the prefix is the sender's id.
            assert msg_id.split("#")[0] == record.src

    def test_cause_propagates_across_the_wire(self):
        # A reply's parent must be a message recorded by the *other*
        # endpoint -- the defining property of distributed stamping.
        with LoopbackNet(2, telemetry=True) as net:
            net.join(1)
            net.run()
            _, _, forest = _merged_forest(net)
        crossed = [
            r for r in forest.records.values()
            if r.parent_id is not None
            and forest.records[r.parent_id].src != r.src
        ]
        assert crossed, "no cross-process causal edges recorded"

    def test_trace_off_stamps_nothing(self):
        with LoopbackNet(2, telemetry=False) as net:
            net.join(1)
            net.run()
            assert net.daemon_traces() == []
            assert net.transports[1].stats.total_messages > 0


class TestReportParity:
    def test_merged_report_schema_matches_simulator(self):
        # Simulator run: same protocol, one tracer, virtual time.
        obs = Observability.tracing()
        space = None
        with LoopbackNet(4, telemetry=True) as net:
            space = net.space
            sim = JoinProtocolNetwork(space, obs=obs, seed=3)
            sim.add_s_node(net.ids[0], single_node_table(net.ids[0]))
            for node_id in net.ids[1:]:
                sim.start_join(node_id, gateway=net.ids[0])
            sim.run()
            sim_dict = RunReport.from_tracer(obs.tracer).to_json_dict()

            for index in range(1, 4):
                net.join(index)
            net.run()
            spans, events = merge_traces(net.daemon_traces())
        net_dict = RunReport(spans, events).to_json_dict()
        assert set(net_dict) == set(sim_dict)
        assert set(net_dict["summary"]) == set(sim_dict["summary"])
        assert set(net_dict["theorem3"]) == set(sim_dict["theorem3"])
        assert set(net_dict["causality"]) == set(sim_dict["causality"])
        assert set(net_dict["lifecycles"]) == set(sim_dict["lifecycles"])
        # Both tiers' lifecycle reconstruction sees the same joiners.
        assert (
            {lc["node"] for lc in net_dict["lifecycles"]["joins"]}
            == {lc["node"] for lc in sim_dict["lifecycles"]["joins"]}
        )
        assert net_dict["lifecycles"]["completed"] == 3
        assert net_dict["lifecycles"]["illegal_transitions"] == []
        assert net_dict["lifecycles"]["stalled"] == []
        assert net_dict["causality"]["problems"] == []
        assert net_dict["theorem3"]["passed"] is True


class TestSendAccountingParity:
    """S1: wire retransmissions must never leak into the protocol's
    per-type send counts -- on a clean wire the datagram transport
    reports byte-for-byte the same message accounting as the in-memory
    transport for the same workload."""

    def test_clean_wire_matches_in_memory_counts(self):
        with LoopbackNet(4, telemetry=True) as net:
            # Sequential joins (quiesce between), so both tiers see
            # the identical deterministic workload.
            for index in range(1, 4):
                net.join(index)
                net.run()
            wire_counts = {}
            for transport in net.transports:
                for name, value in transport.stats.count_by_type.items():
                    wire_counts[name] = wire_counts.get(name, 0) + value
            retransmitted = sum(
                t.stats.total_retransmitted for t in net.transports
            )
            retransmit_wire = sum(
                t.counters["retransmits"] for t in net.transports
            )
            ids = list(net.ids)
            space = net.space

        sim = JoinProtocolNetwork(space, seed=5)
        sim.add_s_node(ids[0], single_node_table(ids[0]))
        for node_id in ids[1:]:
            sim.start_join(node_id, gateway=ids[0], at=sim.runtime.now)
            sim.run()
        sim_counts = dict(sim.stats.count_by_type)

        assert retransmitted == 0
        assert retransmit_wire == 0
        assert wire_counts == sim_counts

    def test_retransmit_counter_is_separate_from_sends(self):
        from repro.ids.idspace import IdSpace
        from repro.network.stats import MessageStats
        from repro.protocol.messages import CpRstMsg

        stats = MessageStats()
        message = CpRstMsg(IdSpace(4, 4).from_string("0123"))
        stats.on_send(message)
        stats.on_retransmit(message)
        stats.on_retransmit(message)
        assert stats.count_by_type["CpRstMsg"] == 1
        assert stats.retransmitted_by_type["CpRstMsg"] == 2
        assert stats.total_messages == 1
        assert stats.total_retransmitted == 2


class TestWireMetrics:
    def test_transport_metrics_recorded(self):
        with LoopbackNet(3, telemetry=True) as net:
            net.join(1)
            net.join(2)
            net.run()
            snapshots = [
                bundle.metrics.snapshot() for bundle in net.telemetries
            ]
        merged = {}
        for snap in snapshots:
            for key, value in snap.items():
                merged[key] = merged.get(key, 0) + value
        # Ack RTT histograms observed for every peer actually talked to.
        rtt_counts = [
            key for key in merged if key.startswith("net_ack_rtt_ms")
        ]
        assert rtt_counts, f"no RTT histograms in {sorted(merged)[:10]}"
        assert merged.get("net_retransmits", 0) == 0
        assert merged.get("net_gave_up", 0) == 0
        # Everything acked at quiescence.
        assert merged.get("net_unacked_depth", 0) == 0
