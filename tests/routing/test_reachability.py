"""Unit tests for reachability (Definition 3.7)."""

import random

from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.reachability import is_reachable, reachability_path


def network(count=20, seed=0):
    space = IdSpace(4, 4)
    ids = space.random_unique_ids(count, random.Random(seed))
    tables = build_consistent_tables(ids, random.Random(seed))
    return space, ids, tables


class TestReachability:
    def test_reachable_in_consistent_network(self):
        space, ids, tables = network()
        provider = lambda n: tables[n]  # noqa: E731
        assert is_reachable(provider, ids[0], ids[1])

    def test_path_is_valid_neighbor_sequence(self):
        space, ids, tables = network(seed=2)
        provider = lambda n: tables[n]  # noqa: E731
        path = reachability_path(provider, ids[0], ids[7])
        assert path is not None
        assert path[0] == ids[0] and path[-1] == ids[7]
        for current, nxt in zip(path, path[1:]):
            level = current.csuf_len(ids[7])
            assert tables[current].get(level, ids[7].digit(level)) == nxt

    def test_unreachable_returns_none(self):
        space = IdSpace(4, 4)
        a, b = space.from_string("0000"), space.from_string("1111")
        tables = build_consistent_tables([a])
        tables[b] = build_consistent_tables([b])[b]
        provider = lambda n: tables[n]  # noqa: E731
        assert reachability_path(provider, a, b) is None
        assert not is_reachable(provider, a, b)

    def test_self_reachable(self):
        space, ids, tables = network()
        provider = lambda n: tables[n]  # noqa: E731
        assert is_reachable(provider, ids[0], ids[0])
