"""Unit tests for the neighbor table."""

import pytest

from repro.ids.idspace import IdSpace
from repro.routing.entry import NeighborState
from repro.routing.table import (
    EntryConflictError,
    NeighborTable,
    format_table,
)

SPACE = IdSpace(4, 5)
OWNER = SPACE.from_string("21233")


def make_table():
    return NeighborTable(OWNER)


class TestEntryAccess:
    def test_empty_initially(self):
        table = make_table()
        assert table.get(0, 0) is None
        assert table.state(0, 0) is None
        assert table.is_empty(0, 0)
        assert len(table) == 0

    def test_set_and_get(self):
        table = make_table()
        neighbor = SPACE.from_string("01100")
        table.set_entry(0, 0, neighbor, NeighborState.S)
        assert table.get(0, 0) == neighbor
        assert table.state(0, 0) is NeighborState.S
        assert not table.is_empty(0, 0)

    def test_position_bounds(self):
        table = make_table()
        neighbor = SPACE.from_string("01100")
        with pytest.raises(ValueError):
            table.set_entry(5, 0, neighbor, NeighborState.S)
        with pytest.raises(ValueError):
            table.set_entry(0, 4, neighbor, NeighborState.S)

    def test_suffix_constraint_enforced(self):
        table = make_table()
        # (1, 0)-entry requires suffix "03"; 01100 has suffix "00".
        with pytest.raises(ValueError):
            table.set_entry(1, 0, SPACE.from_string("01100"), NeighborState.S)

    def test_valid_higher_level_entry(self):
        table = make_table()
        # (2, 0)-entry requires suffix "033".
        table.set_entry(2, 0, SPACE.from_string("31033"), NeighborState.T)
        assert table.get(2, 0) == SPACE.from_string("31033")

    def test_conflict_on_overwrite(self):
        table = make_table()
        table.set_entry(0, 0, SPACE.from_string("01100"), NeighborState.S)
        with pytest.raises(EntryConflictError):
            table.set_entry(0, 0, SPACE.from_string("22200"), NeighborState.S)

    def test_idempotent_refill_updates_state(self):
        table = make_table()
        neighbor = SPACE.from_string("01100")
        table.set_entry(0, 0, neighbor, NeighborState.T)
        table.set_entry(0, 0, neighbor, NeighborState.S)
        assert table.state(0, 0) is NeighborState.S

    def test_set_state(self):
        table = make_table()
        table.set_entry(0, 0, SPACE.from_string("01100"), NeighborState.T)
        table.set_state(0, 0, NeighborState.S)
        assert table.state(0, 0) is NeighborState.S

    def test_set_state_on_empty_raises(self):
        with pytest.raises(KeyError):
            make_table().set_state(0, 0, NeighborState.S)

    def test_self_entries_at_every_level(self):
        table = make_table()
        for level in range(OWNER.num_digits):
            table.set_entry(
                level, OWNER.digit(level), OWNER, NeighborState.S
            )
        assert table.filled_count() == OWNER.num_digits


class TestReverseNeighbors:
    def test_add_and_query(self):
        table = make_table()
        other = SPACE.from_string("21230")
        table.add_reverse(0, 3, other)
        assert table.reverse_neighbors(0, 3) == {other}
        assert table.reverse_neighbors(0, 1) == set()

    def test_all_reverse_excludes_owner(self):
        table = make_table()
        other = SPACE.from_string("21230")
        table.add_reverse(0, 3, other)
        table.add_reverse(1, 3, OWNER)
        assert table.all_reverse_neighbors() == {other}

    def test_add_reverse_idempotent(self):
        table = make_table()
        other = SPACE.from_string("21230")
        table.add_reverse(0, 3, other)
        table.add_reverse(0, 3, other)
        assert len(table.reverse_neighbors(0, 3)) == 1

    def test_reverse_returns_copy(self):
        table = make_table()
        other = SPACE.from_string("21230")
        table.add_reverse(0, 3, other)
        table.reverse_neighbors(0, 3).clear()
        assert table.reverse_neighbors(0, 3) == {other}


class TestIterationAndSnapshots:
    def setup_method(self):
        self.table = make_table()
        self.table.set_entry(0, 0, SPACE.from_string("01100"), NeighborState.S)
        self.table.set_entry(0, 3, OWNER, NeighborState.S)
        self.table.set_entry(2, 0, SPACE.from_string("31033"), NeighborState.T)

    def test_entries_sorted_by_position(self):
        positions = [(e.level, e.digit) for e in self.table.entries()]
        assert positions == sorted(positions)

    def test_entries_at_level(self):
        level0 = self.table.entries_at_level(0)
        assert [e.digit for e in level0] == [0, 3]
        assert self.table.entries_at_level(4) == []

    def test_distinct_neighbors(self):
        assert self.table.distinct_neighbors() == {
            SPACE.from_string("01100"),
            OWNER,
            SPACE.from_string("31033"),
        }

    def test_snapshot_is_immutable_copy(self):
        snapshot = self.table.snapshot()
        assert len(snapshot) == 3
        self.table.set_entry(
            1, 3, SPACE.from_string("21233"), NeighborState.S
        )
        assert len(snapshot) == 3

    def test_snapshot_levels_filters(self):
        snapshot = self.table.snapshot_levels(1, 4)
        assert {e.level for e in snapshot} == {2}

    def test_format_table_mentions_entries(self):
        rendering = format_table(self.table)
        assert "21233" in rendering
        assert "01100" in rendering
        assert "level 0" in rendering
