"""Backup neighbors and fault-tolerant routing (footnote 6)."""

import random

import pytest

from repro.recovery import fail_nodes
from repro.routing.backups import (
    BackupStore,
    harvest_backups,
    route_fault_tolerant,
)
from repro.routing.router import route

from tests.conftest import build_network, make_ids, run_joins

SPACE_ARGS = (4, 4)


class TestBackupStore:
    def setup_method(self):
        space, ids = make_ids(4, 4, 1, seed=0)
        self.owner = space.from_string("0123")
        self.space = space
        self.store = BackupStore(self.owner, capacity=2)

    def test_offer_and_get(self):
        node = self.space.from_string("1123")
        assert self.store.offer(2, 1, node)
        assert self.store.get(2, 1) == [node]

    def test_rejects_owner(self):
        assert not self.store.offer(2, 1, self.owner)

    def test_rejects_wrong_suffix(self):
        assert not self.store.offer(2, 1, self.space.from_string("1023"))

    def test_capacity_cap(self):
        assert self.store.offer(2, 1, self.space.from_string("1123"))
        assert self.store.offer(2, 1, self.space.from_string("2123"))
        assert not self.store.offer(2, 1, self.space.from_string("3123"))
        assert self.store.total() == 2

    def test_duplicate_rejected(self):
        node = self.space.from_string("1123")
        assert self.store.offer(2, 1, node)
        assert not self.store.offer(2, 1, node)

    def test_discard(self):
        node = self.space.from_string("1123")
        self.store.offer(2, 1, node)
        self.store.discard(node)
        assert self.store.get(2, 1) == []
        assert self.store.positions() == []


class TestInProtocolCollection:
    def test_joins_accumulate_backups(self):
        """Concurrent dependent joins contest entries, so *someone*
        ends up with backups."""
        space, ids = make_ids(2, 7, 50, seed=3)
        net = build_network(space, ids[:15], seed=3)
        run_joins(net, ids[15:])
        total = sum(
            node.backups.total() for node in net.nodes.values()
        )
        assert total > 0
        # Every stored backup satisfies its position's suffix rule
        # (enforced by offer(); re-check as an invariant).
        for node in net.nodes.values():
            for level, digit in node.backups.positions():
                for backup in node.backups.get(level, digit):
                    assert backup.csuf_len(node.node_id) >= level
                    assert backup.digit(level) == digit


class TestFaultTolerantRouting:
    def make_failed_network(self, seed=0, kill=8):
        space, ids = make_ids(4, 4, 60, seed=seed)
        net = build_network(space, ids, seed=seed)
        harvest_backups(net)
        rng = random.Random(seed + 77)
        victims = set(rng.sample(ids, kill))
        fail_nodes(net, victims)
        live = set(net.member_ids())
        tables = {nid: net.departed[nid].table for nid in victims}
        tables.update(net.tables())
        stores = {
            nid: (net.nodes[nid] if nid in net.nodes else net.departed[nid]).backups
            for nid in list(net.nodes) + list(victims)
        }
        provider = lambda nid: tables[nid]  # noqa: E731
        backups = lambda nid: stores[nid]  # noqa: E731
        return net, live, provider, backups, victims

    def test_routes_around_dead_primaries(self):
        net, live, provider, backups, victims = self.make_failed_network(
            seed=1
        )
        rng = random.Random(5)
        members = sorted(live, key=lambda n: n.digits)
        primary_failures = 0
        ft_failures = 0
        for _ in range(150):
            source, target = rng.sample(members, 2)
            plain = route(provider, source, target)
            if not plain.success or any(
                hop in victims for hop in plain.path
            ):
                primary_failures += 1
            ft = route_fault_tolerant(
                provider, backups, live, source, target
            )
            if not ft.success:
                ft_failures += 1
            else:
                assert all(hop in live for hop in ft.path)
        assert primary_failures > 0  # failures actually bite
        assert ft_failures < primary_failures  # backups help

    def test_path_stays_suffix_monotone(self):
        net, live, provider, backups, victims = self.make_failed_network(
            seed=2
        )
        rng = random.Random(6)
        members = sorted(live, key=lambda n: n.digits)
        for _ in range(50):
            source, target = rng.sample(members, 2)
            result = route_fault_tolerant(
                provider, backups, live, source, target
            )
            if result.success:
                matches = [n.csuf_len(target) for n in result.path]
                assert matches == sorted(matches)

    def test_healthy_network_routes_unchanged(self):
        space, ids = make_ids(4, 4, 30, seed=9)
        net = build_network(space, ids, seed=9)
        harvest_backups(net)
        tables = net.tables()
        provider = lambda nid: tables[nid]  # noqa: E731
        backups = lambda nid: net.node(nid).backups  # noqa: E731
        live = set(ids)
        for source in ids[:8]:
            for target in ids[:8]:
                if source == target:
                    continue
                result = route_fault_tolerant(
                    provider, backups, live, source, target
                )
                assert result.success


class TestHarvest:
    def test_harvest_fills_eligible_positions(self):
        space, ids = make_ids(4, 4, 40, seed=11)
        net = build_network(space, ids, seed=11)
        harvest_backups(net, capacity=2)
        total = sum(node.backups.total() for node in net.nodes.values())
        assert total > 0
        for node in net.nodes.values():
            for level, digit in node.backups.positions():
                primary = node.table.get(level, digit)
                for backup in node.backups.get(level, digit):
                    assert backup != primary
