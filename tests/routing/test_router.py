"""Unit tests for the suffix-matching routing scheme."""

import random

from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import next_hop, route


def oracle_network(base, num_digits, count, seed=0):
    space = IdSpace(base, num_digits)
    ids = space.random_unique_ids(count, random.Random(seed))
    tables = build_consistent_tables(ids, random.Random(seed + 1))
    return space, ids, tables


class TestNextHop:
    def test_self_when_at_target(self):
        space, ids, tables = oracle_network(4, 4, 10)
        node = ids[0]
        assert next_hop(tables[node], node, node) == node

    def test_hop_extends_suffix_match(self):
        space, ids, tables = oracle_network(4, 4, 30, seed=2)
        src, dst = ids[0], ids[1]
        hop = next_hop(tables[src], src, dst)
        assert hop is not None
        assert hop.csuf_len(dst) > src.csuf_len(dst)

    def test_none_on_missing_entry(self):
        space = IdSpace(4, 4)
        ids = [space.from_string("0000"), space.from_string("1111")]
        tables = build_consistent_tables([ids[0]])
        # 1111 is not in the network, so 0000 has no (0,1)-entry.
        assert next_hop(tables[ids[0]], ids[0], ids[1]) is None


class TestRoute:
    def test_route_to_self(self):
        space, ids, tables = oracle_network(4, 4, 10)
        result = route(lambda n: tables[n], ids[0], ids[0])
        assert result.success
        assert result.hops == 0

    def test_all_pairs_reach_within_d_hops(self):
        space, ids, tables = oracle_network(4, 4, 25, seed=3)
        provider = lambda n: tables[n]  # noqa: E731
        for src in ids:
            for dst in ids:
                result = route(provider, src, dst)
                assert result.success, f"{src} -> {dst}"
                assert result.hops <= space.num_digits

    def test_path_starts_and_ends_correctly(self):
        space, ids, tables = oracle_network(8, 4, 40, seed=4)
        result = route(lambda n: tables[n], ids[0], ids[5])
        assert result.path[0] == ids[0]
        assert result.path[-1] == ids[5]

    def test_suffix_match_strictly_increases_along_path(self):
        space, ids, tables = oracle_network(8, 4, 40, seed=5)
        result = route(lambda n: tables[n], ids[3], ids[9])
        matches = [node.csuf_len(ids[9]) for node in result.path]
        assert all(b > a for a, b in zip(matches, matches[1:]))

    def test_failure_on_inconsistent_tables(self):
        space = IdSpace(4, 4)
        a = space.from_string("0000")
        b = space.from_string("1111")
        tables = build_consistent_tables([a, b])
        # Sabotage: route from a to an ID not in the network.
        ghost = space.from_string("2222")
        tables[ghost] = tables[a]
        result = route(lambda n: tables[n], a, ghost)
        assert not result.success
        assert result.failed_at == a

    def test_max_hops_cutoff(self):
        space, ids, tables = oracle_network(4, 4, 25, seed=6)
        # With max_hops=0 any non-trivial route fails immediately.
        src = ids[0]
        dst = next(i for i in ids if i != src)
        result = route(lambda n: tables[n], src, dst, max_hops=0)
        assert not result.success
        assert result.failed_at == src
