"""Unit tests for oracle table construction."""

import random

import pytest

from repro.consistency.checker import check_consistency
from repro.ids.idspace import IdSpace
from repro.routing.entry import NeighborState
from repro.routing.oracle import build_consistent_tables


class TestOracle:
    def test_single_node_network(self):
        space = IdSpace(4, 4)
        node = space.from_string("0123")
        tables = build_consistent_tables([node])
        table = tables[node]
        # Only self-pointers.
        assert table.distinct_neighbors() == {node}
        assert table.filled_count() == 4
        assert check_consistency(tables).consistent

    def test_consistency_for_random_networks(self):
        for seed in range(5):
            space = IdSpace(4, 4)
            ids = space.random_unique_ids(30, random.Random(seed))
            tables = build_consistent_tables(ids, random.Random(seed))
            report = check_consistency(tables)
            assert report.consistent, report.violations[:3]

    def test_deterministic_without_rng(self):
        space = IdSpace(4, 4)
        ids = space.random_unique_ids(20, random.Random(1))
        t1 = build_consistent_tables(ids)
        t2 = build_consistent_tables(ids)
        for node in ids:
            assert t1[node].snapshot() == t2[node].snapshot()

    def test_self_entries_point_to_owner_with_state_s(self):
        space = IdSpace(4, 4)
        ids = space.random_unique_ids(10, random.Random(2))
        tables = build_consistent_tables(ids)
        for node in ids:
            for level in range(space.num_digits):
                assert tables[node].get(level, node.digit(level)) == node
                assert (
                    tables[node].state(level, node.digit(level))
                    is NeighborState.S
                )

    def test_all_states_are_s(self):
        space = IdSpace(4, 4)
        ids = space.random_unique_ids(10, random.Random(3))
        tables = build_consistent_tables(ids, random.Random(3))
        for node in ids:
            for entry in tables[node].entries():
                assert entry.state is NeighborState.S

    def test_reverse_neighbors_match_forward_pointers(self):
        space = IdSpace(4, 4)
        ids = space.random_unique_ids(15, random.Random(4))
        tables = build_consistent_tables(ids, random.Random(4))
        for node in ids:
            for entry in tables[node].entries():
                if entry.node == node:
                    continue
                assert node in tables[entry.node].reverse_neighbors(
                    entry.level, entry.digit
                )

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            build_consistent_tables([])

    def test_rejects_duplicates(self):
        space = IdSpace(4, 4)
        node = space.from_string("0123")
        with pytest.raises(ValueError):
            build_consistent_tables([node, node])

    def test_rejects_mixed_id_spaces(self):
        a = IdSpace(4, 4).from_string("0123")
        b = IdSpace(8, 4).from_string("0123")
        with pytest.raises(ValueError):
            build_consistent_tables([a, b])

    def test_randomized_choice_uses_rng(self):
        space = IdSpace(2, 6)
        ids = space.random_unique_ids(40, random.Random(5))
        t1 = build_consistent_tables(ids, random.Random(1))
        t2 = build_consistent_tables(ids, random.Random(2))
        differs = any(
            t1[node].snapshot() != t2[node].snapshot() for node in ids
        )
        assert differs
