"""Object location (deterministic roots, directory service)."""

import random

import pytest

from repro.routing.location import ObjectDirectory, object_root
from repro.protocol.leave import leave_sequentially

from tests.conftest import build_network, make_ids, run_joins


def network(n=40, seed=0):
    space, ids = make_ids(16, 6, n, seed=seed)
    return space, ids, build_network(space, ids, seed=seed)


class TestObjectRoot:
    def test_origin_independent(self):
        space, ids, net = network(seed=1)
        tables = net.tables()
        provider = lambda nid: tables[nid]  # noqa: E731
        rng = random.Random(2)
        for _ in range(15):
            obj = space.from_int(rng.randrange(space.size))
            roots = {object_root(provider, o, obj) for o in ids[:10]}
            assert len(roots) == 1

    def test_raises_on_broken_tables(self):
        from repro.routing.table import NeighborTable

        space, ids, net = network(seed=2)
        tables = net.tables()
        # A node with an entirely empty table cannot even self-resolve.
        tables[ids[0]] = NeighborTable(ids[0])
        provider = lambda nid: tables[nid]  # noqa: E731
        with pytest.raises(RuntimeError):
            object_root(provider, ids[0], space.from_int(0))


class TestObjectDirectory:
    def test_publish_then_query_from_anywhere(self):
        space, ids, net = network(seed=3)
        directory = ObjectDirectory(net)
        rng = random.Random(3)
        names = [f"object-{i}" for i in range(10)]
        for name in names:
            directory.publish(rng.choice(ids), name)
        for name in names:
            holders = directory.query(rng.choice(ids), name)
            assert holders, name

    def test_publish_requires_live_member(self):
        space, ids, net = network(seed=4)
        directory = ObjectDirectory(net)
        ghost = space.from_int(
            next(
                v
                for v in range(space.size)
                if space.from_int(v) not in set(ids)
            )
        )
        with pytest.raises(ValueError):
            directory.publish(ghost, "x")

    def test_queries_survive_joins_after_republish(self):
        space, ids, net = network(n=30, seed=5)
        directory = ObjectDirectory(net)
        rng = random.Random(5)
        names = [f"track-{i}" for i in range(8)]
        for name in names:
            directory.publish(rng.choice(ids), name)
        joiners = space.random_unique_ids(10, rng, exclude=ids)
        run_joins(net, joiners)
        directory.republish_all()
        for name in names:
            assert directory.query(rng.choice(joiners), name)

    def test_republish_drops_departed_holders(self):
        space, ids, net = network(n=20, seed=6)
        directory = ObjectDirectory(net)
        holder = ids[0]
        directory.publish(holder, "doomed")
        leave_sequentially(net, [holder])
        directory.republish_all()
        origin = net.member_ids()[0]
        assert directory.query(origin, "doomed") == set()

    def test_hashing_deterministic(self):
        space, ids, net = network(seed=7)
        directory = ObjectDirectory(net)
        assert directory.object_id("a") == directory.object_id("a")
        assert directory.object_id("a") != directory.object_id("b")
