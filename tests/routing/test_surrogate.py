"""Tests for PRR surrogate routing (deterministic object roots)."""

import random

from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import surrogate_route


def network(base=4, num_digits=4, count=25, seed=0):
    space = IdSpace(base, num_digits)
    ids = space.random_unique_ids(count, random.Random(seed))
    tables = build_consistent_tables(ids, random.Random(seed + 1))
    return space, ids, tables


class TestSurrogateRouting:
    def test_existing_node_resolves_to_itself(self):
        space, ids, tables = network()
        provider = lambda n: tables[n]  # noqa: E731
        result = surrogate_route(provider, ids[0], ids[5])
        assert result.success
        assert result.path[-1] == ids[5]

    def test_origin_independence(self):
        """The defining property: every origin resolves the same root
        for a given object ID (P1, deterministic location)."""
        space, ids, tables = network(seed=3)
        provider = lambda n: tables[n]  # noqa: E731
        rng = random.Random(9)
        for _ in range(20):
            target = space.from_int(rng.randrange(space.size))
            roots = set()
            for origin in ids:
                result = surrogate_route(provider, origin, target)
                assert result.success
                roots.add(result.path[-1])
            assert len(roots) == 1, f"object {target}: roots {roots}"

    def test_root_is_member(self):
        space, ids, tables = network(seed=4)
        provider = lambda n: tables[n]  # noqa: E731
        members = set(ids)
        rng = random.Random(1)
        for _ in range(20):
            target = space.from_int(rng.randrange(space.size))
            result = surrogate_route(provider, ids[0], target)
            assert result.path[-1] in members

    def test_root_has_maximal_suffix_match(self):
        """The root matches the object in at least as many suffix
        digits as any other member (the PRR root property)."""
        space, ids, tables = network(seed=5)
        provider = lambda n: tables[n]  # noqa: E731
        rng = random.Random(2)
        for _ in range(20):
            target = space.from_int(rng.randrange(space.size))
            result = surrogate_route(provider, ids[0], target)
            root = result.path[-1]
            best = max(member.csuf_len(target) for member in ids)
            assert root.csuf_len(target) == best

    def test_single_node_network(self):
        space = IdSpace(4, 4)
        node = space.from_string("0123")
        tables = build_consistent_tables([node])
        provider = lambda n: tables[n]  # noqa: E731
        target = space.from_string("3210")
        result = surrogate_route(provider, node, target)
        assert result.success
        assert result.path == [node]

    def test_path_length_bounded(self):
        space, ids, tables = network(base=2, num_digits=8, count=50, seed=6)
        provider = lambda n: tables[n]  # noqa: E731
        rng = random.Random(3)
        for _ in range(20):
            target = space.from_int(rng.randrange(space.size))
            result = surrogate_route(provider, ids[0], target)
            assert result.success
            assert result.hops <= space.num_digits + 1

    def test_deterministic_after_joins(self):
        """Roots stay origin-independent on protocol-built tables."""
        from repro.protocol.join import JoinProtocolNetwork
        from repro.topology.attachment import UniformLatencyModel

        space = IdSpace(4, 4)
        rng = random.Random(7)
        ids = space.random_unique_ids(30, rng)
        net = JoinProtocolNetwork.from_oracle(
            space,
            ids[:20],
            latency_model=UniformLatencyModel(random.Random(8)),
            seed=7,
        )
        for joiner in ids[20:]:
            net.start_join(joiner, at=0.0)
        net.run()
        assert net.check_consistency().consistent
        tables = net.tables()
        provider = lambda n: tables[n]  # noqa: E731
        for _ in range(10):
            target = space.from_int(rng.randrange(space.size))
            roots = {
                surrogate_route(provider, origin, target).path[-1]
                for origin in ids
            }
            assert len(roots) == 1
