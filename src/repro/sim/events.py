"""Timestamped events and the event queue.

Events are ordered by ``(time, sequence)`` where the sequence number is
assigned at scheduling time; ties in virtual time therefore fire in
FIFO order, which keeps runs deterministic for a fixed seed.

The heap stores plain ``(time, seq, event)`` tuples rather than the
:class:`Event` objects themselves: tuple comparison runs in C, so the
``log n`` comparisons of every push/pop avoid a Python-level ``__lt__``
call each.  ``(time, seq)`` is unique per queue, so a comparison never
reaches the third element.  That uniqueness also lets the queue mix in
bare ``(time, seq, action, payload)`` 4-tuples for fire-and-forget
scheduling (:meth:`EventQueue.push_fire`): message deliveries dominate
a simulation's schedule volume and are never cancelled, so they skip
the :class:`Event` allocation entirely.

Two scale features, both off by default and invisible to pop order:

* **Compaction** (see :meth:`EventQueue.note_cancelled`) — cancellation
  is lazy, which is O(1), but a workload that schedules-and-cancels
  retry timers forever (every message send in the wire tier) leaves
  tombstones in the heap.  When dead entries outnumber live ones the
  queue rebuilds itself, so memory tracks the *live* event count.
* **Timer wheel** (``wheel_tick=...``) — bulk far-future scheduling
  (10⁵ join timers in :mod:`benchmarks.bench_scale`) costs O(log n)
  per push on a heap.  With a wheel, events at or beyond the current
  spill bound are appended O(1) to a coarse time-slot bucket, and each
  slot is heapified only when the clock reaches it.  The invariant is
  ``heap times < spill_bound <= bucket times``; within a slot the
  ``(time, seq)`` heap order is restored at spill time, so the pop
  sequence is identical to the plain heap's.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Sentinel stored in ``Event.queue`` once the event has been popped
#: (fired); ``None`` means the event was never enqueued.
_DONE = object()

#: Compaction threshold: never compact below this many dead entries
#: (small heaps are cheap to scan and rebuilds would churn).
_COMPACT_MIN_DEAD = 64


class Event:
    """A scheduled callback.

    ``fire()`` invokes the action unless the event has been cancelled.
    Cancellation is lazy: the entry stays in the heap and is skipped when
    popped (until the queue decides to compact).
    """

    __slots__ = ("time", "seq", "action", "payload", "cancelled", "queue")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., None],
        payload: Any = None,
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.payload = payload
        self.cancelled = False
        # None = never enqueued, an EventQueue = pending, _DONE = fired.
        self.queue: Any = None

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Idempotent, and a no-op once the event has left the queue
        (fired): ``cancelled`` only reports cancels that landed in
        time, per the :class:`~repro.runtime.interface.TimerHandle`
        contract.
        """
        if self.cancelled or self.queue is _DONE:
            return
        self.cancelled = True
        queue = self.queue
        if queue is not None:
            queue.note_cancelled()

    def fire(self) -> None:
        """Invoke the action unless the event was cancelled."""
        if self.cancelled:
            return
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)

    def __lt__(self, other: "Event") -> bool:
        # Retained for direct Event comparisons (the queue itself
        # compares (time, seq, event) tuples, which never get this far).
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


class EventQueue:
    """A stable min-heap of events, with optional timer-wheel overflow.

    ``wheel_tick`` (a virtual-time duration) enables the hashed wheel:
    events scheduled at or beyond the spill bound are bucketed by
    ``int(time // wheel_tick)`` instead of pushed onto the heap.
    ``None`` (the default) keeps the pure heap.
    """

    def __init__(self, wheel_tick: Optional[float] = None) -> None:
        if wheel_tick is not None and wheel_tick <= 0:
            raise ValueError(f"wheel_tick must be positive: {wheel_tick}")
        self._heap: List[Tuple[float, int, Event]] = []
        self._next_seq = 0
        # Live (non-cancelled) entry count, so __len__ is O(1); the
        # scheduler reports queue depth after every event, which was
        # quadratic when this required a heap scan.
        self._live = 0
        # Cancelled entries still sitting in the heap or a wheel slot.
        self._dead = 0
        self._wheel_tick = wheel_tick
        # slot index -> unordered list of (time, seq, event).
        self._slots: Dict[int, List[Tuple[float, int, Event]]] = {}
        # Times >= _spill_bound belong to the wheel; starts at 0 so the
        # first push seeds the wheel, and rises as slots spill into the
        # heap.  Unused (inf) without a wheel.
        self._spill_bound = 0.0 if wheel_tick is not None else float("inf")

    # -- scheduling ----------------------------------------------------

    def push(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at virtual time ``time``; returns the event."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, action, payload)
        event.queue = self
        if time < self._spill_bound:
            heappush(self._heap, (time, seq, event))
        else:
            slot = int(time // self._wheel_tick)
            bucket = self._slots.get(slot)
            if bucket is None:
                self._slots[slot] = [(time, seq, event)]
            else:
                bucket.append((time, seq, event))
        self._live += 1
        return event

    def push_fire(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> None:
        """Fire-and-forget schedule: no :class:`Event` handle, so the
        entry cannot be cancelled.  The transport uses this for message
        deliveries — the bulk of all scheduling — saving an object
        allocation per send."""
        seq = self._next_seq
        self._next_seq = seq + 1
        if time < self._spill_bound:
            heappush(self._heap, (time, seq, action, payload))
        else:
            slot = int(time // self._wheel_tick)
            bucket = self._slots.get(slot)
            if bucket is None:
                self._slots[slot] = [(time, seq, action, payload)]
            else:
                bucket.append((time, seq, action, payload))
        self._live += 1

    def push_many(
        self,
        entries: Iterable[Tuple[float, Callable[..., None], Any]],
    ) -> List[Event]:
        """Schedule a batch of ``(time, action, payload)`` entries at once.

        Sequence numbers are assigned in iteration order, so
        simultaneous entries fire in the order given — exactly as if
        pushed one by one.  When the batch rivals the heap in size the
        heap is rebuilt with one O(n) ``heapify`` instead of n
        O(log n) sifts; either way the pop order is identical, since
        a heap's pop sequence is determined by its contents and
        ``(time, seq)`` is a total order.
        """
        heap = self._heap
        spill_bound = self._spill_bound
        slots = self._slots
        tick = self._wheel_tick
        events: List[Event] = []
        seq = self._next_seq
        heaped = len(heap)
        for time, action, payload in entries:
            event = Event(time, seq, action, payload)
            event.queue = self
            events.append(event)
            if time < spill_bound:
                heap.append((time, seq, event))
            else:
                slot = int(time // tick)
                bucket = slots.get(slot)
                if bucket is None:
                    slots[slot] = [(time, seq, event)]
                else:
                    bucket.append((time, seq, event))
            seq += 1
        self._next_seq = seq
        self._live += len(events)
        added = len(heap) - heaped
        if added:
            if added > heaped // 2:
                heapify(heap)
            else:
                tail = heap[heaped:]
                del heap[heaped:]
                for entry in tail:
                    heappush(heap, entry)
        return events

    # -- draining ------------------------------------------------------

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the earliest live heap entry, or None.

        The raw-tuple fast path for run loops: returns either a
        ``(time, seq, event)`` or a fire-and-forget ``(time, seq,
        action, payload)`` entry (discriminate on ``len``), skipping
        cancelled events.
        """
        heap = self._heap
        while True:
            while heap:
                entry = heappop(heap)
                if len(entry) == 3:
                    event = entry[2]
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    event.queue = _DONE  # later cancel() is a no-op
                self._live -= 1
                return entry
            if not self._slots:
                return None
            self._spill_min_slot()

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None.

        Fire-and-forget entries come back boxed in an already-retired
        :class:`Event` (cancel is a no-op, matching their contract).
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        if len(entry) == 3:
            return entry[2]
        event = Event(entry[0], entry[1], entry[2], entry[3])
        event.queue = _DONE
        return event

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if empty."""
        heap = self._heap
        while True:
            while heap:
                head = heap[0]
                if len(head) == 3 and head[2].cancelled:
                    heappop(heap)
                    self._dead -= 1
                    continue
                return head[0]
            if not self._slots:
                return None
            self._spill_min_slot()

    def _spill_min_slot(self) -> None:
        """Move the earliest wheel slot into the heap.

        Called only when the heap is empty, so the spilled entries
        (all ``>= _spill_bound``) cannot land behind anything.  The
        slot's entries are heapified — O(slot size) — restoring exact
        ``(time, seq)`` order, and cancelled entries are dropped here
        rather than carried into the heap.
        """
        slot = min(self._slots)
        entries = self._slots.pop(slot)
        heap = self._heap  # empty, mutated in place: callers hold a ref
        for entry in entries:
            if len(entry) == 4 or not entry[2].cancelled:
                heap.append(entry)
        self._dead -= len(entries) - len(heap)
        heapify(heap)
        self._spill_bound = (slot + 1) * self._wheel_tick

    # -- cancellation / compaction -------------------------------------

    def note_cancelled(self) -> None:
        """Account a lazily-cancelled entry; compact when tombstones
        outnumber live events (and exceed :data:`_COMPACT_MIN_DEAD`),
        so a schedule-and-cancel workload keeps O(live) memory."""
        self._live -= 1
        dead = self._dead + 1
        if dead > _COMPACT_MIN_DEAD and dead > self._live:
            self._compact()
        else:
            self._dead = dead

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify.

        O(total entries), amortized O(1) per cancel by the doubling
        threshold in :meth:`note_cancelled`.  Relative order of the
        survivors is untouched — the heap's pop sequence depends only
        on its contents."""
        live_heap = [
            e for e in self._heap if len(e) == 4 or not e[2].cancelled
        ]
        heapify(live_heap)
        self._heap = live_heap
        for slot in list(self._slots):
            bucket = [
                e for e in self._slots[slot]
                if len(e) == 4 or not e[2].cancelled
            ]
            if bucket:
                self._slots[slot] = bucket
            else:
                del self._slots[slot]
        self._dead = 0

    # -- introspection -------------------------------------------------

    @property
    def dead_entries(self) -> int:
        """Cancelled entries currently tombstoned in the queue."""
        return self._dead

    @property
    def wheel_tick(self) -> Optional[float]:
        """The wheel's slot width, or ``None`` for the pure heap."""
        return self._wheel_tick

    @property
    def wheel_slots(self) -> int:
        """Number of non-empty wheel slots (0 without a wheel)."""
        return len(self._slots)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
