"""Timestamped events and the event queue.

Events are ordered by ``(time, sequence)`` where the sequence number is
assigned at scheduling time; ties in virtual time therefore fire in
FIFO order, which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional


#: Sentinel stored in ``Event.queue`` once the event has been popped
#: (fired); ``None`` means the event was never enqueued.
_DONE = object()


class Event:
    """A scheduled callback.

    ``fire()`` invokes the action unless the event has been cancelled.
    Cancellation is lazy: the entry stays in the heap and is skipped when
    popped.
    """

    __slots__ = ("time", "seq", "action", "payload", "cancelled", "queue")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., None],
        payload: Any = None,
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.payload = payload
        self.cancelled = False
        # None = never enqueued, an EventQueue = pending, _DONE = fired.
        self.queue: Any = None

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Idempotent, and a no-op once the event has left the queue
        (fired): ``cancelled`` only reports cancels that landed in
        time, per the :class:`~repro.runtime.interface.TimerHandle`
        contract.
        """
        if self.cancelled or self.queue is _DONE:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._live -= 1

    def fire(self) -> None:
        """Invoke the action unless the event was cancelled."""
        if self.cancelled:
            return
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)

    def __lt__(self, other: "Event") -> bool:
        # Equivalent to comparing (time, seq) tuples, without building
        # two tuples per heap comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


class EventQueue:
    """A stable min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        # Live (non-cancelled) entry count, so __len__ is O(1); the
        # scheduler reports queue depth after every event, which was
        # quadratic when this required a heap scan.
        self._live = 0

    def push(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at virtual time ``time``; returns the event."""
        event = Event(time, next(self._counter), action, payload)
        event.queue = self
        heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event.queue = _DONE  # later cancel() is a no-op
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
