"""The simulator: virtual clock plus run loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.interface import SchedulingError
from repro.sim.events import Event, EventQueue


class SimulationError(SchedulingError):
    """Raised for scheduling mistakes (e.g. scheduling in the past).

    Subclasses the runtime contract's
    :class:`~repro.runtime.interface.SchedulingError` so callers can
    catch scheduling misuse uniformly across runtimes.
    """


class Simulator:
    """A discrete event simulator with a floating-point virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.0, some_callback)
        sim.run()

    ``run`` drains the queue (optionally up to a time or event limit);
    time advances only when events fire, so an empty queue means the
    simulated system has quiesced.
    """

    #: Runtime-contract tag (see :mod:`repro.runtime.interface`).
    name = "sim"

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_fired = 0
        self._running = False
        #: Optional observability hook called as ``cb(now, pending)``
        #: after each event fires (see repro.obs.SchedulerProbe).
        self.on_event_fired: Optional[Callable[[float, int], None]] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def add_event_listener(
        self, listener: Callable[[float, int], None]
    ) -> None:
        """Chain ``listener`` onto :attr:`on_event_fired`.

        The existing hook (if any) keeps firing first; this lets several
        observers -- e.g. a :class:`~repro.obs.instrument.SchedulerProbe`
        and a :class:`~repro.obs.audit.LiveAuditor` -- share the single
        callback slot without knowing about each other.
        """
        previous = self.on_event_fired
        if previous is None:
            self.on_event_fired = listener
            return

        def chained(now: float, pending: int) -> None:
            previous(now, pending)
            listener(now, pending)

        self.on_event_fired = chained

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self._queue.push(self._now + delay, action, payload)

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}"
            )
        return self._queue.push(time, action, payload)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Fire events until the queue drains (or a limit is reached).

        Returns the number of events fired by this call.  ``until`` is an
        inclusive virtual-time bound; ``max_events`` bounds the number of
        events fired (useful as a watchdog in tests).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        on_event_fired = self.on_event_fired
        # The loop below fires millions of events in a large run; bind
        # the queue methods once so each iteration pays plain LOAD_FAST
        # lookups instead of repeated attribute chains.
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = pop()
                assert event is not None
                self._now = event.time
                event.fire()
                fired += 1
                self._events_fired += 1
                if on_event_fired is not None:
                    on_event_fired(self._now, len(queue))
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            # Advance the clock to the bound so repeated bounded runs
            # observe monotonic time.
            self._now = until
        return fired

    def quiesced(self) -> bool:
        """True when no live events remain."""
        return not self._queue
