"""The simulator: virtual clock plus run loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.interface import SchedulingError
from repro.sim.events import Event, EventQueue


class SimulationError(SchedulingError):
    """Raised for scheduling mistakes (e.g. scheduling in the past).

    Subclasses the runtime contract's
    :class:`~repro.runtime.interface.SchedulingError` so callers can
    catch scheduling misuse uniformly across runtimes.
    """


class Simulator:
    """A discrete event simulator with a floating-point virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.0, some_callback)
        sim.run()

    ``run`` drains the queue (optionally up to a time or event limit);
    time advances only when events fire, so an empty queue means the
    simulated system has quiesced.
    """

    #: Runtime-contract tag (see :mod:`repro.runtime.interface`).
    name = "sim"

    def __init__(self, wheel_tick: Optional[float] = None) -> None:
        self._queue = EventQueue(wheel_tick=wheel_tick)
        self._now = 0.0
        self._events_fired = 0
        self._running = False
        #: Optional observability hook called as ``cb(now, pending)``
        #: after each event fires (see repro.obs.SchedulerProbe).
        self.on_event_fired: Optional[Callable[[float, int], None]] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def add_event_listener(
        self, listener: Callable[[float, int], None]
    ) -> None:
        """Chain ``listener`` onto :attr:`on_event_fired`.

        The existing hook (if any) keeps firing first; this lets several
        observers -- e.g. a :class:`~repro.obs.instrument.SchedulerProbe`
        and a :class:`~repro.obs.audit.LiveAuditor` -- share the single
        callback slot without knowing about each other.
        """
        previous = self.on_event_fired
        if previous is None:
            self.on_event_fired = listener
            return

        def chained(now: float, pending: int) -> None:
            previous(now, pending)
            listener(now, pending)

        self.on_event_fired = chained

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self._queue.push(self._now + delay, action, payload)

    def schedule_fire(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> None:
        """Schedule ``action`` with no cancellation handle.

        The fire-and-forget fast path (see
        :meth:`repro.sim.events.EventQueue.push_fire`): identical
        firing semantics to :meth:`schedule`, but returns nothing, so
        the queue skips the per-entry :class:`Event` allocation.  Hot
        senders (the transport) use this for message deliveries.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._queue.push_fire(self._now + delay, action, payload)

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}"
            )
        return self._queue.push(time, action, payload)

    def schedule_many(self, entries) -> "list[Event]":
        """Bulk-schedule ``(delay, action, payload)`` entries.

        Semantically identical to calling :meth:`schedule` per entry
        (same firing order for simultaneous entries), but pays one
        O(n) ``heapify`` instead of n heap sifts — the difference
        between seconds and minutes when ``bench_scale`` launches 10⁵
        join timers at once."""
        now = self._now
        batch = []
        for delay, action, payload in entries:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past: {delay}"
                )
            batch.append((now + delay, action, payload))
        return self._queue.push_many(batch)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Fire events until the queue drains (or a limit is reached).

        Returns the number of events fired by this call.  ``until`` is an
        inclusive virtual-time bound; ``max_events`` bounds the number of
        events fired (useful as a watchdog in tests).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        on_event_fired = self.on_event_fired
        # The loop below fires millions of events in a large run; bind
        # the queue methods once so each iteration pays plain LOAD_FAST
        # lookups instead of repeated attribute chains.
        queue = self._queue
        peek_time = queue.peek_time
        pop_entry = queue.pop_entry
        try:
            if until is None and max_events is None and on_event_fired is None:
                # Unbounded, unobserved drain — the run-to-quiescence
                # path every experiment takes.  Same semantics as the
                # general loop below with the per-iteration limit and
                # listener checks removed, and the events_fired counter
                # accumulated locally.
                while True:
                    entry = pop_entry()
                    if entry is None:
                        break
                    self._now = entry[0]
                    if len(entry) == 3:
                        entry[2].fire()
                    else:
                        payload = entry[3]
                        if payload is None:
                            entry[2]()
                        else:
                            entry[2](payload)
                    fired += 1
                self._events_fired += fired
                return fired
            while True:
                if max_events is not None and fired >= max_events:
                    break
                if until is not None:
                    next_time = peek_time()
                    if next_time is None or next_time > until:
                        break
                # Raw heap entries: (time, seq, event) or the
                # fire-and-forget (time, seq, action, payload).
                entry = pop_entry()
                if entry is None:
                    break
                self._now = entry[0]
                if len(entry) == 3:
                    entry[2].fire()
                else:
                    payload = entry[3]
                    if payload is None:
                        entry[2]()
                    else:
                        entry[2](payload)
                fired += 1
                self._events_fired += 1
                if on_event_fired is not None:
                    on_event_fired(self._now, len(queue))
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            # Advance the clock to the bound so repeated bounded runs
            # observe monotonic time.
            self._now = until
        return fired

    def quiesced(self) -> bool:
        """True when no live events remain."""
        return not self._queue
