"""Compatibility re-export: the trace log moved to :mod:`repro.core.trace`.

The protocol layer records trace entries on every runtime, not just the
simulator, so the implementation now lives with the sans-io core.  This
module keeps the historical import path working.
"""

from repro.core.trace import NullTraceLog, TraceLog, TraceRecord

__all__ = ["NullTraceLog", "TraceLog", "TraceRecord"]
