"""Discrete event simulation engine.

The paper evaluates the join protocol "in detail in an event-driven
simulator" (Section 5.2).  This package provides that substrate:

* :class:`~repro.sim.events.EventQueue` -- a stable priority queue of
  timestamped events.
* :class:`~repro.sim.scheduler.Simulator` -- the virtual clock and run
  loop.
* :mod:`~repro.sim.rng` -- seeded random-stream management so every
  experiment is reproducible.
* :mod:`~repro.sim.trace` -- lightweight tracing/statistics hooks.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngFactory
from repro.sim.scheduler import Simulator
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "RngFactory",
    "Simulator",
    "TraceLog",
    "TraceRecord",
]
