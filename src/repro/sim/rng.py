"""Seeded random-stream management.

Experiments draw randomness for several independent purposes (ID
sampling, topology construction, attachment, join timing).  Giving each
purpose its own named stream derived from one root seed keeps results
reproducible *and* stable when one consumer starts drawing more values.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngFactory:
    """Derives independent named :class:`random.Random` streams from a
    single root seed.

    The same ``(seed, name)`` pair always yields an identically seeded
    stream, regardless of creation order.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 2654435761 % 2**32)
            self._streams[name] = random.Random(self.seed * 2**32 + derived)
        return self._streams[name]

    def fork(self, salt: int) -> "RngFactory":
        """A new factory with a seed derived from this one.

        Used by sweep drivers to give each run its own seed space.
        """
        return RngFactory((self.seed * 1000003 + salt) % 2**63)

    def __repr__(self) -> str:
        return f"RngFactory(seed={self.seed})"
