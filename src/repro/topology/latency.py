"""Exact hierarchical shortest-path latencies on a transit-stub topology.

Because stubs are single-homed (one gateway edge), every path between
routers in different stubs must cross both gateways, so the shortest
path decomposes exactly into

    d(u, gw_u) + gateway_u + core(gwT_u, gwT_v) + gateway_v + d(gw_v, v)

This lets us answer ~8320-router distance queries with a tiny transit
core APSP plus per-stub APSP computed lazily -- no 8320x8320 matrix.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topology.transit_stub import StubDomain, TransitStubTopology


class HierarchicalLatency:
    """Shortest-path router-to-router latency on a transit-stub topology."""

    def __init__(self, topology: TransitStubTopology):
        self._topology = topology
        # Transit core all-pairs: one Dijkstra per transit router.
        self._core_dist: Dict[int, Dict[int, float]] = {}
        for router in topology.transit_routers:
            self._core_dist[router] = topology.core.dijkstra(router)
        # Per-stub single-source caches, filled on demand.
        self._stub_dist: Dict[int, Dict[int, float]] = {}
        # Router-pair memo: the decomposition below is exact and
        # static, so repeated queries (every message between the same
        # two attachment routers) collapse to one dict hit.
        self._pair_memo: Dict[Tuple[int, int], float] = {}

    def _stub_distances(self, router: int, stub: StubDomain) -> Dict[int, float]:
        cached = self._stub_dist.get(router)
        if cached is None:
            cached = stub.graph.dijkstra(router)
            self._stub_dist[router] = cached
        return cached

    def _to_gateway(self, router: int, stub: StubDomain) -> float:
        """Distance from a stub router to its gateway *transit* router."""
        inside = self._stub_distances(router, stub)[stub.gateway_stub_router]
        return inside + stub.gateway_latency

    def latency(self, u: int, v: int) -> float:
        """Shortest-path latency between any two routers."""
        if u == v:
            return 0.0
        memo = self._pair_memo
        cached = memo.get((u, v))
        if cached is not None:
            return cached
        value = self._compute_latency(u, v)
        memo[(u, v)] = value
        memo[(v, u)] = value
        return value

    def _compute_latency(self, u: int, v: int) -> float:
        topo = self._topology
        u_transit = topo.is_transit(u)
        v_transit = topo.is_transit(v)
        if u_transit and v_transit:
            return self._core_dist[u][v]
        if u_transit:
            return self.latency(v, u)
        # u is a stub router.
        stub_u = topo.stub_of[u]
        if v_transit:
            gw = stub_u.gateway_transit_router
            return self._to_gateway(u, stub_u) + self._core_dist[gw][v]
        stub_v = topo.stub_of[v]
        if stub_u is stub_v:
            return self._stub_distances(u, stub_u)[v]
        core = self._core_dist[stub_u.gateway_transit_router][
            stub_v.gateway_transit_router
        ]
        return (
            self._to_gateway(u, stub_u)
            + core
            + self._to_gateway(v, stub_v)
        )
