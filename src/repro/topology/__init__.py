"""Network topology substrate.

The paper's simulations use the GT-ITM package to generate router
topologies (8320 routers) and attach end-hosts to routers at random
(Section 5.2).  GT-ITM's ``ts`` model is the *transit-stub* model, which
this package implements from scratch:

* :mod:`~repro.topology.graph` -- a small weighted-graph library with
  Dijkstra and connectivity checks.
* :mod:`~repro.topology.transit_stub` -- the transit-stub generator.
  The default parameterization (5 transit domains x 8 routers, 9 stubs
  per transit router, 23 routers per stub) yields exactly 8320 routers,
  matching the paper.
* :mod:`~repro.topology.latency` -- exact hierarchical shortest-path
  latencies between routers (stubs are single-homed, so intra-stub APSP
  + transit-core APSP compose exactly).
* :mod:`~repro.topology.attachment` -- end-host attachment and the
  latency models consumed by the transport layer.
"""

from repro.topology.attachment import (
    ConstantLatencyModel,
    HostAttachment,
    LatencyModel,
    TopologyLatencyModel,
    UniformLatencyModel,
)
from repro.topology.graph import Graph
from repro.topology.latency import HierarchicalLatency
from repro.topology.transit_stub import (
    TransitStubParams,
    TransitStubTopology,
    generate_transit_stub,
)

__all__ = [
    "ConstantLatencyModel",
    "Graph",
    "HierarchicalLatency",
    "HostAttachment",
    "LatencyModel",
    "TopologyLatencyModel",
    "TransitStubParams",
    "TransitStubTopology",
    "UniformLatencyModel",
    "generate_transit_stub",
]
