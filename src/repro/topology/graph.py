"""A small weighted undirected graph with shortest-path routines.

Kept deliberately minimal: the transit-stub generator only needs edge
insertion, connectivity repair, and single-source Dijkstra over graphs
of at most a few dozen nodes per component.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Set, Tuple


class Graph:
    """Weighted undirected graph over hashable node labels."""

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}

    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists (no-op if present)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add/update an undirected edge, keeping the minimum weight."""
        if u == v:
            raise ValueError("self loops are not allowed")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        self.add_node(u)
        self.add_node(v)
        existing = self._adj[u].get(v)
        if existing is None or weight < existing:
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    def has_edge(self, u: int, v: int) -> bool:
        """True iff an edge ``{u, v}`` exists."""
        return v in self._adj.get(u, ())

    def weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}`` (KeyError if absent)."""
        return self._adj[u][v]

    def neighbors(self, u: int) -> Iterable[int]:
        """Adjacent nodes of ``u``."""
        return self._adj.get(u, {}).keys()

    @property
    def nodes(self) -> List[int]:
        return list(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate edges once each as ``(u, v, weight)`` with u < v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def dijkstra(self, source: int) -> Dict[int, float]:
        """Single-source shortest path distances."""
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v, w in self._adj[u].items():
                nd = d + w
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def is_connected(self) -> bool:
        """True iff every node is reachable from every other."""
        if not self._adj:
            return True
        start = next(iter(self._adj))
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self._adj)

    def components(self) -> List[Set[int]]:
        """Connected components as sets of nodes."""
        remaining = set(self._adj)
        out: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
            out.append(seen)
            remaining -= seen
        return out
