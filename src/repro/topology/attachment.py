"""End-host attachment and latency models.

The transport layer (:mod:`repro.network.transport`) only needs a
``latency(src, dst)`` function over opaque host keys.  Three models are
provided:

* :class:`TopologyLatencyModel` -- hosts attached to random stub routers
  of a transit-stub topology (the paper's setup: "nodes (end-hosts) are
  attached to the routers randomly").
* :class:`UniformLatencyModel` -- i.i.d. uniform latencies, cheap and
  adequate for unit tests that only need asynchrony.
* :class:`ConstantLatencyModel` -- deterministic fixed delay, useful for
  tests that need exact event orderings.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.topology.latency import HierarchicalLatency
from repro.topology.transit_stub import TransitStubTopology

HostKey = Hashable


class LatencyModel:
    """Interface: one-way message latency between two hosts."""

    #: True when ``latency(src, dst)`` is a pure function of the pair,
    #: in which case the transport may memoize it per (src, dst).
    #: Jittered models (fresh draw per message) must leave this False.
    deterministic_pairs = False

    def latency(self, src: HostKey, dst: HostKey) -> float:
        """One-way delay from ``src`` to ``dst``."""
        raise NotImplementedError


class ConstantLatencyModel(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    deterministic_pairs = True

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = delay

    def latency(self, src: HostKey, dst: HostKey) -> float:
        """The fixed delay, for any pair."""
        return self.delay


class UniformLatencyModel(LatencyModel):
    """Independent uniform latency per message (memoryless jitter).

    Models an asynchronous network without topology structure; each
    call draws a fresh value, so even the same pair varies per message.
    """

    def __init__(self, rng: random.Random, low: float = 1.0, high: float = 100.0):
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self._rng = rng
        self.low = low
        self.high = high

    def latency(self, src: HostKey, dst: HostKey) -> float:
        """A fresh uniform draw (per message, not per pair)."""
        return self._rng.uniform(self.low, self.high)


class HostAttachment:
    """Maps end-hosts to the stub routers they attach to."""

    def __init__(
        self,
        topology: TransitStubTopology,
        hosts: Iterable[HostKey],
        rng: random.Random,
        access_latency: Tuple[float, float] = (0.5, 2.0),
    ):
        stub_routers = topology.stub_routers
        low, high = access_latency
        # One fused ``host -> (router, access)`` dict: the latency
        # model reads both values for both endpoints of every distinct
        # pair, so fusing halves its dict probes (and host-key hash
        # calls) versus parallel per-field dicts.
        self._attach: Dict[HostKey, Tuple[int, float]] = {}
        for host in hosts:
            self._attach[host] = (
                rng.choice(stub_routers),
                rng.uniform(low, high),
            )

    def router_of(self, host: HostKey) -> int:
        """The stub router ``host`` attaches to."""
        return self._attach[host][0]

    def access_latency(self, host: HostKey) -> float:
        """``host``'s access-link latency."""
        return self._attach[host][1]

    def add_host(
        self, host: HostKey, router: int, access_latency: float
    ) -> None:
        """Attach one more host explicitly (tests and incremental setups)."""
        self._attach[host] = (router, access_latency)

    @property
    def hosts(self) -> List[HostKey]:
        return list(self._attach)


class TopologyLatencyModel(LatencyModel):
    """Latency = access(src) + router path + access(dst) on a topology."""

    deterministic_pairs = True

    def __init__(
        self,
        topology: TransitStubTopology,
        attachment: HostAttachment,
        paths: Optional[HierarchicalLatency] = None,
    ):
        """``paths`` lets callers share one :class:`HierarchicalLatency`
        (router-path state is a pure function of the topology, and its
        core all-pairs Dijkstra is the expensive part)."""
        self._attachment = attachment
        self._paths = (
            paths if paths is not None else HierarchicalLatency(topology)
        )
        # Direct ref into the attachment's fused map: latency() runs
        # once per distinct (src, dst) pair in a run (the transport
        # memoizes deterministic models), and the accessor-method hops
        # dominate its cost.  add_host mutates the same dict, so the
        # ref stays current.
        self._attach = attachment._attach

    def latency(self, src: HostKey, dst: HostKey) -> float:
        """Access link + router shortest path + access link."""
        if src == dst:
            return 0.0
        attach = self._attach
        src_router, src_access = attach[src]
        dst_router, dst_access = attach[dst]
        return (
            src_access
            + self._paths.latency(src_router, dst_router)
            + dst_access
        )
