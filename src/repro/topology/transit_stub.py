"""Transit-stub topology generation (GT-ITM ``ts`` model, from scratch).

Structure: a core of *transit domains*, each a connected random graph of
transit routers; domains are pairwise linked by inter-domain edges.
Each transit router hosts several *stub domains* -- small connected
random graphs of stub routers -- attached through a single gateway edge
(single-homed stubs, which makes hierarchical shortest-path composition
exact; see :mod:`repro.topology.latency`).

Edge latencies follow the usual transit-stub calibration: intra-stub
links are fast, stub-to-transit gateways slower, intra-transit-domain
slower still, and inter-domain links slowest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.topology.graph import Graph


@dataclass(frozen=True)
class TransitStubParams:
    """Parameters of the generator.

    The defaults yield ``5*8 + 5*8*9*23 = 8320`` routers, the router
    count used in the paper's Figure 15(b) simulations.
    """

    num_transit_domains: int = 5
    transit_domain_size: int = 8
    stubs_per_transit_router: int = 9
    stub_size: int = 23
    intra_domain_edge_prob: float = 0.5
    intra_stub_edge_prob: float = 0.4
    # Latency ranges in milliseconds [low, high).
    stub_edge_latency: Tuple[float, float] = (1.0, 5.0)
    gateway_latency: Tuple[float, float] = (5.0, 15.0)
    transit_edge_latency: Tuple[float, float] = (10.0, 20.0)
    inter_domain_latency: Tuple[float, float] = (30.0, 50.0)

    @property
    def num_transit_routers(self) -> int:
        return self.num_transit_domains * self.transit_domain_size

    @property
    def num_stub_domains(self) -> int:
        return self.num_transit_routers * self.stubs_per_transit_router

    @property
    def num_routers(self) -> int:
        return self.num_transit_routers + self.num_stub_domains * self.stub_size


@dataclass
class StubDomain:
    """One stub domain: its routers, internal graph, and gateway."""

    index: int
    routers: List[int]
    graph: Graph
    gateway_stub_router: int
    gateway_transit_router: int
    gateway_latency: float


@dataclass
class TransitStubTopology:
    """The generated topology.

    ``core`` contains every transit router and all intra/inter-domain
    edges.  ``stub_of`` maps a stub router to its :class:`StubDomain`.
    """

    params: TransitStubParams
    core: Graph
    transit_routers: List[int]
    stubs: List[StubDomain]
    stub_of: Dict[int, StubDomain] = field(default_factory=dict)

    @property
    def num_routers(self) -> int:
        return len(self.transit_routers) + sum(
            len(s.routers) for s in self.stubs
        )

    @property
    def stub_routers(self) -> List[int]:
        out: List[int] = []
        for stub in self.stubs:
            out.extend(stub.routers)
        return out

    def is_transit(self, router: int) -> bool:
        """True iff ``router`` is a transit (core) router."""
        return router < len(self.transit_routers)


def _connected_random_graph(
    nodes: List[int],
    edge_prob: float,
    latency_range: Tuple[float, float],
    rng: random.Random,
) -> Graph:
    """A connected Erdos-Renyi-style graph: a random spanning tree plus
    independent extra edges with probability ``edge_prob``."""
    graph = Graph()
    for node in nodes:
        graph.add_node(node)
    low, high = latency_range
    # Random spanning tree guarantees connectivity.
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        parent = shuffled[rng.randrange(i)]
        graph.add_edge(shuffled[i], parent, rng.uniform(low, high))
    # Extra edges for realism (multiple internal routes).
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if not graph.has_edge(u, v) and rng.random() < edge_prob:
                graph.add_edge(u, v, rng.uniform(low, high))
    return graph


def generate_transit_stub(
    params: TransitStubParams, rng: random.Random
) -> TransitStubTopology:
    """Generate a transit-stub topology.

    Router IDs are dense integers: transit routers first (grouped by
    domain), then stub routers (grouped by stub domain).
    """
    if params.transit_domain_size < 1 or params.stub_size < 1:
        raise ValueError("domains must be non-empty")

    next_id = 0
    core = Graph()
    transit_routers: List[int] = []
    domains: List[List[int]] = []
    for _ in range(params.num_transit_domains):
        domain = list(range(next_id, next_id + params.transit_domain_size))
        next_id += params.transit_domain_size
        transit_routers.extend(domain)
        domains.append(domain)
        internal = _connected_random_graph(
            domain,
            params.intra_domain_edge_prob,
            params.transit_edge_latency,
            rng,
        )
        for u, v, w in internal.edges():
            core.add_edge(u, v, w)
        if len(domain) == 1:
            core.add_node(domain[0])

    # Pairwise inter-domain links keep the core diameter small, as in
    # GT-ITM's default of a connected top-level domain graph.
    low, high = params.inter_domain_latency
    for i in range(len(domains)):
        for j in range(i + 1, len(domains)):
            u = rng.choice(domains[i])
            v = rng.choice(domains[j])
            core.add_edge(u, v, rng.uniform(low, high))

    stubs: List[StubDomain] = []
    stub_of: Dict[int, StubDomain] = {}
    glow, ghigh = params.gateway_latency
    for transit_router in transit_routers:
        for _ in range(params.stubs_per_transit_router):
            routers = list(range(next_id, next_id + params.stub_size))
            next_id += params.stub_size
            graph = _connected_random_graph(
                routers,
                params.intra_stub_edge_prob,
                params.stub_edge_latency,
                rng,
            )
            stub = StubDomain(
                index=len(stubs),
                routers=routers,
                graph=graph,
                gateway_stub_router=rng.choice(routers),
                gateway_transit_router=transit_router,
                gateway_latency=rng.uniform(glow, ghigh),
            )
            stubs.append(stub)
            for router in routers:
                stub_of[router] = stub

    return TransitStubTopology(
        params=params,
        core=core,
        transit_routers=transit_routers,
        stubs=stubs,
        stub_of=stub_of,
    )
