"""Mid-run invariant monitoring.

The join protocol is "designed to expand the network monotonically and
preserve reachability of existing nodes so that once a set of nodes
can reach each other, they always can thereafter" (Section 3.1).  That
is a statement about *every instant* of the execution, not just the
final state; this module checks it by pausing the simulation at
sampled virtual times and verifying that all current S-nodes can still
reach each other.

Monitors also re-run the structural checker in mid-join mode
(``require_s_states=False``) restricted to S-nodes, catching any
transient false positive the instant it appears rather than at the end
of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.consistency.verifier import verify_reachability
from repro.routing.router import route


@dataclass
class InvariantViolation:
    time: float
    description: str

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"t={self.time:.2f}: {self.description}"


@dataclass
class MonitorReport:
    checkpoints: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_s_node_reachability(network, time: float, report: MonitorReport,
                              sample_pairs: Optional[int] = None) -> None:
    """One checkpoint: every pair of current S-nodes reaches each other
    through the current tables (which may route via T-nodes -- the
    definition of reachability does not care about status)."""
    s_nodes = [
        node_id
        for node_id, node in network.nodes.items()
        if node.status.is_s_node
    ]
    if len(s_nodes) < 2:
        report.checkpoints += 1
        return
    tables = {node_id: network.nodes[node_id].table
              for node_id in network.nodes}
    provider = lambda node_id: tables[node_id]  # noqa: E731
    report.checkpoints += 1
    if sample_pairs is None:
        pairs = [
            (a, b) for a in s_nodes for b in s_nodes if a != b
        ]
    else:
        import random

        rng = random.Random(int(time * 1000) ^ len(s_nodes))
        pairs = [tuple(rng.sample(s_nodes, 2)) for _ in range(sample_pairs)]
    for source, target in pairs:
        result = route(provider, source, target)
        if not result.success:
            report.violations.append(InvariantViolation(
                time,
                f"S-node {target} unreachable from S-node {source} "
                f"(stuck at {result.failed_at})",
            ))
            return


def run_with_monitor(
    network,
    check_interval: float,
    max_checkpoints: int = 200,
    sample_pairs: Optional[int] = None,
) -> MonitorReport:
    """Run the network to quiescence, checkpointing the reachability
    invariant every ``check_interval`` of virtual time."""
    report = MonitorReport()
    runtime = network.runtime
    while report.checkpoints < max_checkpoints:
        fired = runtime.run(until=runtime.now + check_interval)
        check_s_node_reachability(
            network, runtime.now, report, sample_pairs
        )
        if runtime.quiesced() and fired == 0:
            break
    # Drain whatever remains past the checkpoint budget.
    runtime.run()
    return report
