"""Structural consistency check (Definition 3.8).

For a network ``<V, N(V)>`` and every node ``x`` in ``V``:

(a) if ``V_{j . x[i-1]...x[0]}`` is non-empty then ``N_x(i, j)`` holds
    some member of it (false-negative free);
(b) if that suffix set is empty then ``N_x(i, j)`` is null
    (false-positive free).

The checker also validates that each filled entry's occupant satisfies
the entry's suffix constraint and is a member of the network, and that
every recorded neighbor *state* is ``S`` -- by the end of all joins,
every node is an S-node (Theorem 2), so a lingering ``T`` marks a
bookkeeping bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.ids.digits import NodeId
from repro.ids.suffix import SuffixIndex
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable


@dataclass(frozen=True)
class Violation:
    """One consistency violation."""

    node: NodeId
    level: int
    digit: int
    kind: str  # "false_negative", "false_positive", "bad_occupant", "stale_state"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"{self.kind} at ({self.level},{self.digit}) of {self.node}: "
            f"{self.detail}"
        )


@dataclass
class ConsistencyReport:
    """Outcome of a full Definition 3.8 check."""

    consistent: bool
    violations: List[Violation] = field(default_factory=list)
    nodes_checked: int = 0
    entries_checked: int = 0

    def by_kind(self) -> Dict[str, int]:
        """Violation counts grouped by kind."""
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind] = out.get(violation.kind, 0) + 1
        return out


def check_consistency(
    tables: Mapping[NodeId, NeighborTable],
    max_violations: Optional[int] = None,
    require_s_states: bool = True,
    occupant_set: Optional[Iterable[NodeId]] = None,
) -> ConsistencyReport:
    """Check Definition 3.8 over ``tables`` (the membership is the key
    set).  Set ``require_s_states=False`` to check a network snapshot
    taken *during* joins, where ``T`` states are legitimate.

    ``occupant_set`` widens the set of nodes a filled entry may legally
    point at beyond the checked membership.  The live auditor uses this
    mid-run: suffix coverage is checked over the *S-node* subnetwork
    (``tables``), but an S-node legitimately holds pointers at T-nodes
    still joining, so every live node is an acceptable occupant.  In
    this relaxed mode the ``false_positive`` rule is suspended -- a
    filled entry is justified by its (suffix-valid, live) occupant even
    when no *checked* member carries the suffix, because the occupant
    may simply not have reached *in_system* yet."""
    members = list(tables)
    index = SuffixIndex(members)
    report = ConsistencyReport(consistent=True)
    relaxed_occupants = occupant_set is not None
    member_set = (
        set(members) if occupant_set is None else set(occupant_set)
    )

    def add(violation: Violation) -> bool:
        report.violations.append(violation)
        report.consistent = False
        return max_violations is not None and len(
            report.violations
        ) >= max_violations

    for node_id in members:
        table = tables[node_id]
        table_get = table.get
        any_with = index.any_with
        report.nodes_checked += 1
        for level in range(node_id.num_digits):
            shared = node_id.suffix(level)
            report.entries_checked += node_id.base
            for digit in range(node_id.base):
                desired = shared + (digit,)
                occupant = table_get(level, digit)
                exists = any_with(desired)
                if occupant is None:
                    if exists:
                        if add(Violation(
                            node_id, level, digit, "false_negative",
                            f"suffix set non-empty (e.g. "
                            f"{next(iter(index.nodes_with(desired)))}) but "
                            f"entry is null",
                        )):
                            return report
                    continue
                if not exists and not relaxed_occupants:
                    if add(Violation(
                        node_id, level, digit, "false_positive",
                        f"entry holds {occupant} but no node has the "
                        f"required suffix",
                    )):
                        return report
                    continue
                if occupant not in member_set:
                    if add(Violation(
                        node_id, level, digit, "bad_occupant",
                        f"{occupant} is not a member of the network",
                    )):
                        return report
                    continue
                if not occupant.has_suffix(desired):
                    if add(Violation(
                        node_id, level, digit, "bad_occupant",
                        f"{occupant} lacks the required suffix",
                    )):
                        return report
                    continue
                if (
                    require_s_states
                    and table.state(level, digit) is not NeighborState.S
                ):
                    if add(Violation(
                        node_id, level, digit, "stale_state",
                        f"neighbor {occupant} still recorded as T",
                    )):
                        return report
    return report
