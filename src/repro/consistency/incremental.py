"""Incremental Definition 3.8 checking (dirty-set re-verification).

The full :func:`~repro.consistency.checker.check_consistency` scan is
O(n * d * b) per call: every entry of every audited table is probed
against a freshly built suffix index.  A :class:`LiveAuditor` sampling
a 100k-node join run pays that cost *per sample*, which turns the
audit from an observer into the dominant cost of the run.

:class:`IncrementalChecker` keeps the suffix index and the last known
verdict per node across calls and re-verifies only nodes whose answer
could have changed since the previous call:

* nodes whose table **version** advanced (any mutation bumps
  :class:`~repro.routing.table.NeighborTable`'s version counter);
* nodes **newly added** to the audited membership;
* nodes with a **cached violation** (a violation can resolve without
  the violating node's own table changing only through membership
  churn, but re-checking them every call also keeps the auditor's
  persistence streaks exact);
* members of any suffix class whose class just went **empty ->
  non-empty**: a new member with suffix ``j . s`` turns the null
  ``(len(s), j)`` entries of every node with suffix ``s`` into
  false negatives, without touching those nodes' tables.  The affected
  nodes are exactly the members of class ``s``, which the index
  already holds.

Membership **removal** (audited set or occupant set shrinking) cannot
be localized this way -- a departed node may justify entries anywhere
-- so the checker detects it and falls back to a full rescan,
rebuilding its state from scratch.  That keeps the incremental path
exact: for join-only workloads it never triggers; with leaves/failures
the cost degrades gracefully to the full checker's.

The checker implements the auditor's *relaxed occupant* mode only
(``require_s_states=False`` with an explicit occupant set -- see
:func:`check_consistency`): that is the mode that runs repeatedly
mid-run.  The strict quiescence check runs once and stays on the full
scanner.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.ids.digits import PACKED_DIGIT_BITS, PACKED_DIGIT_MASK, NodeId
from repro.consistency.checker import ConsistencyReport, Violation
from repro.routing.table import NeighborTable


class IncrementalChecker:
    """Stateful Definition 3.8 checker for a growing network.

    Call :meth:`check` with the audited ``{node_id: table}`` mapping
    and the acceptable occupant set, exactly like the relaxed-mode
    :func:`~repro.consistency.checker.check_consistency`; results agree
    with the full checker on every call (same violation positions and
    kinds), while touching only dirty nodes.
    """

    def __init__(self) -> None:
        self._initialized = False
        # Packed length-tagged suffix key ((k << d*w) | suffix bits,
        # as in repro.routing.oracle) -> audited members of the class.
        self._index: Dict[int, Set[NodeId]] = {}
        #: node -> table version at its last verification.
        self._versions: Dict[NodeId, int] = {}
        #: node -> its currently cached violations (absent if clean).
        self._violations: Dict[NodeId, List[Violation]] = {}
        self._member_set: Set[NodeId] = set()
        self._occupants: Set[NodeId] = set()
        #: Cumulative count of per-node verifications (observability;
        #: compare against calls * len(tables) for the saving).
        self.nodes_reverified = 0
        #: Number of full rescans triggered by membership shrink.
        self.full_rescans = 0

    # -- index plumbing -------------------------------------------------

    def _configure(self, exemplar: NodeId) -> None:
        self._base = exemplar.base
        self._num_digits = exemplar.num_digits
        w = PACKED_DIGIT_BITS
        self._tag_shift = self._num_digits * w
        self._masks = tuple(
            (1 << (k * w)) - 1 for k in range(self._num_digits + 1)
        )
        self._initialized = True

    def _reset(self) -> None:
        self._index.clear()
        self._versions.clear()
        self._violations.clear()
        self._member_set = set()
        self._occupants = set()

    def _add_members(
        self, new_members: List[NodeId], dirty: Set[NodeId]
    ) -> None:
        """Index ``new_members``; dirty every node whose previously
        empty suffix class just gained its first member."""
        index = self._index
        masks = self._masks
        tag_shift = self._tag_shift
        created_parents: List[int] = []
        for member in new_members:
            packed = member._packed
            for k in range(self._num_digits + 1):
                key = (k << tag_shift) | (packed & masks[k])
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {member}
                    if k:
                        created_parents.append(
                            ((k - 1) << tag_shift)
                            | (packed & masks[k - 1])
                        )
                else:
                    bucket.add(member)
        for parent in created_parents:
            # Members of the parent class are the nodes whose (k-1,
            # digit) entry aims at the newly non-empty class.
            dirty |= index[parent]

    # -- per-node verification ------------------------------------------

    def _check_node(
        self,
        node_id: NodeId,
        table: NeighborTable,
        occupants: Set[NodeId],
    ) -> List[Violation]:
        """Relaxed-mode verdict for one node (mirrors the full
        checker's per-entry decisions exactly)."""
        violations: List[Violation] = []
        index = self._index
        masks = self._masks
        tag_shift = self._tag_shift
        w = PACKED_DIGIT_BITS
        dmask = PACKED_DIGIT_MASK
        packed = node_id._packed
        table_get = table.get
        base = self._base
        for level in range(self._num_digits):
            parent_bits = packed & masks[level]
            key_base = (level + 1) << tag_shift
            shift = level * w
            for digit in range(base):
                occupant = table_get(level, digit)
                if occupant is None:
                    bucket = index.get(
                        key_base | (digit << shift) | parent_bits
                    )
                    if bucket:
                        violations.append(Violation(
                            node_id, level, digit, "false_negative",
                            f"suffix set non-empty (e.g. "
                            f"{next(iter(bucket))}) but entry is null",
                        ))
                    continue
                if occupant not in occupants:
                    violations.append(Violation(
                        node_id, level, digit, "bad_occupant",
                        f"{occupant} is not a member of the network",
                    ))
                    continue
                opacked = occupant._packed
                if (opacked & masks[level]) != parent_bits or (
                    (opacked >> shift) & dmask
                ) != digit:
                    violations.append(Violation(
                        node_id, level, digit, "bad_occupant",
                        f"{occupant} lacks the required suffix",
                    ))
        return violations

    # -- public API -----------------------------------------------------

    def check(
        self,
        tables: Mapping[NodeId, NeighborTable],
        occupant_set: Iterable[NodeId],
        max_violations: Optional[int] = None,
    ) -> ConsistencyReport:
        """Relaxed-mode Definition 3.8 over ``tables``.

        Equivalent to ``check_consistency(tables,
        require_s_states=False, occupant_set=occupant_set,
        max_violations=max_violations)`` (violation positions/kinds and
        the verdict; ``nodes_checked``/``entries_checked`` count only
        the nodes actually re-verified this call).
        """
        # Always a private copy: shrink detection compares against the
        # *previous* call's set, which must not alias a set the caller
        # mutates in place between calls.
        occupants = set(occupant_set)
        if not self._initialized:
            if not tables:
                # Nothing audited yet: vacuously consistent (matches
                # the full checker on an empty mapping).
                return ConsistencyReport(consistent=True)
            self._configure(next(iter(tables)))
        if not (
            self._member_set <= tables.keys()
            and self._occupants <= occupants
        ):
            # Membership shrank: removals cannot be localized, start
            # over (the rebuilt state then serves later calls again).
            self._reset()
            self.full_rescans += 1
        self._occupants = occupants

        dirty: Set[NodeId] = set()
        versions = self._versions
        new_members = [m for m in tables if m not in versions]
        if new_members:
            self._add_members(new_members, dirty)
            dirty.update(new_members)
            self._member_set.update(new_members)
        for member, table in tables.items():
            version = table._version
            known = versions.get(member)
            if known is None or known != version:
                versions[member] = version
                dirty.add(member)
        # A cached violation can be resolved by membership growth
        # alone; re-verifying keeps verdicts and the auditor's
        # persistence streaks identical to the full checker's.
        dirty.update(self._violations.keys() & tables.keys())

        cached = self._violations
        for member in dirty:
            table = tables[member]
            versions[member] = table._version
            violations = self._check_node(member, table, occupants)
            if violations:
                cached[member] = violations
            else:
                cached.pop(member, None)
        self.nodes_reverified += len(dirty)

        report = ConsistencyReport(
            consistent=True,
            nodes_checked=len(dirty),
            entries_checked=len(dirty) * self._num_digits * self._base,
        )
        if cached:
            out = report.violations
            # Assemble in the full checker's scan order (tables
            # iteration order, then level/digit within a node).
            for member in tables:
                violations = cached.get(member)
                if violations:
                    out.extend(violations)
                    if (
                        max_violations is not None
                        and len(out) >= max_violations
                    ):
                        del out[max_violations:]
                        break
            if out:
                report.consistent = False
        return report
