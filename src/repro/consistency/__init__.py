"""Consistency checking (Definition 3.8 and Lemma 3.1).

* :mod:`~repro.consistency.checker` -- structural check: every table
  entry is non-null iff a node with the entry's required suffix exists
  (condition (a): false-negative free; condition (b): false-positive
  free), and every filled entry's occupant actually has the suffix.
* :mod:`~repro.consistency.verifier` -- behavioural check: all-pairs
  (or sampled) reachability by actually routing, which by Lemma 3.1 is
  equivalent to condition (a).
* :mod:`~repro.consistency.incremental` -- stateful dirty-set variant
  of the structural check for repeated mid-run audits: only nodes
  whose verdict could have changed since the last call are
  re-verified.
"""

from repro.consistency.checker import (
    ConsistencyReport,
    Violation,
    check_consistency,
)
from repro.consistency.incremental import IncrementalChecker
from repro.consistency.verifier import (
    ReachabilityReport,
    verify_reachability,
)

__all__ = [
    "ConsistencyReport",
    "IncrementalChecker",
    "ReachabilityReport",
    "Violation",
    "check_consistency",
    "verify_reachability",
]
