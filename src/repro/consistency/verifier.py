"""Behavioural consistency: reachability verification (Lemma 3.1).

Lemma 3.1 states that in ``<V, N(V)>`` any node is reachable from any
other node iff condition (a) of Definition 3.8 holds.  This module
verifies the reachability side directly by routing: exhaustively for
small networks, or over a random sample of pairs for large ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.ids.digits import NodeId
from repro.routing.router import route
from repro.routing.table import NeighborTable


@dataclass
class ReachabilityReport:
    """Outcome of a reachability sweep."""

    all_reachable: bool
    pairs_checked: int = 0
    max_hops: int = 0
    total_hops: int = 0
    failures: List[Tuple[NodeId, NodeId]] = field(default_factory=list)

    @property
    def mean_hops(self) -> float:
        if self.pairs_checked == 0:
            return 0.0
        return self.total_hops / self.pairs_checked


def verify_reachability(
    tables: Mapping[NodeId, NeighborTable],
    sample_pairs: Optional[int] = None,
    rng: Optional[random.Random] = None,
    max_failures: int = 10,
) -> ReachabilityReport:
    """Route between node pairs and report failures.

    With ``sample_pairs=None`` every ordered pair is tried (quadratic --
    fine for a few hundred nodes); otherwise ``sample_pairs`` random
    ordered pairs are tried.
    """
    members = list(tables)
    provider = lambda node_id: tables[node_id]  # noqa: E731
    report = ReachabilityReport(all_reachable=True)

    def try_pair(source: NodeId, target: NodeId) -> bool:
        result = route(provider, source, target)
        report.pairs_checked += 1
        if result.success:
            report.total_hops += result.hops
            report.max_hops = max(report.max_hops, result.hops)
            return True
        report.all_reachable = False
        report.failures.append((source, target))
        return len(report.failures) < max_failures

    if sample_pairs is None:
        for source in members:
            for target in members:
                if source == target:
                    continue
                if not try_pair(source, target):
                    return report
    else:
        if rng is None:
            rng = random.Random(0)
        if len(members) < 2:
            return report
        for _ in range(sample_pairs):
            source, target = rng.sample(members, 2)
            if not try_pair(source, target):
                return report
    return report
