"""The discrete-event simulator as a runtime adapter.

:class:`VirtualTimeRuntime` *is* the simulator -- it subclasses
:class:`repro.sim.scheduler.Simulator` rather than wrapping it, so the
hot path (``schedule`` inside ``Transport.send``, the ``run`` loop)
stays the exact pre-refactor code with zero delegation overhead, and
every trace it produces is bit-for-bit identical to the pre-refactor
simulator's.  The subclass only pins down the runtime-contract extras:
the ``name`` tag and the :class:`~repro.runtime.interface.Runtime`
conformance.

This module is the only place the runtime layer touches
:mod:`repro.sim`; the protocol stack reaches it exclusively through
:func:`repro.runtime.create_runtime`.
"""

from __future__ import annotations

from repro.sim.scheduler import Simulator


class VirtualTimeRuntime(Simulator):
    """Virtual-time runtime: deterministic discrete-event execution.

    Satisfies the :class:`~repro.runtime.interface.Runtime` protocol:
    ``now``/``schedule``/``schedule_at`` come straight from
    :class:`~repro.sim.scheduler.Simulator`, ``schedule`` returns the
    queue's :class:`~repro.sim.events.Event` (whose ``cancel`` gives
    timers their cancel-before-fire semantics), and ``run`` drains to
    quiescence under a virtual clock.
    """

    #: Runtime-contract tag (the CLI's ``--runtime sim``).
    name = "sim"


__all__ = ["VirtualTimeRuntime"]
