"""Real-time runtime: wall-clock execution on an asyncio event loop.

The identical protocol core that runs under the virtual-time simulator
runs here over real time: ``schedule`` becomes ``loop.call_later``,
``now`` reads the loop's monotonic clock, and ``run()`` blocks the
calling thread until the network quiesces (no timer pending and the
mailbox drained) or a wall-clock budget expires.

Design notes:

* **Protocol time units.**  Latency models and protocol timeouts are
  written in abstract time units (the paper's milliseconds-ish scale).
  ``time_scale`` converts them to seconds of wall-clock time; the
  default of 1 ms per unit makes a uniform 1-100 unit latency model
  behave like a 1-100 ms network.  ``now`` converts back, so protocol
  timestamps (``join_began_at``, trace times) stay in protocol units
  on both runtimes.
* **Handler atomicity via the Mailbox.**  Expired timers do not run
  their actions inline: they append to a FIFO
  :class:`~repro.runtime.interface.Mailbox`, and a single dispatcher
  coroutine (the "in-process task" of the runtime) drains it, one
  action at a time.  Protocol handlers therefore never interleave --
  the same guarantee the discrete-event loop gives -- and the
  ``add_event_listener`` hook fires after each action exactly like the
  simulator's, so SchedulerProbe and LiveAuditor attach unchanged.
* **No past scheduling.**  Real time cannot rewind, so ``schedule_at``
  with a deadline already behind ``now`` clamps to "immediately"
  instead of raising like the simulator (joins started "at t=0" a few
  microseconds after construction must not crash).  Negative relative
  delays are still programming errors and raise.

Messages cross real sockets through
:class:`~repro.net.datagram.DatagramTransport` (one UDP socket per
node, framed in the :mod:`repro.runtime.codec` wire format) -- or stay
in-process through the in-memory transport, interchangeably.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.runtime.interface import (
    Mailbox,
    SchedulingError,
    WallClockBudgetExceeded,
)

_PENDING, _CANCELLED, _DONE = 0, 1, 2


class _ScheduledAction:
    """One scheduled callback: deadline, payload, and cancel state."""

    __slots__ = ("runtime", "action", "payload", "state", "handle")

    def __init__(
        self,
        runtime: "AsyncioRuntime",
        action: Callable[..., None],
        payload: Any,
    ):
        self.runtime = runtime
        self.action = action
        self.payload = payload
        self.state = _PENDING
        #: The loop's call_later handle (None once expired).
        self.handle: Optional[asyncio.TimerHandle] = None

    @property
    def cancelled(self) -> bool:
        return self.state == _CANCELLED

    def cancel(self) -> None:
        """Cancel before the action runs (idempotent; no-op after)."""
        if self.state != _PENDING:
            return
        self.state = _CANCELLED
        if self.handle is not None:
            self.handle.cancel()
        self.runtime._outstanding -= 1

    def fire(self) -> None:
        """Execute the action (dispatcher only)."""
        self.state = _DONE
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)


class AsyncioRuntime:
    """Wall-clock runtime over a private asyncio event loop.

    Satisfies the :class:`~repro.runtime.interface.Runtime` contract.
    The loop is owned by this object (created eagerly, never installed
    as the thread's current loop) and should be released with
    :meth:`close` -- or use the runtime as a context manager.
    """

    #: Runtime-contract tag (the CLI's ``--runtime asyncio``).
    name = "asyncio"

    def __init__(self, time_scale: float = 0.001):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.time_scale = time_scale
        self._loop = asyncio.new_event_loop()
        self._epoch = self._loop.time()
        self._mailbox = Mailbox()
        self._outstanding = 0  # scheduled, neither cancelled nor run
        self._events_fired = 0
        self._running = False
        self._wakeup: Optional[asyncio.Event] = None
        #: Observability hook, same shape as the simulator's: called as
        #: ``cb(now, pending)`` after each executed action.
        self.on_event_fired: Optional[Callable[[float, int], None]] = None

    # -- Clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Wall-clock time since construction, in protocol units."""
        return (self._loop.time() - self._epoch) / self.time_scale

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The private event loop, for I/O adapters that must live on
        it (the UDP :class:`~repro.net.datagram.DatagramTransport`
        creates its socket endpoint here so datagram callbacks and the
        dispatcher never race)."""
        return self._loop

    def kick(self) -> None:
        """Wake the dispatcher so it re-examines quiescence.

        Loop callbacks that retire pending work *outside* a scheduled
        action -- e.g. a datagram handler cancelling a retransmission
        timer when an ack lands -- must call this, otherwise a ``run()``
        blocked on "outstanding > 0, mailbox empty" would sleep through
        the transition to quiescence.
        """
        if self._wakeup is not None:
            self._wakeup.set()

    # -- Timers ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> _ScheduledAction:
        """Run ``action`` ``delay`` protocol-time units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past: {delay}")
        item = _ScheduledAction(self, action, payload)
        item.handle = self._loop.call_later(
            delay * self.time_scale, self._expire, item
        )
        self._outstanding += 1
        return item

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> _ScheduledAction:
        """Run ``action`` at absolute protocol time ``time`` (clamped
        to "immediately" when the deadline has already passed)."""
        return self.schedule(max(0.0, time - self.now), action, payload)

    def _expire(self, item: _ScheduledAction) -> None:
        """call_later callback: move the item into the mailbox."""
        item.handle = None
        if item.state != _PENDING:
            return
        self._mailbox.put(item)
        if self._wakeup is not None:
            self._wakeup.set()

    # -- observability --------------------------------------------------

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Actions scheduled (or due in the mailbox) but not yet run."""
        return self._outstanding

    def add_event_listener(
        self, listener: Callable[[float, int], None]
    ) -> None:
        """Chain ``listener`` onto :attr:`on_event_fired` (the same
        contract as :meth:`repro.sim.scheduler.Simulator.add_event_listener`)."""
        previous = self.on_event_fired
        if previous is None:
            self.on_event_fired = listener
            return

        def chained(now: float, pending: int) -> None:
            previous(now, pending)
            listener(now, pending)

        self.on_event_fired = chained

    # -- run loop -------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wall_budget: Optional[float] = None,
    ) -> int:
        """Dispatch actions until quiescence; returns actions executed.

        ``until`` bounds the run in protocol time (remaining timers stay
        scheduled for a later ``run``); ``max_events`` bounds the number
        of actions; ``wall_budget`` (seconds of real time) raises
        :class:`~repro.runtime.interface.WallClockBudgetExceeded` if
        the system has not quiesced in time.
        """
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        try:
            return self._loop.run_until_complete(
                self._drain(until, max_events, wall_budget)
            )
        finally:
            self._running = False

    async def _drain(
        self,
        until: Optional[float],
        max_events: Optional[int],
        wall_budget: Optional[float],
    ) -> int:
        loop = self._loop
        self._wakeup = asyncio.Event()
        budget_deadline = (
            loop.time() + wall_budget if wall_budget is not None else None
        )
        fired = 0
        try:
            while True:
                while self._mailbox:
                    if max_events is not None and fired >= max_events:
                        return fired
                    if until is not None and self.now > until:
                        return fired
                    item = self._mailbox.pop()
                    if item.state != _PENDING:
                        continue
                    self._outstanding -= 1
                    item.fire()
                    fired += 1
                    self._events_fired += 1
                    listener = self.on_event_fired
                    if listener is not None:
                        listener(self.now, self._outstanding)
                    if (
                        budget_deadline is not None
                        and loop.time() > budget_deadline
                    ):
                        self._budget_exceeded(wall_budget)
                if self._outstanding == 0:
                    return fired
                if max_events is not None and fired >= max_events:
                    return fired
                timeout = None
                if budget_deadline is not None:
                    timeout = budget_deadline - loop.time()
                    if timeout <= 0:
                        self._budget_exceeded(wall_budget)
                if until is not None:
                    to_until = (until - self.now) * self.time_scale
                    if to_until <= 0:
                        return fired
                    timeout = (
                        to_until if timeout is None
                        else min(timeout, to_until)
                    )
                self._wakeup.clear()
                try:
                    if timeout is None:
                        await self._wakeup.wait()
                    else:
                        await asyncio.wait_for(
                            self._wakeup.wait(), timeout
                        )
                except asyncio.TimeoutError:
                    if (
                        budget_deadline is not None
                        and loop.time() >= budget_deadline
                    ):
                        self._budget_exceeded(wall_budget)
                    # otherwise the `until` bound elapsed; the loop
                    # re-checks and returns on the next iteration
        finally:
            self._wakeup = None

    def _budget_exceeded(self, wall_budget: Optional[float]) -> None:
        raise WallClockBudgetExceeded(
            f"network did not quiesce within {wall_budget}s of wall "
            f"clock ({self._outstanding} actions still pending at "
            f"protocol time {self.now:.1f})"
        )

    def quiesced(self) -> bool:
        """True when no scheduled action remains pending."""
        return self._outstanding == 0

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the private event loop."""
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "AsyncioRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["AsyncioRuntime"]
