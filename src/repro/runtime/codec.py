"""UDP-ready wire codec for protocol messages.

The real-time runtime delivers messages in-process today, but the next
step on the roadmap -- one UDP socket per node -- needs every protocol
message to round-trip through bytes.  This module provides that wire
format now, so the asyncio runtime is *UDP-ready*: a compact JSON
envelope ``{"t": <type_name>, "f": {<slot>: <value>, ...}}`` encoded as
UTF-8, with tagged encodings for the protocol's value types
(:class:`~repro.ids.digits.NodeId`, :class:`~repro.routing.entry.NeighborState`,
table entries, tuples, frozensets).

Encoding is generic over ``__slots__`` so every current and future
:class:`~repro.network.message.Message` subclass works without a
per-type schema, provided its fields are built from the supported
value types.  Decoding rebuilds the instance without calling
``__init__`` (constructors differ per type), then restores each slot.

The causal-stamping ids (``msg_id``/``parent_id``/``trace_id``) are
part of the envelope, so distributed traces survive the wire.  They
are the one *optional* part of it: a peer built before causal
stamping (or sending with tracing off) omits them, and decoding
defaults them to ``None`` instead of raising -- the protocol payload
must not depend on the observability payload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Type

from repro.ids.digits import NodeId
from repro.network.message import Message

#: Modules whose Message subclasses belong to the wire protocol.
MESSAGE_MODULES = (
    "repro.protocol.messages",
    "repro.protocol.leave",
    "repro.recovery.messages",
    "repro.optimize.messages",
)

#: Practical datagram ceiling (bytes); encode() warns past it via
#: :class:`OversizedMessageError` only when asked to enforce it.
MAX_DATAGRAM_BYTES = 65507

#: Slots carrying causal-stamping identity rather than protocol
#: payload.  Optional on the wire: omitted when ``None`` (tracing
#: off), defaulted to ``None`` when absent (frames from older peers).
CAUSAL_SLOTS = frozenset(("msg_id", "parent_id", "trace_id"))


class CodecError(ValueError):
    """A value or message the codec cannot (de)serialize."""


class OversizedMessageError(CodecError):
    """An encoded message exceeds the UDP datagram ceiling."""


class MalformedWireError(CodecError):
    """Bytes that do not parse as a wire envelope: invalid UTF-8 or
    JSON (e.g. a truncated datagram), a non-object envelope, or an
    envelope missing its ``t``/``f`` keys or a declared slot."""


class UnknownMessageTypeError(CodecError):
    """A wire envelope names a message type the registry does not
    know.  Distinct from :class:`MalformedWireError`: the bytes parsed
    fine, but the peer speaks a newer (or foreign) protocol."""

    def __init__(self, type_name: str):
        super().__init__(f"unknown message type on the wire: {type_name}")
        self.type_name = type_name


class UnknownWireTagError(CodecError):
    """A tagged value (``$id``/``$en``/``$nt``/...) the decoder does
    not recognize: either the tag itself is unknown or it names an
    enum / named-tuple type this build does not define."""

    def __init__(self, tag: str, detail: str):
        super().__init__(f"unknown wire tag {tag!r}: {detail}")
        self.tag = tag


def _walk_subclasses(cls: Type[Message]) -> Iterator[Type[Message]]:
    for sub in cls.__subclasses__():
        yield sub
        yield from _walk_subclasses(sub)


_registry: Optional[Dict[str, Type[Message]]] = None


def message_registry(refresh: bool = False) -> Dict[str, Type[Message]]:
    """All concrete wire message types, keyed by ``type_name``.

    Imports :data:`MESSAGE_MODULES` (idempotent) and walks the
    :class:`~repro.network.message.Message` subclass tree.  Classes
    that do not declare their own ``type_name`` (abstract bases like
    ``_TableMessage``) are skipped, and so is any class defined
    outside :data:`MESSAGE_MODULES` -- ad-hoc subclasses (test fakes,
    experiment probes) must not shadow the wire protocol's types.
    """
    global _registry
    if _registry is not None and not refresh:
        return _registry
    import importlib

    for module in MESSAGE_MODULES:
        importlib.import_module(module)
    registry: Dict[str, Type[Message]] = {}
    for cls in _walk_subclasses(Message):
        if "type_name" in cls.__dict__ and cls.__module__ in MESSAGE_MODULES:
            registry[cls.type_name] = cls
    _registry = registry
    return registry


def _all_slots(cls: type) -> List[str]:
    """Instance slots across the MRO, base-class first."""
    slots: List[str] = []
    for klass in reversed(cls.__mro__):
        slots.extend(klass.__dict__.get("__slots__", ()))
    return slots


# -- value encoding ---------------------------------------------------------


def _encode_value(value: Any) -> Any:
    """Encode one protocol value into its JSON-ready tagged form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, NodeId):
        return {"$id": [list(value.digits), value.base]}
    # NeighborState / NodeStatus and other string-valued enums.
    value_cls = type(value)
    if hasattr(value_cls, "__members__") and hasattr(value, "value"):
        return {"$en": [value_cls.__name__, value.value]}
    if isinstance(value, tuple):
        # Covers TableEntry (a NamedTuple) too: it decodes as a plain
        # tuple, which is all the receiving handlers index into after
        # snapshot_view(); NamedTuple field access is reconstructed
        # below when the tuple type is registered.
        if hasattr(value, "_fields"):
            return {"$nt": [
                type(value).__name__,
                [_encode_value(v) for v in value],
            ]}
        return {"$tu": [_encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        encoded = [_encode_value(v) for v in value]
        encoded.sort(key=repr)  # deterministic wire form
        return {"$fs": encoded}
    raise CodecError(
        f"cannot encode value of type {type(value).__name__}: {value!r}"
    )


def _named_tuple_types() -> Dict[str, type]:
    from repro.routing.table import TableEntry

    return {"TableEntry": TableEntry}


def _enum_types() -> Dict[str, type]:
    from repro.protocol.status import NodeStatus
    from repro.routing.entry import NeighborState

    return {"NeighborState": NeighborState, "NodeStatus": NodeStatus}


def _decode_value(value: Any) -> Any:
    """Decode one JSON value, expanding codec tags back into protocol
    objects (raises :class:`UnknownWireTagError` on unknown tags)."""
    if not isinstance(value, dict):
        return value
    if "$id" in value:
        digits, base = value["$id"]
        return NodeId(tuple(digits), base)
    if "$en" in value:
        name, member = value["$en"]
        try:
            return _enum_types()[name](member)
        except KeyError:
            raise UnknownWireTagError("$en", f"no such enum type: {name}")
    if "$nt" in value:
        name, items = value["$nt"]
        try:
            cls = _named_tuple_types()[name]
        except KeyError:
            raise UnknownWireTagError(
                "$nt", f"no such named tuple type: {name}"
            )
        return cls(*[_decode_value(v) for v in items])
    if "$tu" in value:
        return tuple(_decode_value(v) for v in value["$tu"])
    if "$fs" in value:
        return frozenset(_decode_value(v) for v in value["$fs"])
    tags = ", ".join(sorted(k for k in value if k.startswith("$")))
    raise UnknownWireTagError(tags or "<none>", f"in value {value!r}")


#: Public aliases of the value (de)serializers, for layers (the
#: real-wire control protocol) that carry protocol values -- NodeIds,
#: table entries -- outside a Message envelope.
encode_value = _encode_value
decode_value = _decode_value


# -- message encoding -------------------------------------------------------


def message_to_obj(message: Message) -> Dict[str, Any]:
    """The JSON-ready envelope ``{"t": ..., "f": {...}}`` for
    ``message`` (the dict the byte form serializes).  Layers that nest
    protocol messages inside a larger datagram -- the real-wire frame
    format of :mod:`repro.net.wire` -- embed this object directly
    instead of double-encoding JSON text."""
    fields = {}
    for slot in _all_slots(type(message)):
        value = getattr(message, slot)
        if value is None and slot in CAUSAL_SLOTS:
            continue  # tracing off: keep the frame minimal
        fields[slot] = _encode_value(value)
    return {"t": message.type_name, "f": fields}


def message_from_obj(envelope: Any) -> Message:
    """Rebuild a message from its envelope object (the inverse of
    :func:`message_to_obj`)."""
    if not isinstance(envelope, dict):
        raise MalformedWireError(
            f"message envelope must be an object, got "
            f"{type(envelope).__name__}"
        )
    try:
        type_name = envelope["t"]
        fields = envelope["f"]
    except KeyError as exc:
        raise MalformedWireError(
            f"message envelope missing key {exc.args[0]!r}"
        ) from exc
    try:
        cls = message_registry()[type_name]
    except KeyError:
        raise UnknownMessageTypeError(type_name) from None
    message = cls.__new__(cls)
    for slot in _all_slots(cls):
        try:
            value = fields[slot]
        except (KeyError, TypeError):
            if slot in CAUSAL_SLOTS:
                object.__setattr__(message, slot, None)
                continue
            raise MalformedWireError(
                f"{type_name} wire form missing field {slot!r}"
            ) from None
        object.__setattr__(message, slot, _decode_value(value))
    return message


def encode_message(
    message: Message, enforce_datagram_limit: bool = False
) -> bytes:
    """Serialize ``message`` to its UTF-8 wire form."""
    wire = json.dumps(
        message_to_obj(message),
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    if enforce_datagram_limit and len(wire) > MAX_DATAGRAM_BYTES:
        raise OversizedMessageError(
            f"{message.type_name} encodes to {len(wire)} bytes "
            f"(> {MAX_DATAGRAM_BYTES})"
        )
    return wire


def decode_message(wire: bytes) -> Message:
    """Rebuild a :class:`~repro.network.message.Message` from its wire
    form (the inverse of :func:`encode_message`).

    Raises :class:`MalformedWireError` for bytes that do not parse
    (truncated datagrams included), :class:`UnknownMessageTypeError`
    for a well-formed envelope naming an unregistered type, and
    :class:`UnknownWireTagError` for unrecognized tagged values."""
    try:
        envelope = json.loads(wire.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise MalformedWireError(
            f"undecodable wire message ({len(wire)} bytes): {exc}"
        ) from exc
    return message_from_obj(envelope)


__all__ = [
    "CAUSAL_SLOTS",
    "CodecError",
    "MAX_DATAGRAM_BYTES",
    "MESSAGE_MODULES",
    "MalformedWireError",
    "OversizedMessageError",
    "UnknownMessageTypeError",
    "UnknownWireTagError",
    "decode_message",
    "decode_value",
    "encode_message",
    "encode_value",
    "message_from_obj",
    "message_registry",
    "message_to_obj",
]
