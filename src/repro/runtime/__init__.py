"""Pluggable execution runtimes for the sans-io protocol core.

The protocol stack (:mod:`repro.core`, :mod:`repro.protocol`,
:mod:`repro.network`) never touches an event loop, a socket, or a
clock directly; everything it needs from its execution environment is
the small contract defined in :mod:`repro.runtime.interface` (a Clock,
Timers, and -- for real-time runtimes -- a Mailbox).  Two adapters
implement that contract:

* :class:`~repro.runtime.virtual.VirtualTimeRuntime` -- the
  discrete-event simulator (:mod:`repro.sim`) behind the runtime
  interface.  Deterministic, virtual-time, the substrate of every
  experiment and golden trace.
* :class:`~repro.runtime.realtime.AsyncioRuntime` -- wall-clock
  execution on an asyncio event loop: timers are ``call_later``
  deadlines, deliveries drain through a FIFO :class:`Mailbox` in a
  single dispatcher task, and ``run()`` blocks until the network
  quiesces (or a wall-clock budget expires).

The adapters are imported lazily by :func:`create_runtime` so that
importing :mod:`repro.runtime` (as the protocol layer does for type
contracts) never pulls in :mod:`repro.sim` or :mod:`asyncio`.
"""

from repro.runtime.interface import (
    Clock,
    Mailbox,
    Runtime,
    SchedulingError,
    TimerHandle,
    Timers,
    WallClockBudgetExceeded,
)

#: Runtime kinds accepted by :func:`create_runtime` (and the CLI's
#: ``--runtime`` flag).
RUNTIME_KINDS = ("sim", "asyncio")


def create_runtime(kind: str = "sim", **options) -> Runtime:
    """Build a runtime adapter by name.

    ``"sim"`` returns a fresh
    :class:`~repro.runtime.virtual.VirtualTimeRuntime`; ``"asyncio"``
    returns an :class:`~repro.runtime.realtime.AsyncioRuntime` (keyword
    ``options`` such as ``time_scale`` are forwarded to the adapter).
    The adapter modules are imported on first use, keeping this package
    free of static :mod:`repro.sim` / :mod:`asyncio` dependencies.
    """
    if kind == "sim":
        from repro.runtime.virtual import VirtualTimeRuntime

        return VirtualTimeRuntime(**options)
    if kind == "asyncio":
        from repro.runtime.realtime import AsyncioRuntime

        return AsyncioRuntime(**options)
    raise ValueError(
        f"unknown runtime kind {kind!r}; expected one of {RUNTIME_KINDS}"
    )


__all__ = [
    "Clock",
    "Mailbox",
    "RUNTIME_KINDS",
    "Runtime",
    "SchedulingError",
    "TimerHandle",
    "Timers",
    "WallClockBudgetExceeded",
    "create_runtime",
]
