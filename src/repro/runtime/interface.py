"""The runtime contract the protocol core runs against.

A *runtime* is everything the protocol stack is allowed to ask of its
execution environment, and nothing more:

* a **Clock** -- ``now``, a monotonically non-decreasing float in
  *protocol time units* (virtual time under the simulator, scaled
  wall-clock time under asyncio);
* **Timers** -- ``schedule(delay, action, payload=None)`` returning a
  cancelable :class:`TimerHandle` (``schedule_at`` for an absolute
  deadline);
* a drivable loop -- ``run()`` executes due actions until the system
  quiesces, ``quiesced()`` reports whether anything is still pending,
  and ``add_event_listener`` exposes the per-action observability hook
  the obs layer (SchedulerProbe, LiveAuditor) rides on.

Runtimes guarantee **handler atomicity**: scheduled actions run one at
a time, never concurrently, so protocol handlers need no locking.
Real-time runtimes achieve this by draining a FIFO :class:`Mailbox`
from a single dispatcher task.

The contract is expressed as :class:`typing.Protocol` types so the
existing simulator satisfies it structurally -- no inheritance, no
:mod:`repro.sim` import anywhere in this module.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)


class SchedulingError(RuntimeError):
    """A scheduling request the runtime cannot honor (e.g. a negative
    delay under a runtime that cannot rewind its clock)."""


class WallClockBudgetExceeded(RuntimeError):
    """A real-time run exceeded its wall-clock budget before the
    network quiesced.  Raised instead of returning so CI smoke jobs
    fail loudly rather than reporting a half-finished run."""


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled action that can be cancelled before it fires.

    ``cancel()`` is idempotent; cancelling after the action ran is a
    no-op.  ``cancelled`` reports whether a cancel landed in time.
    """

    cancelled: bool

    def cancel(self) -> None:
        """Prevent the action from firing (no-op if it already did)."""


@runtime_checkable
class Clock(Protocol):
    """Read-only access to the runtime's notion of time."""

    @property
    def now(self) -> float:
        """Current time in protocol time units."""


@runtime_checkable
class Timers(Protocol):
    """Deferred execution of callbacks."""

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> TimerHandle:
        """Run ``action`` (with ``payload`` if given) ``delay`` time
        units from now; returns a cancelable handle."""

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> TimerHandle:
        """Run ``action`` at absolute time ``time``."""


@runtime_checkable
class Runtime(Clock, Timers, Protocol):
    """The full contract: Clock + Timers + a drivable loop.

    :class:`~repro.runtime.virtual.VirtualTimeRuntime` and
    :class:`~repro.runtime.realtime.AsyncioRuntime` both satisfy this
    structurally; so does the bare :class:`repro.sim.scheduler.Simulator`
    (minus the ``name`` tag), which is what keeps every pre-refactor
    test constructing ``Transport(Simulator(), ...)`` working.
    """

    #: Short tag identifying the adapter ("sim", "asyncio").
    name: str

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute due actions until quiescence (or a bound); returns
        the number of actions executed by this call."""

    def quiesced(self) -> bool:
        """True when no scheduled action remains pending."""

    def add_event_listener(
        self, listener: Callable[[float, int], None]
    ) -> None:
        """Chain ``listener(now, pending)`` to fire after every
        executed action (observability hook)."""


class Mailbox:
    """A FIFO of due-but-not-yet-executed deliveries.

    Real-time runtimes decouple *when a timer fires* from *when its
    action runs*: expiry callbacks only append to the mailbox, and a
    single dispatcher drains it in arrival order.  That serialization
    is what gives real-time runtimes the same handler-atomicity
    guarantee the discrete-event simulator provides by construction.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()

    def put(self, item: Any) -> None:
        """Append ``item`` to the tail of the queue."""
        self._items.append(item)

    def pop(self) -> Any:
        """Remove and return the head of the queue (raises IndexError
        when empty)."""
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


__all__ = [
    "Clock",
    "Mailbox",
    "Runtime",
    "SchedulingError",
    "TimerHandle",
    "Timers",
    "WallClockBudgetExceeded",
]
