"""C-set trees: the paper's conceptual foundation (Sections 3 and 5.1).

C-set trees are *conceptual* structures -- the paper stresses they are
"not implemented in any node".  Here they are implemented **outside**
the protocol, as analysis artifacts computed from global snapshots, and
used to state and test the propositions behind the consistency proof:

* :mod:`~repro.csettree.notification` -- notification sets
  ``V^Notify_x`` (Definition 3.4) and grouping of joiners by
  notification suffix.
* :mod:`~repro.csettree.classify` -- sequential / concurrent /
  independent / dependent join classification (Definitions 3.2-3.6).
* :mod:`~repro.csettree.template` -- the tree template ``C(V, W)``
  (Definition 3.9).
* :mod:`~repro.csettree.realized` -- the realized tree ``cset(V, W)``
  (Definition 5.1), computed from a snapshot of neighbor tables.
* :mod:`~repro.csettree.conditions` -- conditions (1)-(3) of
  Section 3.3 (Propositions 5.1-5.3).
"""

from repro.csettree.classify import (
    JoiningPeriod,
    joins_are_concurrent,
    joins_are_dependent,
    joins_are_independent,
    joins_are_sequential,
    partition_into_dependent_groups,
)
from repro.csettree.conditions import (
    check_condition1,
    check_condition2,
    check_condition3,
)
from repro.csettree.notification import (
    group_by_notification_suffix,
    notification_set,
    notification_suffix,
)
from repro.csettree.realized import RealizedCSetTree, build_realized_tree
from repro.csettree.template import CSetTreeTemplate, build_template

__all__ = [
    "CSetTreeTemplate",
    "JoiningPeriod",
    "RealizedCSetTree",
    "build_realized_tree",
    "build_template",
    "check_condition1",
    "check_condition2",
    "check_condition3",
    "group_by_notification_suffix",
    "joins_are_concurrent",
    "joins_are_dependent",
    "joins_are_independent",
    "joins_are_sequential",
    "notification_set",
    "notification_suffix",
    "partition_into_dependent_groups",
]
