"""Notification sets (Definition 3.4) and joiner grouping.

``V^Notify_x`` is the suffix set ``V_{x[k-1]...x[0]}`` where ``k`` is
maximal such that some node of ``V`` shares the rightmost ``k`` digits
with ``x`` (so no node shares ``k+1``).  Joiners with the same
notification *suffix* belong to the same C-set tree; the trees of all
joiners form a forest (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.ids.digits import NodeId
from repro.ids.suffix import (
    SuffixIndex,
    notification_set as _notification_set,
    notification_suffix_len,
)

Suffix = Tuple[int, ...]


def notification_suffix(joiner: NodeId, existing: Iterable[NodeId]) -> Suffix:
    """The suffix ``omega`` with ``V^Notify_x = V_omega``."""
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    k = notification_suffix_len(joiner, index)
    return joiner.suffix(k)


def notification_set(joiner: NodeId, existing: Iterable[NodeId]) -> Set[NodeId]:
    """``V^Notify_x`` (Definition 3.4)."""
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    return _notification_set(joiner, index)


def group_by_notification_suffix(
    joiners: Iterable[NodeId], existing: Iterable[NodeId]
) -> Dict[Suffix, List[NodeId]]:
    """Partition joiners into the paper's ``G(V_omega)`` groups: joiners
    sharing one notification suffix belong to one C-set tree."""
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    groups: Dict[Suffix, List[NodeId]] = {}
    for joiner in joiners:
        key = joiner.suffix(notification_suffix_len(joiner, index))
        groups.setdefault(key, []).append(joiner)
    return groups
