"""The C-set tree template ``C(V, W)`` (Definition 3.9).

Given ``V`` and a set ``W`` of joiners whose notification sets all
equal ``V_omega``, the template is a trie over the joiners' IDs rooted
at ``V_omega``: the set ``C_{l_1 . omega}`` is a child of the root when
``W_{l_1 . omega}`` is non-empty, and ``C_{l_j ... l_1 . omega}`` is a
child of ``C_{l_{j-1} ... l_1 . omega}`` when ``W`` has a member with
that suffix.  "Given V and W, the tree template is determined."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ids.digits import NodeId
from repro.ids.suffix import SuffixIndex, suffix_str
from repro.csettree.notification import notification_suffix

Suffix = Tuple[int, ...]


class CSetTreeTemplate:
    """The template: a set of C-set suffixes arranged in a trie.

    ``root_suffix`` is ``omega`` (the root itself, ``V_omega``, is not
    a C-set).  ``suffixes`` contains every C-set suffix in the tree.
    """

    def __init__(self, root_suffix: Suffix, members: Sequence[NodeId]):
        self.root_suffix = tuple(root_suffix)
        self.members: List[NodeId] = list(members)
        self.suffixes: Set[Suffix] = set()
        k = len(self.root_suffix)
        for node in self.members:
            if not node.has_suffix(self.root_suffix):
                raise ValueError(
                    f"{node} does not extend the root suffix "
                    f"{suffix_str(self.root_suffix) or '(empty)'}"
                )
            for length in range(k + 1, node.num_digits + 1):
                self.suffixes.add(node.suffix(length))

    def children(self, suffix: Suffix) -> List[Suffix]:
        """Child C-set suffixes of ``suffix`` (or of the root when the
        root suffix is given), sorted by extending digit."""
        suffix = tuple(suffix)
        out = [
            candidate
            for candidate in self.suffixes
            if len(candidate) == len(suffix) + 1
            and candidate[: len(suffix)] == suffix
        ]
        return sorted(out, key=lambda s: s[-1])

    def parent(self, suffix: Suffix) -> Suffix:
        """The parent C-set suffix (the root has no parent)."""
        suffix = tuple(suffix)
        if suffix == self.root_suffix:
            raise ValueError("the root has no parent")
        return suffix[:-1]

    def siblings(self, suffix: Suffix) -> List[Suffix]:
        """Sibling C-sets of ``suffix`` (condition (3) of Section 3.3
        quantifies over these)."""
        suffix = tuple(suffix)
        return [s for s in self.children(self.parent(suffix)) if s != suffix]

    def leaves(self) -> List[Suffix]:
        """Leaf C-sets; each corresponds to (at least) one member ID."""
        return sorted(
            (
                suffix
                for suffix in self.suffixes
                if not self.children(suffix)
            ),
            key=lambda s: (len(s), s),
        )

    def path_to_root(self, node: NodeId) -> List[Suffix]:
        """C-set suffixes from the leaf whose suffix is ``node.ID``
        up to (excluding) the root."""
        if node not in self.members:
            raise ValueError(f"{node} is not a member of this tree")
        out = []
        for length in range(node.num_digits, len(self.root_suffix), -1):
            out.append(node.suffix(length))
        return out

    def expected_members(self, suffix: Suffix) -> Set[NodeId]:
        """``W_{suffix}``: the members carrying ``suffix``."""
        suffix = tuple(suffix)
        return {node for node in self.members if node.has_suffix(suffix)}

    def render(self) -> str:
        """ASCII rendering (cf. the paper's Figure 2(b))."""
        lines = [f"root: V_{suffix_str(self.root_suffix) or '(all)'}"]

        def walk(suffix: Suffix, depth: int) -> None:
            for child in self.children(suffix):
                lines.append("  " * depth + f"C_{suffix_str(child)}")
                walk(child, depth + 1)

        walk(self.root_suffix, 1)
        return "\n".join(lines)


def build_template(
    existing: Iterable[NodeId], joiners: Sequence[NodeId]
) -> CSetTreeTemplate:
    """Build ``C(V, W)`` for joiners sharing one notification set.

    Raises if the joiners do not share a single notification suffix
    (they would then belong to different trees of the forest; use
    :func:`repro.csettree.notification.group_by_notification_suffix`
    first).
    """
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    if not joiners:
        raise ValueError("W must be non-empty")
    suffixes = {notification_suffix(j, index) for j in joiners}
    if len(suffixes) != 1:
        raise ValueError(
            "joiners have different notification suffixes: "
            + ", ".join(suffix_str(s) or "(empty)" for s in sorted(suffixes))
        )
    return CSetTreeTemplate(next(iter(suffixes)), joiners)
