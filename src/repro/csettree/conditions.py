"""Conditions (1)-(3) of Section 3.3 (Propositions 5.1-5.3).

At the end of all joins these must hold for the network to be
consistent:

1. ``cset(V, W)`` has the template's structure and no empty C-set.
2. Every node of the root set ``V_omega`` stores, for each child C-set
   of the root, some node with that C-set's suffix.
3. For every joiner ``x``, and every C-set on the path from the leaf
   whose suffix is ``x.ID`` up to the root, ``x`` stores a node with
   the suffix of each *sibling* of that C-set.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Tuple

from repro.ids.digits import NodeId
from repro.ids.suffix import SuffixIndex, suffix_str
from repro.csettree.realized import RealizedCSetTree
from repro.csettree.template import CSetTreeTemplate
from repro.routing.table import NeighborTable


def check_condition1(
    template: CSetTreeTemplate, realized: RealizedCSetTree
) -> List[str]:
    """Condition (1): same structure, no empty C-set.  Returns a list
    of human-readable violations (empty list == holds)."""
    problems: List[str] = []
    for suffix in template.suffixes:
        members = realized.cset(suffix)
        if not members:
            problems.append(
                f"C-set {suffix_str(suffix)} is empty in cset(V, W)"
            )
    for suffix in realized.non_empty_suffixes():
        if suffix not in template.suffixes:
            problems.append(
                f"realized C-set {suffix_str(suffix)} is not in the template"
            )
    # When condition (1) holds, each leaf contains the joiner whose ID
    # is the leaf suffix, hence the union of C-sets is W (Section 3.3).
    if not problems:
        union = realized.union_of_csets()
        missing = set(template.members) - union
        if missing:
            problems.append(
                "union of C-sets misses joiners: "
                + ", ".join(str(n) for n in sorted(missing))
            )
    return problems


def check_condition2(
    template: CSetTreeTemplate,
    existing: Iterable[NodeId],
    tables: Mapping[NodeId, NeighborTable],
) -> List[str]:
    """Condition (2): each root-set node stores a suitable node for
    every child C-set of the root."""
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    omega = template.root_suffix
    k = len(omega)
    problems: List[str] = []
    for member in index.nodes_with(omega):
        table = tables[member]
        for child in template.children(omega):
            digit = child[-1]
            stored = table.get(k, digit)
            if stored is None or not stored.has_suffix(child):
                problems.append(
                    f"root node {member} lacks a ({k},{digit})-neighbor "
                    f"with suffix {suffix_str(child)}"
                )
    return problems


def check_condition3(
    template: CSetTreeTemplate,
    tables: Mapping[NodeId, NeighborTable],
) -> List[str]:
    """Condition (3): every joiner stores a node for each sibling C-set
    along its leaf-to-root path."""
    problems: List[str] = []
    for joiner in template.members:
        table = tables[joiner]
        for suffix in template.path_to_root(joiner):
            for sibling in template.siblings(suffix):
                level = len(sibling) - 1
                digit = sibling[-1]
                stored = table.get(level, digit)
                if stored is None or not stored.has_suffix(sibling):
                    problems.append(
                        f"joiner {joiner} lacks a ({level},{digit})-neighbor "
                        f"with suffix {suffix_str(sibling)}"
                    )
    return problems
