"""Join classification (Definitions 3.2-3.6 and Lemma 5.5's grouping).

* **sequential** (Def 3.2): no two joining periods overlap.
* **concurrent** (Def 3.3): every joiner's period overlaps some other
  joiner's, and the union of periods covers ``[t^b, t^e]`` gaplessly.
* **independent** (Def 3.5): all notification sets pairwise disjoint.
* **dependent** (Def 3.6): every pair either intersects directly or is
  bridged by a third joiner whose notification set contains both.
* :func:`partition_into_dependent_groups` -- the construction in the
  proof of Lemma 5.5: split joiners into groups such that joins within
  a group are dependent and across groups are mutually independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.ids.digits import NodeId


@dataclass(frozen=True)
class JoiningPeriod:
    """The paper's ``[t^b_x, t^e_x]`` (Definition 3.1)."""

    node: NodeId
    begin: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError("joining period must not end before it begins")

    def overlaps(self, other: "JoiningPeriod") -> bool:
        """True iff the two closed intervals intersect."""
        return self.begin <= other.end and other.begin <= self.end


def joins_are_sequential(periods: Sequence[JoiningPeriod]) -> bool:
    """Definition 3.2: pairwise non-overlapping joining periods."""
    if len(periods) < 2:
        return False
    ordered = sorted(periods, key=lambda p: p.begin)
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.overlaps(later):
            return False
    return True


def joins_are_concurrent(periods: Sequence[JoiningPeriod]) -> bool:
    """Definition 3.3: every period overlaps another and the union of
    periods covers ``[min t^b, max t^e]`` without a gap."""
    if len(periods) < 2:
        return False
    for period in periods:
        if not any(
            period.overlaps(other)
            for other in periods
            if other is not period
        ):
            return False
    ordered = sorted(periods, key=lambda p: (p.begin, p.end))
    covered_until = ordered[0].end
    for period in ordered[1:]:
        if period.begin > covered_until:
            return False
        covered_until = max(covered_until, period.end)
    return True


def joins_are_independent(
    notify_sets: Dict[NodeId, Set[NodeId]]
) -> bool:
    """Definition 3.5: pairwise disjoint notification sets."""
    joiners = list(notify_sets)
    if len(joiners) < 2:
        return False
    for i, x in enumerate(joiners):
        for y in joiners[i + 1:]:
            if notify_sets[x] & notify_sets[y]:
                return False
    return True


def joins_are_dependent(
    notify_sets: Dict[NodeId, Set[NodeId]]
) -> bool:
    """Definition 3.6: each pair intersects or is bridged by a third
    joiner whose notification set contains both."""
    joiners = list(notify_sets)
    if len(joiners) < 2:
        return False
    for i, x in enumerate(joiners):
        for y in joiners[i + 1:]:
            if notify_sets[x] & notify_sets[y]:
                continue
            bridged = any(
                u != x
                and u != y
                and notify_sets[x] <= notify_sets[u]
                and notify_sets[y] <= notify_sets[u]
                for u in joiners
            )
            if not bridged:
                return False
    return True


def partition_into_dependent_groups(
    notify_sets: Dict[NodeId, Set[NodeId]]
) -> List[List[NodeId]]:
    """Lemma 5.5's grouping: connected components of the "related"
    relation (intersecting notification sets, or both contained in a
    third joiner's set).  Joins within a group are dependent; joins in
    different groups are mutually independent."""
    joiners = list(notify_sets)

    def related(x: NodeId, y: NodeId) -> bool:
        if notify_sets[x] & notify_sets[y]:
            return True
        return any(
            u != x
            and u != y
            and notify_sets[x] <= notify_sets[u]
            and notify_sets[y] <= notify_sets[u]
            for u in joiners
        )

    groups: List[List[NodeId]] = []
    remaining = list(joiners)
    while remaining:
        group = [remaining.pop(0)]
        changed = True
        while changed:
            changed = False
            for candidate in list(remaining):
                if any(related(candidate, member) for member in group):
                    group.append(candidate)
                    remaining.remove(candidate)
                    changed = True
        groups.append(group)
    return groups
