"""The realized C-set tree ``cset(V, W)`` (Definition 5.1).

Computed from a snapshot of neighbor tables (taken at ``t^e``, the end
of all joins):

* ``C_{l_1 . omega}`` = members of ``W_{l_1 . omega}`` stored as the
  ``(k, l_1)``-neighbor of at least one node of ``V_omega``;
* ``C_{l_j ... l_1 . omega}`` = members of ``W_{l_j ... l_1 . omega}``
  stored as the ``(k+j-1, l_j)``-neighbor of at least one node of the
  parent C-set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.ids.digits import NodeId
from repro.ids.suffix import SuffixIndex, suffix_str
from repro.csettree.template import CSetTreeTemplate
from repro.routing.table import NeighborTable

Suffix = Tuple[int, ...]


class RealizedCSetTree:
    """``cset(V, W)``: a mapping from C-set suffix to realized set."""

    def __init__(
        self,
        root_suffix: Suffix,
        root_set: Set[NodeId],
        csets: Dict[Suffix, Set[NodeId]],
    ):
        self.root_suffix = tuple(root_suffix)
        self.root_set = root_set
        self.csets = csets

    def cset(self, suffix: Suffix) -> Set[NodeId]:
        """The realized C-set for ``suffix`` (empty set if absent)."""
        return set(self.csets.get(tuple(suffix), ()))

    def non_empty_suffixes(self) -> Set[Suffix]:
        """Suffixes whose realized C-set is non-empty."""
        return {s for s, members in self.csets.items() if members}

    def union_of_csets(self) -> Set[NodeId]:
        """Union of all realized C-sets (equals W when condition (1) holds)."""
        out: Set[NodeId] = set()
        for members in self.csets.values():
            out |= members
        return out

    def render(self) -> str:
        """ASCII rendering (cf. the paper's Figure 2(c))."""
        lines = [
            f"root: V_{suffix_str(self.root_suffix) or '(all)'} = "
            + "{" + ", ".join(str(n) for n in sorted(self.root_set)) + "}"
        ]
        for suffix in sorted(self.csets, key=lambda s: (len(s), s)):
            members = ", ".join(str(n) for n in sorted(self.csets[suffix]))
            depth = len(suffix) - len(self.root_suffix)
            lines.append("  " * depth + f"C_{suffix_str(suffix)} = {{{members}}}")
        return "\n".join(lines)


def build_realized_tree(
    template: CSetTreeTemplate,
    existing: Iterable[NodeId],
    tables: Mapping[NodeId, NeighborTable],
) -> RealizedCSetTree:
    """Compute ``cset(V, W)`` from the template and a table snapshot.

    ``existing`` is ``V``; ``tables`` must cover ``V`` and ``W``.
    C-sets are computed top-down, level by level, exactly as in
    Definition 5.1.
    """
    index = existing if isinstance(existing, SuffixIndex) else SuffixIndex(existing)
    omega = template.root_suffix
    k = len(omega)
    root_set = index.nodes_with(omega)
    joiner_set = set(template.members)

    csets: Dict[Suffix, Set[NodeId]] = {}
    # Process template suffixes in order of increasing length so each
    # parent C-set is realized before its children.
    for suffix in sorted(template.suffixes, key=len):
        level = len(suffix) - 1  # the (k + j - 1) of Definition 5.1
        digit = suffix[-1]
        parent_suffix = suffix[:-1]
        if parent_suffix == omega:
            parents: Set[NodeId] = root_set
        else:
            parents = csets.get(parent_suffix, set())
        realized: Set[NodeId] = set()
        eligible = {
            node for node in joiner_set if node.has_suffix(suffix)
        }
        for parent in parents:
            stored = tables[parent].get(level, digit)
            if stored is not None and stored in eligible:
                realized.add(stored)
        csets[suffix] = realized
    return RealizedCSetTree(omega, root_set, csets)
