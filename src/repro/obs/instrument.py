"""Instrumentation glue between the obs layer and the simulator stack.

This module owns everything that *connects* tracing/metrics to the
running system, keeping the Tracer and MetricsRegistry themselves free
of protocol knowledge:

* :class:`Observability` -- the bundle (tracer + registry) threaded
  through :class:`~repro.protocol.join.JoinProtocolNetwork`.
* :class:`JoinObserver` -- turns the join state machine's phase
  transitions (``copying -> waiting -> notifying -> in_system``) into
  nested spans and a join-latency histogram.
* :class:`SchedulerProbe` -- samples the event queue depth into a
  gauge and histogram.
* :func:`collect_table_metrics` -- per-level neighbor-table fill
  gauges, computed from final tables.

To avoid an import cycle (``protocol.join`` imports this module), no
name from :mod:`repro.protocol` is imported here; phase observers read
the status' ``value``/``is_s_node`` attributes duck-typed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Span, Tracer


class Observability:
    """The bundle handed to instrumented components.

    ``tracer`` may be a :class:`~repro.obs.tracer.NullTracer` while
    ``metrics`` stays live -- that is the cheap configuration used by
    ``--metrics`` without ``--trace``.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def tracing(cls) -> "Observability":
        """Full instrumentation: live tracer plus registry."""
        return cls(tracer=Tracer())

    @classmethod
    def metrics_only(cls) -> "Observability":
        """Registry-backed metrics, tracing disabled (NullTracer)."""
        return cls(tracer=NullTracer())

    @property
    def tracing_enabled(self) -> bool:
        """Whether span/event recording is live."""
        return self.tracer.enabled


class JoinObserver:
    """Builds the join-lifecycle span tree from phase transitions.

    Per joining node: a root span ``join`` opened at ``begin_join``,
    one child span ``phase:<status>`` per protocol phase, closed and
    reopened at each transition.  When the node reaches *in_system*
    the root closes and the ``join_latency`` histogram gets the
    joining period t^e - t^b (Definition 3.1).
    """

    def __init__(self, obs: Observability):
        self.obs = obs
        self._live: Dict[Any, Tuple[Span, Optional[Span]]] = {}
        self._latency = obs.metrics.histogram("join_latency")
        self._phase_counter = obs.metrics.counter

    def on_phase(self, node_id: Any, status: Any, time: float) -> None:
        """Record ``node_id`` entering ``status`` at virtual ``time``.

        The first call for a node opens its root span; a transition to
        a status whose ``is_s_node`` is true closes it.
        """
        tracer = self.obs.tracer
        phase = getattr(status, "value", str(status))
        self._phase_counter("join_phase_transitions", phase=phase).inc()
        entry = self._live.get(node_id)
        if entry is None:
            root = tracer.start_span("join", time, node=str(node_id))
            phase_span = tracer.start_span(
                f"phase:{phase}", time, parent=root, node=str(node_id)
            )
            self._live[node_id] = (root, phase_span)
            return
        root, phase_span = entry
        if phase_span is not None:
            tracer.end_span(phase_span, time)
        if getattr(status, "is_s_node", False):
            tracer.end_span(root, time)
            self._latency.observe(time - root.start)
            del self._live[node_id]
        else:
            self._live[node_id] = (
                root,
                tracer.start_span(
                    f"phase:{phase}", time, parent=root, node=str(node_id)
                ),
            )

    def open_joins(self) -> int:
        """Joins begun but not yet *in_system* (0 after quiescence)."""
        return len(self._live)


class SchedulerProbe:
    """Samples the simulator's queue depth every ``sample_every`` events.

    Installed as :attr:`repro.sim.scheduler.Simulator.on_event_fired`;
    keeps a gauge with the latest depth and a histogram of sampled
    depths (the ISSUE's "scheduler queue depth" metric).
    """

    def __init__(self, metrics: MetricsRegistry, sample_every: int = 64):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self._since_sample = 0
        self._events = metrics.counter("sim_events_fired")
        self._depth_gauge = metrics.gauge("sim_queue_depth")
        self._depth_hist = metrics.histogram("sim_queue_depth_sampled")

    def __call__(self, time: float, pending: int) -> None:
        """The ``on_event_fired`` callback: count, and sample depth."""
        self._events.inc()
        self._since_sample += 1
        if self._since_sample >= self.sample_every:
            self._since_sample = 0
            self._depth_gauge.set(pending)
            self._depth_hist.observe(pending)


def instrument_scheduler(
    simulator: Any, obs: Observability, sample_every: int = 64
) -> SchedulerProbe:
    """Attach a :class:`SchedulerProbe` to ``simulator`` and return it."""
    probe = SchedulerProbe(obs.metrics, sample_every=sample_every)
    simulator.on_event_fired = probe
    return probe


def collect_table_metrics(
    tables: Dict[Any, Any], registry: MetricsRegistry
) -> Dict[int, float]:
    """Record per-level neighbor-table fill gauges from final tables.

    ``tables`` maps node IDs to
    :class:`~repro.routing.table.NeighborTable`; for each level the
    gauge ``table_fill{level=i}`` is set to the mean number of filled
    entries at that level across all tables.  Returns the per-level
    means keyed by level.
    """
    totals: Dict[int, int] = {}
    if not tables:
        return {}
    for table in tables.values():
        for entry in table.entries():
            totals[entry.level] = totals.get(entry.level, 0) + 1
    n = len(tables)
    means = {level: count / n for level, count in sorted(totals.items())}
    for level, mean in means.items():
        registry.gauge("table_fill", level=level).set(mean)
    registry.gauge("table_fill_nodes").set(n)
    return means
