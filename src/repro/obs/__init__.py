"""Observability: structured tracing and metrics for the simulator.

The paper's evaluation is an exercise in *counting* -- JoinNotiMsg per
joiner (Figure 15(b)), ``CpRstMsg + JoinWaitMsg <= d+1`` (Theorem 3),
bytes saved by message-size reduction (Section 6.2) -- and its
correctness argument lives in *interleavings* of the join phases.
This package makes both first-class:

* :class:`~repro.obs.tracer.Tracer` -- hierarchical spans over
  simulator virtual time (one ``join`` root per joiner, one
  ``phase:*`` child per protocol phase) plus point events
  (``message.send`` / ``message.deliver``).
* :class:`~repro.obs.metrics.MetricsRegistry` -- labelled counters,
  gauges and histograms; :class:`~repro.network.stats.MessageStats`
  is backed by one, so every legacy counter is also a metric.
* Exporters -- JSONL traces (round-trippable) and flat dict/CSV
  metrics snapshots.
* :class:`~repro.obs.tracer.NullTracer` -- the disabled path;
  instrumented components fall back to their original code so a
  run without observability pays (almost) nothing.

Typical use::

    from repro.obs import Observability, write_trace_jsonl

    obs = Observability.tracing()
    net = JoinProtocolNetwork.from_oracle(space, ids, obs=obs, seed=1)
    ...
    write_trace_jsonl(obs.tracer, "run.jsonl")
    print(obs.metrics.snapshot())
"""

from repro.obs.export import (
    metrics_to_csv,
    metrics_to_dict,
    read_trace_jsonl,
    trace_to_records,
    write_metrics_csv,
    write_trace_jsonl,
)
from repro.obs.instrument import (
    JoinObserver,
    Observability,
    SchedulerProbe,
    collect_table_metrics,
    instrument_scheduler,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    TracerError,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JoinObserver",
    "MetricsError",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "SchedulerProbe",
    "Span",
    "TraceEvent",
    "Tracer",
    "TracerError",
    "collect_table_metrics",
    "instrument_scheduler",
    "metrics_to_csv",
    "metrics_to_dict",
    "read_trace_jsonl",
    "trace_to_records",
    "write_metrics_csv",
    "write_trace_jsonl",
]
