"""Observability: structured tracing and metrics for the simulator.

The paper's evaluation is an exercise in *counting* -- JoinNotiMsg per
joiner (Figure 15(b)), ``CpRstMsg + JoinWaitMsg <= d+1`` (Theorem 3),
bytes saved by message-size reduction (Section 6.2) -- and its
correctness argument lives in *interleavings* of the join phases.
This package makes both first-class:

* :class:`~repro.obs.tracer.Tracer` -- hierarchical spans over
  simulator virtual time (one ``join`` root per joiner, one
  ``phase:*`` child per protocol phase) plus point events
  (``message.send`` / ``message.deliver``).
* :class:`~repro.obs.metrics.MetricsRegistry` -- labelled counters,
  gauges and histograms; :class:`~repro.network.stats.MessageStats`
  is backed by one, so every legacy counter is also a metric.
* Exporters -- JSONL traces (round-trippable) and flat dict/CSV
  metrics snapshots.
* :class:`~repro.obs.tracer.NullTracer` -- the disabled path;
  instrumented components fall back to their original code so a
  run without observability pays (almost) nothing.

On top of the recording tier sits the analysis tier:

* :class:`~repro.obs.causality.CausalForest` -- per-join causal
  message trees (every message is stamped with trace-id/parent-id at
  send) with virtual-time critical-path extraction.
* :mod:`~repro.obs.lifecycle` -- reconstructs each joiner's protocol
  state machine from phase spans and flags illegal transitions or
  stalls.
* :class:`~repro.obs.audit.LiveAuditor` -- samples Definition 3.8
  consistency and the Theorem 3/4/5 gates *during* the run
  (``repro join --audit``).
* :class:`~repro.obs.report.RunReport` -- ``repro report``: text /
  JSON / HTML analytics over a trace JSONL file.
* :mod:`~repro.obs.remote` -- distributed telemetry: per-daemon
  recording bundles (:class:`~repro.obs.remote.RemoteTelemetry`),
  NTP-style clock alignment (:class:`~repro.obs.remote.ClockSync`) and
  :func:`~repro.obs.remote.merge_traces`, which folds every daemon's
  trace into one stream the analysis tier consumes unchanged.

Typical use::

    from repro.obs import Observability, write_trace_jsonl

    obs = Observability.tracing()
    net = JoinProtocolNetwork.from_oracle(space, ids, obs=obs, seed=1)
    ...
    write_trace_jsonl(obs.tracer, "run.jsonl")
    print(obs.metrics.snapshot())
"""

from repro.obs.audit import (
    AuditConfig,
    AuditIncident,
    AuditReport,
    AuditSample,
    LiveAuditor,
)
from repro.obs.causality import CausalForest, CausalityError, MessageRecord
from repro.obs.export import (
    message_type_breakdown,
    message_type_csv,
    metrics_to_csv,
    metrics_to_dict,
    read_message_type_csv,
    read_trace_jsonl,
    trace_to_records,
    write_message_type_csv,
    write_metrics_csv,
    write_trace_jsonl,
    write_trace_records,
)
from repro.obs.lifecycle import (
    JOIN_PHASE_ORDER,
    JoinLifecycle,
    LifecycleReport,
    PhaseInterval,
    lifecycles_from_tracer,
    reconstruct_lifecycles,
)
from repro.obs.instrument import (
    JoinObserver,
    Observability,
    SchedulerProbe,
    collect_table_metrics,
    instrument_scheduler,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.remote import (
    ClockSample,
    ClockSync,
    ClockSyncError,
    DaemonTrace,
    RemoteTelemetry,
    merge_traces,
)
from repro.obs.report import RunReport
from repro.obs.tracer import (
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    TracerError,
)

__all__ = [
    "AuditConfig",
    "AuditIncident",
    "AuditReport",
    "AuditSample",
    "CausalForest",
    "CausalityError",
    "ClockSample",
    "ClockSync",
    "ClockSyncError",
    "Counter",
    "DaemonTrace",
    "Gauge",
    "Histogram",
    "JOIN_PHASE_ORDER",
    "JoinLifecycle",
    "JoinObserver",
    "LifecycleReport",
    "LiveAuditor",
    "MessageRecord",
    "MetricsError",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "PhaseInterval",
    "RemoteTelemetry",
    "RunReport",
    "SchedulerProbe",
    "Span",
    "TraceEvent",
    "Tracer",
    "TracerError",
    "collect_table_metrics",
    "instrument_scheduler",
    "lifecycles_from_tracer",
    "merge_traces",
    "message_type_breakdown",
    "message_type_csv",
    "metrics_to_csv",
    "metrics_to_dict",
    "read_message_type_csv",
    "read_trace_jsonl",
    "reconstruct_lifecycles",
    "trace_to_records",
    "write_message_type_csv",
    "write_metrics_csv",
    "write_trace_jsonl",
    "write_trace_records",
]
