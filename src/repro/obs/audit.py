"""Live protocol auditing: invariants checked *during* the run.

Zave's work on Chord (see PAPERS.md) showed that join protocols are
best validated by continuously checking invariants during execution,
not only at quiescence.  :class:`LiveAuditor` applies that lesson to
this paper: it rides the scheduler's ``on_event_fired`` hook and, at
configurable virtual-time intervals, evaluates

* **Theorem 3 (hard gate)** -- every joiner's
  ``CpRstMsg + JoinWaitMsg`` count must stay ``<= d + 1``;
* **mid-run consistency** -- Definition 3.8 over the *S-node*
  subnetwork (plus any stalled joiner, see below), with live T-nodes
  accepted as entry occupants.  Single-sample violations are expected
  while notifications are in flight; a violation that persists for
  ``persist_samples`` consecutive samples becomes an incident;
* **stalls** -- a joiner sitting in one phase for more than
  ``stall_timeout`` virtual time while the simulation is still making
  progress.  A stalled joiner is then *promoted into the audited
  membership*: it has been around so long that the network should know
  it, so Definition 3.8 reports exactly the entries the lost messages
  should have filled -- this is how a dropped ``JoinNotiMsg`` surfaces
  mid-run;
* **Theorems 4/5 (soft gate, at finalization)** -- the measured mean
  number of ``JoinNotiMsg`` per joiner against the Theorem 4
  expectation and the Theorem 5 upper bound, with a tolerance.

The auditor needs no tracer: it reads phase transitions through the
network's phase-listener hook and counters through
:class:`~repro.network.stats.MessageStats`, so ``join --audit`` works
in the cheap metrics-only configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.expected_cost import (
    expected_join_noti,
    expected_join_noti_upper_bound,
    theorem3_bound,
)
from repro.consistency.checker import check_consistency

#: Incident kinds, in the order they are typically produced.
HARD_KINDS = (
    "theorem3",
    "stall",
    "consistency",
    "quiescent_stall",
    "final_consistency",
)
SOFT_KINDS = ("theorem45",)


@dataclass
class AuditConfig:
    """Tunables of one :class:`LiveAuditor`."""

    #: Virtual time between consistency samples.
    interval: float = 50.0
    #: Consecutive samples a violation must survive to become an
    #: incident (absorbs in-flight-notification windows).
    persist_samples: int = 4
    #: Virtual time a joiner may sit in a single phase before it is
    #: declared stalled (and promoted into the audited membership).
    stall_timeout: float = 1500.0
    #: Relative tolerance of the Theorem 4/5 soft gate.
    theorem45_tolerance: float = 0.5
    #: Violation cap per consistency sample (keeps sampling bounded on
    #: heavily broken networks).
    max_violations_per_sample: int = 200
    #: Use the stateful :class:`~repro.consistency.IncrementalChecker`
    #: for mid-run samples: only nodes whose verdict could have changed
    #: since the previous sample are re-verified, turning the per-sample
    #: cost from O(n*d*b) into O(dirty).  Results are identical for the
    #: join-only runs where it matters (membership shrink falls back to
    #: a full rescan); the strict finalize() check always runs the full
    #: scanner.  Off by default.
    incremental: bool = False

    def validated(self) -> "AuditConfig":
        """Self, after bounds checks."""
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.persist_samples < 1:
            raise ValueError("persist_samples must be >= 1")
        if self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        if self.theorem45_tolerance < 0:
            raise ValueError("theorem45_tolerance must be >= 0")
        return self


@dataclass
class AuditIncident:
    """One rule violation flagged by the auditor."""

    kind: str
    severity: str  # "hard" or "soft"
    time: float
    detail: str

    def to_json_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "time": self.time,
            "detail": self.detail,
        }


@dataclass
class AuditSample:
    """One mid-run snapshot of the audited invariants."""

    time: float
    s_nodes: int
    t_nodes: int
    open_joins: int
    violations: int
    persistent_violations: int

    def to_json_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form."""
        return {
            "time": self.time,
            "s_nodes": self.s_nodes,
            "t_nodes": self.t_nodes,
            "open_joins": self.open_joins,
            "violations": self.violations,
            "persistent_violations": self.persistent_violations,
        }


@dataclass
class AuditReport:
    """The auditor's verdict over one run."""

    samples: List[AuditSample] = field(default_factory=list)
    incidents: List[AuditIncident] = field(default_factory=list)
    theorem3_bound: int = 0
    theorem3_max: int = 0
    theorem4_expected: Optional[float] = None
    theorem5_bound: Optional[float] = None
    measured_mean_join_noti: Optional[float] = None
    final_consistent: Optional[bool] = None
    all_in_system: Optional[bool] = None
    finalized: bool = False

    @property
    def hard_incidents(self) -> List[AuditIncident]:
        """Incidents that fail the audit."""
        return [i for i in self.incidents if i.severity == "hard"]

    @property
    def warnings(self) -> List[AuditIncident]:
        """Soft incidents (reported, not failing)."""
        return [i for i in self.incidents if i.severity == "soft"]

    @property
    def passed(self) -> bool:
        """True when no hard incident was raised."""
        return not self.hard_incidents

    def to_json_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable across invocations)."""
        return {
            "passed": self.passed,
            "finalized": self.finalized,
            "gates": {
                "theorem3": {
                    "bound": self.theorem3_bound,
                    "max": self.theorem3_max,
                    "passed": self.theorem3_max <= self.theorem3_bound,
                },
                "theorem45": {
                    "expected": self.theorem4_expected,
                    "upper_bound": self.theorem5_bound,
                    "measured_mean": self.measured_mean_join_noti,
                },
            },
            "final": {
                "consistent": self.final_consistent,
                "all_in_system": self.all_in_system,
            },
            "samples": [s.to_json_dict() for s in self.samples],
            "incidents": [i.to_json_dict() for i in self.incidents],
        }

    def render_text(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"audit              : "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.samples)} samples, "
            f"{len(self.hard_incidents)} hard / "
            f"{len(self.warnings)} soft incidents)",
            f"Theorem 3 gate     : max {self.theorem3_max} "
            f"<= {self.theorem3_bound}: "
            f"{self.theorem3_max <= self.theorem3_bound}",
        ]
        if self.measured_mean_join_noti is not None:
            lines.append(
                f"Theorem 4/5 gate   : measured "
                f"{self.measured_mean_join_noti:.3f} "
                f"(E(J) {self.theorem4_expected:.3f}, "
                f"bound {self.theorem5_bound:.3f})"
            )
        if self.final_consistent is not None:
            lines.append(
                f"final check        : consistent "
                f"{self.final_consistent}, all in system "
                f"{self.all_in_system}"
            )
        for incident in self.incidents:
            lines.append(
                f"  [{incident.severity}] {incident.kind} "
                f"@ {incident.time:.1f}: {incident.detail}"
            )
        return "\n".join(lines)


class LiveAuditor:
    """Samples protocol invariants while the simulation runs.

    ``network`` is duck-typed (any object with ``nodes``, ``stats``,
    ``idspace``, ``initial_ids``, ``joiner_ids`` and ``simulator``
    attributes shaped like
    :class:`~repro.protocol.join.JoinProtocolNetwork`); attach with
    :meth:`attach` (or via
    :meth:`~repro.protocol.join.JoinProtocolNetwork.attach_auditor`)
    *before* joins start, run, then call :meth:`finalize`.
    """

    def __init__(self, network: Any, config: Optional[AuditConfig] = None):
        self.network = network
        self.config = (
            config if config is not None else AuditConfig()
        ).validated()
        digits = network.idspace.num_digits
        self.report = AuditReport(theorem3_bound=theorem3_bound(digits))
        self._next_sample = self.config.interval
        # (node, level, digit, kind) -> consecutive samples seen.
        self._violation_streaks: Dict[Tuple[str, int, int, str], int] = {}
        self._flagged_violations: Set[Tuple[str, int, int, str]] = set()
        self._flagged_theorem3: Set[Any] = set()
        self._stalled: Set[Any] = set()
        # node_id -> (status, virtual time the status was entered).
        self._phase_entered: Dict[Any, Tuple[Any, float]] = {}
        if self.config.incremental:
            from repro.consistency.incremental import IncrementalChecker

            self._incremental: Optional[IncrementalChecker] = (
                IncrementalChecker()
            )
        else:
            self._incremental = None

    # -- wiring ---------------------------------------------------------

    def attach(self) -> "LiveAuditor":
        """Hook into the network's runtime and phase notifications."""
        self.network.runtime.add_event_listener(self.on_event)
        add_listener = getattr(self.network, "add_phase_listener", None)
        if add_listener is not None:
            add_listener(self.on_phase)
        return self

    def on_phase(self, node_id: Any, status: Any, time: float) -> None:
        """Phase-transition listener: tracks per-joiner progress."""
        if getattr(status, "is_s_node", False):
            self._phase_entered.pop(node_id, None)
            self._stalled.discard(node_id)
        else:
            self._phase_entered[node_id] = (status, time)

    def on_event(self, now: float, pending: int) -> None:
        """Scheduler listener: samples once per ``interval``."""
        if now >= self._next_sample:
            self._next_sample = now + self.config.interval
            self.sample(now)

    # -- incidents ------------------------------------------------------

    def _incident(
        self, kind: str, severity: str, time: float, detail: str
    ) -> None:
        self.report.incidents.append(
            AuditIncident(kind, severity, time, detail)
        )

    # -- sampling -------------------------------------------------------

    def _check_stalls(self, now: float) -> None:
        """Flag joiners stuck in one phase beyond ``stall_timeout``."""
        timeout = self.config.stall_timeout
        for node_id, (status, entered) in self._phase_entered.items():
            if node_id in self._stalled or now - entered <= timeout:
                continue
            self._stalled.add(node_id)
            phase = getattr(status, "value", str(status))
            self._incident(
                "stall",
                "hard",
                now,
                f"{node_id} stuck in {phase} since t={entered:g} "
                f"({now - entered:g} > {timeout:g})",
            )

    def _check_theorem3(self, now: float) -> int:
        """Hard per-joiner gate; returns the current maximum count."""
        stats = self.network.stats
        bound = self.report.theorem3_bound
        worst = self.report.theorem3_max
        for joiner in self.network.joiner_ids:
            count = stats.sent_by(joiner, "CpRstMsg") + stats.sent_by(
                joiner, "JoinWaitMsg"
            )
            if count > worst:
                worst = count
            if count > bound and joiner not in self._flagged_theorem3:
                self._flagged_theorem3.add(joiner)
                self._incident(
                    "theorem3",
                    "hard",
                    now,
                    f"{joiner} sent {count} CpRstMsg+JoinWaitMsg "
                    f"(> d+1 = {bound})",
                )
        self.report.theorem3_max = worst
        return worst

    def _check_consistency(self, now: float) -> Tuple[int, int]:
        """Definition 3.8 over S-nodes plus stalled joiners.

        Returns ``(violations_now, persistent_violations)``.
        """
        nodes = self.network.nodes
        audited = {
            node_id: node.table
            for node_id, node in nodes.items()
            if node.status.is_s_node or node_id in self._stalled
        }
        if self._incremental is not None:
            result = self._incremental.check(
                audited,
                occupant_set=nodes.keys(),
                max_violations=self.config.max_violations_per_sample,
            )
        else:
            result = check_consistency(
                audited,
                max_violations=self.config.max_violations_per_sample,
                require_s_states=False,
                occupant_set=nodes.keys(),
            )
        seen = {
            (str(v.node), v.level, v.digit, v.kind)
            for v in result.violations
        }
        streaks = self._violation_streaks
        for key in list(streaks):
            if key not in seen:
                del streaks[key]
        persistent = 0
        for key in seen:
            streak = streaks.get(key, 0) + 1
            streaks[key] = streak
            if streak >= self.config.persist_samples:
                persistent += 1
                if key not in self._flagged_violations:
                    self._flagged_violations.add(key)
                    node, level, digit, kind = key
                    self._incident(
                        "consistency",
                        "hard",
                        now,
                        f"{kind} at ({level},{digit}) of {node} "
                        f"persisted {streak} samples",
                    )
        return len(result.violations), persistent

    def sample(self, now: float) -> AuditSample:
        """Take one audit sample at virtual time ``now``."""
        self._check_stalls(now)
        self._check_theorem3(now)
        violations, persistent = self._check_consistency(now)
        statuses = [
            node.status.is_s_node for node in self.network.nodes.values()
        ]
        sample = AuditSample(
            time=now,
            s_nodes=sum(statuses),
            t_nodes=len(statuses) - sum(statuses),
            open_joins=len(self._phase_entered),
            violations=violations,
            persistent_violations=persistent,
        )
        self.report.samples.append(sample)
        return sample

    # -- finalization ---------------------------------------------------

    def finalize(self) -> AuditReport:
        """Quiescence checks plus the Theorem 4/5 soft gate."""
        if self.report.finalized:
            return self.report
        net = self.network
        now = net.runtime.now
        self._check_theorem3(now)
        for node_id, (status, entered) in sorted(
            self._phase_entered.items(), key=lambda kv: str(kv[0])
        ):
            phase = getattr(status, "value", str(status))
            self._incident(
                "quiescent_stall",
                "hard",
                now,
                f"{node_id} still in {phase} (entered t={entered:g}) "
                f"at quiescence",
            )
        tables = {
            node_id: node.table for node_id, node in net.nodes.items()
        }
        all_s = all(node.status.is_s_node for node in net.nodes.values())
        final = check_consistency(tables, require_s_states=all_s)
        self.report.final_consistent = final.consistent
        self.report.all_in_system = all_s
        if not final.consistent:
            by_kind = final.by_kind()
            summary = ", ".join(
                f"{kind}={count}" for kind, count in sorted(by_kind.items())
            )
            self._incident(
                "final_consistency",
                "hard",
                now,
                f"{len(final.violations)} Definition 3.8 violations "
                f"at quiescence ({summary})",
            )
        self._theorem45_gate(now)
        self.report.finalized = True
        return self.report

    def _theorem45_gate(self, now: float) -> None:
        """Soft comparison of measured J against Theorems 4 and 5."""
        net = self.network
        n = len(net.initial_ids)
        m = len(net.joiner_ids)
        if n < 1 or m < 1:
            return
        space = net.idspace
        expected = expected_join_noti(n, space.base, space.num_digits)
        bound = expected_join_noti_upper_bound(
            n, m, space.base, space.num_digits
        )
        counts = net.join_noti_counts()
        measured = sum(counts) / m
        self.report.theorem4_expected = expected
        self.report.theorem5_bound = bound
        self.report.measured_mean_join_noti = measured
        ceiling = bound * (1.0 + self.config.theorem45_tolerance)
        if measured > ceiling:
            self._incident(
                "theorem45",
                "soft",
                now,
                f"measured mean JoinNotiMsg {measured:.3f} exceeds "
                f"Theorem 5 bound {bound:.3f} by more than "
                f"{self.config.theorem45_tolerance:.0%}",
            )
