"""Causal flight recorder: message causality trees from a trace.

When tracing is on, the transport stamps every message with a
``(msg_id, parent_id, trace_id)`` triple at send time
(:meth:`repro.network.transport.Transport._stamp`): ``parent_id`` is
the message whose handler performed the send, so the messages of a run
form a forest.  For the join protocol each joiner's spontaneous
``CpRstMsg`` roots exactly one tree -- the *join tree* -- whose shape
is the paper's Figures 5-14 made concrete::

    CpRstMsg(x -> g0)
      `- CpRlyMsg(g0 -> x)
           `- CpRstMsg(x -> g1)
                `- ...
                     `- JoinWaitMsg(x -> y)
                          `- JoinWaitRlyMsg(y -> x)
                               `- JoinNotiMsg(x -> u) ...

This module rebuilds that forest from the ``message.send`` /
``message.deliver`` / ``message.drop`` events of a
:class:`~repro.obs.tracer.Tracer` or of a trace JSONL file, and
extracts per-tree analytics: size, depth, message-type census, and the
virtual-time *critical path* -- the causal chain ending at the tree's
latest delivery, i.e. the dependency chain that bounds how fast the
join could possibly have finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.tracer import Tracer

#: Message identity in a trace: ints from the in-memory transport,
#: ``"<node>#<counter>"`` strings from the datagram transport (see
#: :data:`repro.network.message.CausalId`).  One trace never mixes the
#: two (a run uses one transport kind), so ids stay sortable.
CausalId = Union[int, str]


@dataclass
class MessageRecord:
    """One stamped message reconstructed from trace events."""

    msg_id: CausalId
    parent_id: Optional[CausalId]
    trace_id: CausalId
    type: str
    src: str
    dst: str
    send_time: float
    deliver_time: Optional[float] = None
    bytes: int = 0
    latency: float = 0.0
    dropped: bool = False

    @property
    def completion_time(self) -> float:
        """When the message stopped mattering: its delivery time, or
        its send time if it was dropped / still in flight."""
        return self.deliver_time if self.deliver_time is not None else (
            self.send_time
        )


class CausalityError(ValueError):
    """A trace's causal records are malformed (dangling parent, child
    sent before its parent was delivered, ...)."""


class CausalForest:
    """The causal forest of one traced run."""

    def __init__(self, records: Iterable[MessageRecord]):
        self.records: Dict[CausalId, MessageRecord] = {}
        self._children: Dict[CausalId, List[CausalId]] = {}
        for record in records:
            if record.msg_id in self.records:
                raise CausalityError(f"duplicate msg_id {record.msg_id}")
            self.records[record.msg_id] = record
        for record in self.records.values():
            if record.parent_id is not None:
                self._children.setdefault(record.parent_id, []).append(
                    record.msg_id
                )
        for children in self._children.values():
            children.sort()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_event_records(
        cls, events: Iterable[Mapping[str, Any]]
    ) -> "CausalForest":
        """Build from exported event dicts (``read_trace_jsonl`` shape:
        ``{"name": ..., "time": ..., "attrs": {...}}``).

        Events without a ``msg`` attribute (traces from before causal
        stamping, or non-message events) are ignored.

        Two passes: sends/drops first, then deliveries.  A
        single-tracer stream always records the send before the
        delivery, but a *merged* multi-daemon stream (each end of a
        datagram recorded by a different process) carries no such
        ordering guarantee -- the receiver's ``message.deliver`` may
        sort ahead of the sender's ``message.send``.
        """
        materialized = list(events)
        records: Dict[CausalId, MessageRecord] = {}
        for event in materialized:
            name = event.get("name")
            if name not in ("message.send", "message.drop"):
                continue
            attrs = event.get("attrs", {})
            msg_id = attrs.get("msg")
            if msg_id is None:
                continue
            records[msg_id] = MessageRecord(
                msg_id=msg_id,
                parent_id=attrs.get("parent"),
                trace_id=attrs.get("trace", msg_id),
                type=attrs.get("type", "?"),
                src=attrs.get("src", "?"),
                dst=attrs.get("dst", "?"),
                send_time=event.get("time", 0.0),
                bytes=attrs.get("bytes", 0),
                latency=attrs.get("latency", 0.0),
                dropped=(name == "message.drop"),
            )
        for event in materialized:
            if event.get("name") != "message.deliver":
                continue
            attrs = event.get("attrs", {})
            record = records.get(attrs.get("msg"))
            if record is not None:
                record.deliver_time = event.get("time", 0.0)
        return cls(records.values())

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "CausalForest":
        """Build from a live :class:`~repro.obs.tracer.Tracer`."""
        return cls.from_event_records(
            event.to_record() for event in tracer.events()
        )

    # -- structure ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def roots(self) -> List[MessageRecord]:
        """Tree roots (spontaneous sends), in msg_id order."""
        return sorted(
            (r for r in self.records.values() if r.parent_id is None),
            key=lambda r: r.msg_id,
        )

    def children(self, msg_id: CausalId) -> List[MessageRecord]:
        """Messages sent by ``msg_id``'s handler, in msg_id order."""
        return [self.records[c] for c in self._children.get(msg_id, ())]

    def tree(self, root_id: CausalId) -> List[MessageRecord]:
        """Every record in ``root_id``'s tree, preorder."""
        if root_id not in self.records:
            raise CausalityError(f"unknown msg_id {root_id}")
        out: List[MessageRecord] = []
        stack = [root_id]
        while stack:
            msg_id = stack.pop()
            record = self.records[msg_id]
            out.append(record)
            stack.extend(reversed(self._children.get(msg_id, ())))
        return out

    def depth(self, root_id: CausalId) -> int:
        """Longest causal chain length in the tree (root counts as 1)."""
        best = 0
        stack = [(root_id, 1)]
        while stack:
            msg_id, level = stack.pop()
            if level > best:
                best = level
            for child in self._children.get(msg_id, ()):
                stack.append((child, level + 1))
        return best

    def type_census(self, root_id: CausalId) -> Dict[str, int]:
        """Message counts per type within one tree, sorted by type."""
        counts: Dict[str, int] = {}
        for record in self.tree(root_id):
            counts[record.type] = counts.get(record.type, 0) + 1
        return dict(sorted(counts.items()))

    def critical_path(self, root_id: CausalId) -> List[MessageRecord]:
        """The causal chain from the root to the tree's latest
        completion -- the virtual-time critical path of that join.

        Ties break toward the smallest msg_id, keeping the extraction
        deterministic for a given trace.
        """
        best: Optional[MessageRecord] = None
        for record in self.tree(root_id):
            if (
                best is None
                or record.completion_time > best.completion_time
                or (
                    record.completion_time == best.completion_time
                    and record.msg_id < best.msg_id
                )
            ):
                best = record
        assert best is not None
        path: List[MessageRecord] = []
        current: Optional[MessageRecord] = best
        while current is not None:
            path.append(current)
            current = (
                self.records.get(current.parent_id)
                if current.parent_id is not None
                else None
            )
        path.reverse()
        return path

    def join_trees(self) -> Dict[str, List[MessageRecord]]:
        """Per-joiner join trees: roots of type ``CpRstMsg`` grouped by
        the joining node (root sender), each mapped to its full tree.

        A joiner restarts its copy walk only by way of replies, so it
        roots exactly one tree per join attempt; the mapping keeps the
        first (and normally only) tree per sender.
        """
        out: Dict[str, List[MessageRecord]] = {}
        for root in self.roots():
            if root.type == "CpRstMsg" and root.src not in out:
                out[root.src] = self.tree(root.msg_id)
        return out

    # -- validation -----------------------------------------------------

    def validate(self) -> List[str]:
        """Causal sanity check; returns human-readable problems.

        * every ``parent_id`` resolves to a recorded message;
        * a child is sent no earlier than its parent's delivery (the
          handler runs at delivery time);
        * dropped messages have no children (nothing handled them).
        """
        problems: List[str] = []
        for record in sorted(self.records.values(), key=lambda r: r.msg_id):
            if record.parent_id is None:
                continue
            parent = self.records.get(record.parent_id)
            if parent is None:
                problems.append(
                    f"msg {record.msg_id} has unknown parent "
                    f"{record.parent_id}"
                )
                continue
            if parent.dropped:
                problems.append(
                    f"msg {record.msg_id} is a child of dropped "
                    f"msg {parent.msg_id}"
                )
            elif parent.deliver_time is None:
                problems.append(
                    f"msg {record.msg_id} sent by handler of msg "
                    f"{parent.msg_id}, which was never delivered"
                )
            elif record.send_time < parent.deliver_time:
                problems.append(
                    f"msg {record.msg_id} sent at {record.send_time} "
                    f"before parent {parent.msg_id} delivered at "
                    f"{parent.deliver_time}"
                )
            if record.trace_id != parent.trace_id:
                problems.append(
                    f"msg {record.msg_id} trace {record.trace_id} != "
                    f"parent trace {parent.trace_id}"
                )
        return problems
