"""Hierarchical span tracing over simulator virtual time.

A :class:`Tracer` collects two kinds of records:

* **Spans** -- named intervals of virtual time with a parent pointer,
  forming a forest.  The join protocol emits one root span per joining
  node (``join``) with one child span per protocol phase
  (``phase:copying``, ``phase:waiting``, ``phase:notifying``); the
  root closes when the node reaches *in_system*.
* **Events** -- named instants (``message.send``, ``message.deliver``,
  ...) optionally attached to a span.

Timestamps are simulator virtual times, not wall-clock: a trace is a
deterministic, replayable record of one simulation.

:class:`NullTracer` is the disabled path: every operation is a no-op
returning a shared dummy span, and instrumentation sites are expected
to check :attr:`Tracer.enabled` (or hold ``None``) so that a disabled
tracer costs nothing on hot paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class Span:
    """A named interval of virtual time, possibly nested under a parent.

    ``end`` stays ``None`` until :meth:`Tracer.end_span` closes the
    span; :attr:`duration` is then the virtual-time extent.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        """True once the span has been ended."""
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Virtual-time extent, or ``None`` while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_record(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"Span(#{self.span_id} {self.name!r} "
            f"[{self.start}, {self.end}] parent={self.parent_id})"
        )


class TraceEvent:
    """A named instant, optionally attached to a span."""

    __slots__ = ("name", "time", "span_id", "attrs")

    def __init__(
        self,
        name: str,
        time: float,
        span_id: Optional[int],
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.time = time
        self.span_id = span_id
        self.attrs = attrs

    def to_record(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        return {
            "kind": "event",
            "name": self.name,
            "time": self.time,
            "span": self.span_id,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"TraceEvent({self.name!r} @ {self.time})"


class TracerError(RuntimeError):
    """Misuse of the tracing API (e.g. ending a span twice)."""


class Tracer:
    """Collects spans and events for one simulation run."""

    #: Instrumentation sites check this before building attribute dicts.
    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._events: List[TraceEvent] = []
        self._next_id = 1

    # -- spans ---------------------------------------------------------

    def start_span(
        self,
        name: str,
        time: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span named ``name`` at virtual time ``time``.

        ``parent`` nests this span under another one; the hierarchy is
        explicit (not a thread-local stack) because a discrete-event
        simulation interleaves many logical tasks in one thread.
        """
        parent_id = parent.span_id if parent is not None else None
        span = Span(self._next_id, parent_id, name, time, attrs)
        self._next_id += 1
        self._spans.append(span)
        return span

    def end_span(self, span: Span, time: float, **attrs: Any) -> None:
        """Close ``span`` at virtual time ``time`` (adds ``attrs``)."""
        if span.end is not None:
            raise TracerError(f"span {span.span_id} already ended")
        if time < span.start:
            raise TracerError(
                f"span {span.span_id} cannot end at {time} "
                f"before its start {span.start}"
            )
        span.end = time
        if attrs:
            span.attrs.update(attrs)

    # -- events --------------------------------------------------------

    def event(
        self,
        name: str,
        time: float,
        span: Optional[Span] = None,
        **attrs: Any,
    ) -> None:
        """Record an instantaneous event (optionally inside ``span``)."""
        span_id = span.span_id if span is not None else None
        self._events.append(TraceEvent(name, time, span_id, attrs))

    # -- inspection ----------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All spans, optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered by name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def children(self, span: Span) -> List[Span]:
        """Direct child spans of ``span``."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def open_spans(self) -> List[Span]:
        """Spans that were started but never ended (leaks/bugs)."""
        return [s for s in self._spans if s.end is None]

    def records(self) -> Iterator[Dict[str, Any]]:
        """All spans then all events, as exporter-ready dicts."""
        for span in self._spans:
            yield span.to_record()
        for event in self._events:
            yield event.to_record()

    def clear(self) -> None:
        """Drop everything collected so far."""
        self._spans.clear()
        self._events.clear()

    def __len__(self) -> int:
        return len(self._spans) + len(self._events)


#: Shared dummy span handed out by :class:`NullTracer`; never recorded.
NULL_SPAN = Span(0, None, "null", 0.0, {})


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing.

    Instrumentation sites either check :attr:`enabled` or replace
    their tracer reference with ``None``, so a simulation with tracing
    off runs the exact pre-instrumentation code path.
    """

    enabled = False

    def start_span(
        self,
        name: str,
        time: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Return the shared dummy span; nothing is recorded."""
        return NULL_SPAN

    def end_span(self, span: Span, time: float, **attrs: Any) -> None:
        """No-op."""

    def event(
        self,
        name: str,
        time: float,
        span: Optional[Span] = None,
        **attrs: Any,
    ) -> None:
        """No-op."""
