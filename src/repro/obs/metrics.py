"""Metrics: counters, gauges and histograms in a registry.

The registry is label-aware in the Prometheus style: an instrument is
identified by a name plus a sorted set of ``key=value`` labels, so the
per-message-type accounting of the paper's evaluation (Figure 15(b),
Theorems 3-5) falls out of plain counters::

    registry.counter("messages_sent", type="JoinNotiMsg").inc()
    registry.value("messages_sent", type="JoinNotiMsg")     # -> 1

Instruments are cheap mutable objects; hot paths (the transport's
per-send accounting) cache them once and call ``inc`` directly, so
steady-state cost is one attribute increment -- no registry lookups.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, Any]) -> LabelKey:
    """Canonical hashable identity of an instrument."""
    if not labels:
        return (name, ())
    items = [(k, str(v)) for k, v in labels.items()]
    if len(items) > 1:
        items.sort()
    return (name, tuple(items))


def format_label_key(key: LabelKey) -> str:
    """Render ``(name, labels)`` as ``name{k=v,...}`` (flat-dict key)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    kind = "counter"

    def __init__(self, key: LabelKey):
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter cannot decrease (amount={amount})")
        self.value += amount

    def snapshot_items(self) -> List[Tuple[str, float]]:
        """Flat-dict items contributed by this instrument."""
        return [(format_label_key(self.key), self.value)]


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("key", "value")

    kind = "gauge"

    def __init__(self, key: LabelKey):
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (may be negative)."""
        self.value += delta

    def snapshot_items(self) -> List[Tuple[str, float]]:
        """Flat-dict items contributed by this instrument."""
        return [(format_label_key(self.key), self.value)]


class Histogram:
    """A distribution of observed values.

    Keeps every sample (simulation scale makes this affordable) so
    exact quantiles are available; the flat snapshot exposes
    ``_count``, ``_sum``, ``_min``, ``_max`` and ``_mean`` suffixes.
    """

    __slots__ = ("key", "samples")

    kind = "histogram"

    def __init__(self, key: LabelKey):
        self.key = key
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return len(self.samples)

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean sample (0.0 when empty)."""
        return self.sum / len(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Smallest sample with cumulative fraction >= ``q``."""
        if not self.samples:
            raise ValueError("empty histogram has no quantiles")
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[index]

    def snapshot_items(self) -> List[Tuple[str, float]]:
        """Flat-dict items contributed by this instrument."""
        base = format_label_key(self.key)
        items: List[Tuple[str, float]] = [
            (f"{base}_count", float(len(self.samples))),
            (f"{base}_sum", self.sum),
        ]
        if self.samples:
            items.extend(
                [
                    (f"{base}_min", min(self.samples)),
                    (f"{base}_max", max(self.samples)),
                    (f"{base}_mean", self.mean),
                ]
            )
        return items


class MetricsError(RuntimeError):
    """Instrument name reused with a different kind or misuse."""


class MetricsRegistry:
    """Owns every instrument of one run; get-or-create by name+labels."""

    def __init__(self) -> None:
        self._instruments: Dict[LabelKey, Any] = {}
        # Deferred-accounting hooks, run before every read so writers
        # may batch hot-path increments (MessageStats' per-sender
        # counts) and materialize instruments lazily.
        self._collectors: List[Any] = []

    def add_collector(self, collector) -> None:
        """Register a callback invoked before reads (``value``,
        ``snapshot``, ``instruments``, ``values_by_label``) so deferred
        accounting can be flushed into instruments just in time."""
        self._collectors.append(collector)

    def _collect(self) -> None:
        for collector in self._collectors:
            collector()

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any]):
        key = _label_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(key)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise MetricsError(
                f"{format_label_key(key)} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + ``labels`` (created on demand)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on demand)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on demand)."""
        return self._get_or_create(Histogram, name, labels)

    # -- read side -----------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Current value of a counter/gauge, or ``None`` if absent.

        (Histograms have no single value; read them via
        :meth:`histogram` or the flat :meth:`snapshot`.)
        """
        self._collect()
        instrument = self._instruments.get(_label_key(name, labels))
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            raise MetricsError(f"{name} is a histogram; use histogram()")
        return instrument.value

    def instruments(self) -> List[Any]:
        """Every registered instrument, in registration order."""
        self._collect()
        return list(self._instruments.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` dict over all instruments."""
        self._collect()
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            for key, value in instrument.snapshot_items():
                out[key] = value
        return out

    def values_by_label(
        self, name: str, label: str
    ) -> Dict[str, float]:
        """Map one label's values to counter/gauge readings.

        ``values_by_label("messages_sent", "type")`` returns the
        per-message-type counts, i.e. :meth:`MessageStats.snapshot`
        rebuilt from the registry.
        """
        self._collect()
        out: Dict[str, float] = {}
        for (iname, labels), instrument in self._instruments.items():
            if iname != name or isinstance(instrument, Histogram):
                continue
            label_dict = dict(labels)
            if label in label_dict:
                out[label_dict[label]] = instrument.value
        return out

    def __len__(self) -> int:
        self._collect()
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        self._collect()
        return any(iname == name for iname, _ in self._instruments)
