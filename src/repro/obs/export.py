"""Exporters: JSONL traces and flat-dict / CSV metrics.

The JSONL trace format is one JSON object per line, spans first and
events after, each tagged with ``"kind"``::

    {"kind": "span", "id": 1, "parent": null, "name": "join", ...}
    {"kind": "event", "name": "message.send", "time": 3.5, ...}

``read_trace_jsonl`` inverts ``write_trace_jsonl`` exactly (a
round-trip is tested), so traces can be archived, diffed between runs,
and post-processed without the repro package.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def trace_to_records(tracer: Tracer) -> List[Dict[str, Any]]:
    """All of ``tracer``'s spans and events as plain dicts."""
    return list(tracer.records())


def write_trace_jsonl(tracer: Tracer, path: str) -> int:
    """Write ``tracer``'s records to ``path`` (one JSON per line).

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in tracer.records():
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def write_trace_records(
    spans: List[Dict[str, Any]],
    events: List[Dict[str, Any]],
    path: str,
) -> int:
    """Write already-exported record dicts (``read_trace_jsonl``
    shape) to a JSONL trace file -- spans first, then events, the same
    layout :func:`write_trace_jsonl` produces from a live tracer.
    Used for *merged* multi-daemon traces, where no single
    :class:`~repro.obs.tracer.Tracer` owns the records.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in spans:
            tagged = dict(record)
            tagged["kind"] = "span"
            handle.write(json.dumps(tagged, sort_keys=True))
            handle.write("\n")
            count += 1
        for record in events:
            tagged = dict(record)
            tagged["kind"] = "event"
            handle.write(json.dumps(tagged, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_trace_jsonl(
    path: str,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse a JSONL trace back into ``(spans, events)`` dict lists."""
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            else:
                raise ValueError(f"unknown trace record kind: {kind!r}")
    return spans, events


def metrics_to_dict(registry: MetricsRegistry) -> Dict[str, float]:
    """Flat ``name{labels} -> value`` view of the registry."""
    return registry.snapshot()


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Render the registry as two-column CSV (``metric,value``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["metric", "value"])
    for key, value in sorted(registry.snapshot().items()):
        writer.writerow([key, value])
    return buffer.getvalue()


def write_metrics_csv(registry: MetricsRegistry, path: str) -> int:
    """Write :func:`metrics_to_csv` to ``path``; returns row count."""
    text = metrics_to_csv(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n") - 1


#: Fixed column order of the per-message-type breakdown.  Explicit so
#: the CSV shape cannot drift with counter registration order (which
#: differs run to run with message interleavings).
MESSAGE_TYPE_COLUMNS = ("type", "sent", "dropped", "bytes")


def message_type_breakdown(
    registry: MetricsRegistry,
) -> Dict[str, Dict[str, int]]:
    """Per-message-type counter breakdown, with rows sorted by type.

    Collates the ``messages_sent`` / ``messages_dropped`` /
    ``message_bytes`` counters that :class:`~repro.network.stats.
    MessageStats` maintains (all keyed by the ``type`` label) into one
    table; a type appearing in any of the three gets a full row with
    zeros for the others.
    """
    sent = registry.values_by_label("messages_sent", "type")
    dropped = registry.values_by_label("messages_dropped", "type")
    size = registry.values_by_label("message_bytes", "type")
    return {
        name: {
            "sent": int(sent.get(name, 0)),
            "dropped": int(dropped.get(name, 0)),
            "bytes": int(size.get(name, 0)),
        }
        for name in sorted(set(sent) | set(dropped) | set(size))
    }


def message_type_csv(registry: MetricsRegistry) -> str:
    """The per-message-type breakdown as CSV with stable columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(MESSAGE_TYPE_COLUMNS)
    for name, row in message_type_breakdown(registry).items():
        writer.writerow(
            [name] + [row[column] for column in MESSAGE_TYPE_COLUMNS[1:]]
        )
    return buffer.getvalue()


def write_message_type_csv(registry: MetricsRegistry, path: str) -> int:
    """Write :func:`message_type_csv` to ``path``; returns row count."""
    text = message_type_csv(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n") - 1


def read_message_type_csv(path: str) -> Dict[str, Dict[str, int]]:
    """Inverse of :func:`write_message_type_csv` (round-trip tested)."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if tuple(header) != MESSAGE_TYPE_COLUMNS:
            raise ValueError(
                f"unexpected message-type CSV header: {header!r}"
            )
        return {
            row[0]: {
                column: int(value)
                for column, value in zip(MESSAGE_TYPE_COLUMNS[1:], row[1:])
            }
            for row in reader
            if row
        }
