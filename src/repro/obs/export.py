"""Exporters: JSONL traces and flat-dict / CSV metrics.

The JSONL trace format is one JSON object per line, spans first and
events after, each tagged with ``"kind"``::

    {"kind": "span", "id": 1, "parent": null, "name": "join", ...}
    {"kind": "event", "name": "message.send", "time": 3.5, ...}

``read_trace_jsonl`` inverts ``write_trace_jsonl`` exactly (a
round-trip is tested), so traces can be archived, diffed between runs,
and post-processed without the repro package.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def trace_to_records(tracer: Tracer) -> List[Dict[str, Any]]:
    """All of ``tracer``'s spans and events as plain dicts."""
    return list(tracer.records())


def write_trace_jsonl(tracer: Tracer, path: str) -> int:
    """Write ``tracer``'s records to ``path`` (one JSON per line).

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in tracer.records():
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_trace_jsonl(
    path: str,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse a JSONL trace back into ``(spans, events)`` dict lists."""
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            else:
                raise ValueError(f"unknown trace record kind: {kind!r}")
    return spans, events


def metrics_to_dict(registry: MetricsRegistry) -> Dict[str, float]:
    """Flat ``name{labels} -> value`` view of the registry."""
    return registry.snapshot()


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Render the registry as two-column CSV (``metric,value``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["metric", "value"])
    for key, value in sorted(registry.snapshot().items()):
        writer.writerow([key, value])
    return buffer.getvalue()


def write_metrics_csv(registry: MetricsRegistry, path: str) -> int:
    """Write :func:`metrics_to_csv` to ``path``; returns row count."""
    text = metrics_to_csv(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n") - 1
