"""Join-lifecycle reconstruction from phase spans.

The join observer turns each joiner's status transitions into one
``join`` root span with a ``phase:<status>`` child per protocol phase
(:class:`~repro.obs.instrument.JoinObserver`).  This module inverts
that encoding: given the spans of a trace (live tracer or JSONL), it
rebuilds each joiner's T-node state machine (Section 4, Figure 3) and
checks it against the protocol's only legal shape::

    copying -> waiting -> notifying -> in_system

Violations surfaced:

* **illegal transitions** -- a phase out of order, repeated, unknown,
  or starting before the previous one ended (the state machine only
  ever moves forward, one status at a time);
* **stalls** -- a join that never reached *in_system* by the end of
  the trace, reported with the phase it is stuck in (this is how a
  lost message shows up in a flight recording).

Phase names are matched by string against
:data:`JOIN_PHASE_ORDER`, mirroring
:data:`repro.protocol.status.JOIN_PHASES`; the duplication is
deliberate -- importing :mod:`repro.protocol` here would recreate the
import cycle :mod:`repro.obs.instrument` documents, and a parity test
keeps the two tuples in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.tracer import Tracer

#: The join lifecycle in protocol order (Figure 3).  The terminal
#: *in_system* status closes the root span instead of opening a phase
#: span, so reconstructed phase lists draw from the first three only.
JOIN_PHASE_ORDER = ("copying", "waiting", "notifying", "in_system")

_PHASE_INDEX = {name: i for i, name in enumerate(JOIN_PHASE_ORDER)}
_SPAN_PREFIX = "phase:"


@dataclass
class PhaseInterval:
    """One visit to one protocol phase."""

    phase: str
    start: float
    end: Optional[float]

    @property
    def duration(self) -> Optional[float]:
        """Virtual-time extent, or ``None`` while open."""
        return None if self.end is None else self.end - self.start


@dataclass
class JoinLifecycle:
    """One joiner's reconstructed pass through the state machine."""

    node: str
    began: float
    completed_at: Optional[float]
    phases: List[PhaseInterval] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True once the joiner reached *in_system*."""
        return self.completed_at is not None

    @property
    def duration(self) -> Optional[float]:
        """The joining period t^e - t^b (Definition 3.1)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.began

    def current_phase(self) -> Optional[str]:
        """The phase an incomplete join is sitting in (else ``None``)."""
        if self.completed or not self.phases:
            return None
        return self.phases[-1].phase

    def phase_durations(self) -> Dict[str, float]:
        """Closed-phase durations summed per phase, sorted by order."""
        out: Dict[str, float] = {}
        for interval in self.phases:
            if interval.duration is not None:
                out[interval.phase] = (
                    out.get(interval.phase, 0.0) + interval.duration
                )
        return dict(
            sorted(
                out.items(),
                key=lambda kv: _PHASE_INDEX.get(kv[0], len(_PHASE_INDEX)),
            )
        )


@dataclass
class LifecycleReport:
    """All lifecycles of a trace plus the violations found."""

    lifecycles: List[JoinLifecycle]
    illegal_transitions: List[str]
    stalled: List[str]

    @property
    def ok(self) -> bool:
        """No illegal transitions and no stalled joins."""
        return not self.illegal_transitions and not self.stalled

    def completed(self) -> List[JoinLifecycle]:
        """Lifecycles that reached *in_system*."""
        return [lc for lc in self.lifecycles if lc.completed]


def _validate(lifecycle: JoinLifecycle, problems: List[str]) -> None:
    """Append ``lifecycle``'s transition violations to ``problems``."""
    previous_index = -1
    previous_end: Optional[float] = None
    for interval in lifecycle.phases:
        index = _PHASE_INDEX.get(interval.phase)
        if index is None:
            problems.append(
                f"{lifecycle.node}: unknown phase {interval.phase!r}"
            )
            continue
        if index <= previous_index:
            problems.append(
                f"{lifecycle.node}: phase {interval.phase!r} after "
                f"{JOIN_PHASE_ORDER[previous_index]!r} moves backward"
            )
        elif index != previous_index + 1:
            problems.append(
                f"{lifecycle.node}: phase {interval.phase!r} skips "
                f"{JOIN_PHASE_ORDER[previous_index + 1]!r}"
            )
        if previous_end is not None and interval.start < previous_end:
            problems.append(
                f"{lifecycle.node}: phase {interval.phase!r} starts at "
                f"{interval.start} inside the previous phase"
            )
        previous_index = index
        previous_end = interval.end
    if lifecycle.phases:
        last = lifecycle.phases[-1]
        if lifecycle.completed_at is not None and last.end is None:
            problems.append(
                f"{lifecycle.node}: completed but phase "
                f"{last.phase!r} never closed"
            )


def reconstruct_lifecycles(
    span_records: Iterable[Mapping[str, Any]],
) -> LifecycleReport:
    """Rebuild every join lifecycle from exported span dicts
    (``read_trace_jsonl`` shape) and validate the state machines.

    A lifecycle whose root span never closed is *stalled*: the trace
    records the run to quiescence, so an open join means the protocol
    lost progress (e.g. a dropped message), not that we looked early.
    """
    roots: Dict[int, JoinLifecycle] = {}
    phase_spans: List[Mapping[str, Any]] = []
    for record in span_records:
        name = record.get("name", "")
        if name == "join":
            lifecycle = JoinLifecycle(
                node=str(record.get("attrs", {}).get("node", "?")),
                began=record.get("start", 0.0),
                completed_at=record.get("end"),
            )
            roots[record["id"]] = lifecycle
        elif name.startswith(_SPAN_PREFIX):
            phase_spans.append(record)
    for record in sorted(
        phase_spans, key=lambda r: (r.get("start", 0.0), r.get("id", 0))
    ):
        lifecycle = roots.get(record.get("parent"))
        if lifecycle is None:
            continue
        lifecycle.phases.append(
            PhaseInterval(
                phase=record["name"][len(_SPAN_PREFIX):],
                start=record.get("start", 0.0),
                end=record.get("end"),
            )
        )
    lifecycles = sorted(roots.values(), key=lambda lc: (lc.began, lc.node))
    illegal: List[str] = []
    stalled: List[str] = []
    for lifecycle in lifecycles:
        _validate(lifecycle, illegal)
        if not lifecycle.completed:
            since = (
                lifecycle.phases[-1].start
                if lifecycle.phases
                else lifecycle.began
            )
            stalled.append(
                f"{lifecycle.node}: stuck in "
                f"{lifecycle.current_phase() or 'pre-copying'} "
                f"since {since}"
            )
    return LifecycleReport(
        lifecycles=lifecycles,
        illegal_transitions=illegal,
        stalled=stalled,
    )


def lifecycles_from_tracer(tracer: Tracer) -> LifecycleReport:
    """:func:`reconstruct_lifecycles` over a live tracer's spans."""
    return reconstruct_lifecycles(
        span.to_record() for span in tracer.spans()
    )
