"""Run analytics: ``repro report`` over a trace JSONL file.

A trace written by :func:`~repro.obs.export.write_trace_jsonl` is a
complete flight recording of one simulation.  :class:`RunReport`
distills it into the questions the paper's evaluation asks:

* what ran -- span/event census, per-message-type counts and bytes;
* how each join went -- reconstructed lifecycles
  (:mod:`repro.obs.lifecycle`) with phase durations, illegal
  transitions, and stalls;
* why it took that long -- causal join trees
  (:mod:`repro.obs.causality`) with sizes, depths and the virtual-time
  critical path per join;
* whether the bounds held -- the Theorem 3 census
  (``CpRstMsg + JoinWaitMsg <= d + 1`` per joiner, ``d`` inferred from
  the ID-string length recorded in the spans).

All output orderings are explicitly sorted and the JSON form is
dumped with ``sort_keys``, so the same trace file always produces the
byte-identical report -- the golden-file tests depend on this.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.causality import CausalForest, MessageRecord
from repro.obs.export import read_trace_jsonl
from repro.obs.lifecycle import LifecycleReport, reconstruct_lifecycles
from repro.obs.tracer import Tracer

#: Message types counted by the Theorem 3 gate.
THEOREM3_TYPES = ("CpRstMsg", "JoinWaitMsg")


def _round(value: Optional[float]) -> Optional[float]:
    """Stable rounding for JSON output (kills float formatting drift)."""
    return None if value is None else round(value, 6)


class RunReport:
    """Analytics over one trace's spans and events."""

    def __init__(
        self,
        spans: Sequence[Mapping[str, Any]],
        events: Sequence[Mapping[str, Any]],
    ):
        self.spans = list(spans)
        self.events = list(events)
        self.lifecycles: LifecycleReport = reconstruct_lifecycles(self.spans)
        self.forest: CausalForest = CausalForest.from_event_records(
            self.events
        )
        self.causal_problems: List[str] = self.forest.validate()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_file(cls, path: str) -> "RunReport":
        """Build from a trace JSONL file."""
        spans, events = read_trace_jsonl(path)
        return cls(spans, events)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "RunReport":
        """Build from a live tracer."""
        return cls(
            [s.to_record() for s in tracer.spans()],
            [e.to_record() for e in tracer.events()],
        )

    # -- ingredient views -----------------------------------------------

    def time_range(self) -> Dict[str, float]:
        """First and last virtual time mentioned in the trace."""
        times: List[float] = []
        for span in self.spans:
            times.append(span.get("start", 0.0))
            if span.get("end") is not None:
                times.append(span["end"])
        for event in self.events:
            times.append(event.get("time", 0.0))
        if not times:
            return {"start": 0.0, "end": 0.0}
        return {"start": min(times), "end": max(times)}

    def message_census(self) -> Dict[str, Dict[str, int]]:
        """Per-type ``{sent, delivered, dropped, bytes}``, type-sorted."""
        census: Dict[str, Dict[str, int]] = {}
        for event in self.events:
            name = event.get("name")
            if name not in (
                "message.send", "message.deliver", "message.drop"
            ):
                continue
            attrs = event.get("attrs", {})
            row = census.setdefault(
                attrs.get("type", "?"),
                {"sent": 0, "delivered": 0, "dropped": 0, "bytes": 0},
            )
            if name == "message.send":
                row["sent"] += 1
                row["bytes"] += attrs.get("bytes", 0)
            elif name == "message.deliver":
                row["delivered"] += 1
            else:
                row["dropped"] += 1
        return dict(sorted(census.items()))

    def theorem3_census(self) -> Dict[str, Any]:
        """Per-joiner CpRstMsg+JoinWaitMsg counts against ``d + 1``.

        ``d`` is the length of the digit-string node IDs recorded in
        the trace; joiners are the nodes with a ``join`` root span.
        """
        joiners = {lc.node for lc in self.lifecycles.lifecycles}
        counts = {node: 0 for node in joiners}
        for event in self.events:
            if event.get("name") != "message.send":
                continue
            attrs = event.get("attrs", {})
            src = attrs.get("src")
            if attrs.get("type") in THEOREM3_TYPES and src in counts:
                counts[src] += 1
        digits = max((len(node) for node in joiners), default=0)
        bound = digits + 1
        worst = max(counts.values(), default=0)
        return {
            "bound": bound,
            "max": worst,
            "passed": worst <= bound if joiners else True,
            "exceeding": sorted(
                node for node, count in counts.items() if count > bound
            ),
        }

    def _critical_path_dict(
        self, path: List[MessageRecord]
    ) -> Dict[str, Any]:
        hops = [
            {
                "type": record.type,
                "src": record.src,
                "dst": record.dst,
                "send": _round(record.send_time),
                "deliver": _round(record.deliver_time),
            }
            for record in path
        ]
        start = path[0].send_time if path else 0.0
        end = path[-1].completion_time if path else 0.0
        return {
            "hops": hops,
            "length": len(hops),
            "duration": _round(end - start),
        }

    def join_tree_analytics(self) -> List[Dict[str, Any]]:
        """Per-join causal-tree analytics, sorted by joiner ID."""
        out: List[Dict[str, Any]] = []
        for joiner, tree in sorted(self.forest.join_trees().items()):
            root = tree[0]
            out.append(
                {
                    "joiner": joiner,
                    "root_msg": root.msg_id,
                    "messages": len(tree),
                    "depth": self.forest.depth(root.msg_id),
                    "types": self.forest.type_census(root.msg_id),
                    "critical_path": self._critical_path_dict(
                        self.forest.critical_path(root.msg_id)
                    ),
                }
            )
        return out

    # -- output ---------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """The full report as a deterministic plain dict."""
        lifecycle_dicts = [
            {
                "node": lc.node,
                "began": _round(lc.began),
                "completed_at": _round(lc.completed_at),
                "duration": _round(lc.duration),
                "phases": [
                    {
                        "phase": p.phase,
                        "start": _round(p.start),
                        "end": _round(p.end),
                    }
                    for p in lc.phases
                ],
            }
            for lc in sorted(
                self.lifecycles.lifecycles, key=lambda lc: lc.node
            )
        ]
        return {
            "summary": {
                "spans": len(self.spans),
                "events": len(self.events),
                "time": self.time_range(),
                "messages": self.message_census(),
            },
            "lifecycles": {
                "joins": lifecycle_dicts,
                "completed": len(self.lifecycles.completed()),
                "illegal_transitions": sorted(
                    self.lifecycles.illegal_transitions
                ),
                "stalled": sorted(self.lifecycles.stalled),
            },
            "causality": {
                "messages": len(self.forest),
                "roots": len(self.forest.roots()),
                "problems": sorted(self.causal_problems),
                "join_trees": self.join_tree_analytics(),
            },
            "theorem3": self.theorem3_census(),
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, stable floats)."""
        return json.dumps(
            self.to_json_dict(), sort_keys=True, indent=2
        ) + "\n"

    def render_text(self) -> str:
        """Human-readable multi-section summary."""
        data = self.to_json_dict()
        summary = data["summary"]
        lines = [
            "== run summary ==",
            f"  spans {summary['spans']}  events {summary['events']}  "
            f"virtual time [{summary['time']['start']:g}, "
            f"{summary['time']['end']:g}]",
            "  type              sent  delivered  dropped      bytes",
        ]
        for mtype, row in summary["messages"].items():
            lines.append(
                f"  {mtype:<16} {row['sent']:>5} {row['delivered']:>10} "
                f"{row['dropped']:>8} {row['bytes']:>10}"
            )
        lifecycles = data["lifecycles"]
        lines.append("== join lifecycles ==")
        lines.append(
            f"  joins {len(lifecycles['joins'])}  completed "
            f"{lifecycles['completed']}  illegal "
            f"{len(lifecycles['illegal_transitions'])}  stalled "
            f"{len(lifecycles['stalled'])}"
        )
        for problem in lifecycles["illegal_transitions"]:
            lines.append(f"  ILLEGAL  {problem}")
        for problem in lifecycles["stalled"]:
            lines.append(f"  STALLED  {problem}")
        causality = data["causality"]
        lines.append("== causality ==")
        lines.append(
            f"  messages {causality['messages']}  join trees "
            f"{len(causality['join_trees'])}  problems "
            f"{len(causality['problems'])}"
        )
        trees = causality["join_trees"]
        if trees:
            sizes = [t["messages"] for t in trees]
            depths = [t["depth"] for t in trees]
            crit = [t["critical_path"]["duration"] for t in trees]
            lines.append(
                f"  tree size mean {sum(sizes) / len(sizes):.1f} "
                f"max {max(sizes)}; depth mean "
                f"{sum(depths) / len(depths):.1f} max {max(depths)}; "
                f"critical path max {max(crit):g}"
            )
        for problem in causality["problems"]:
            lines.append(f"  CAUSAL   {problem}")
        theorem3 = data["theorem3"]
        lines.append("== theorem 3 ==")
        lines.append(
            f"  max CpRst+JoinWait {theorem3['max']} <= "
            f"{theorem3['bound']}: {theorem3['passed']}"
        )
        for node in theorem3["exceeding"]:
            lines.append(f"  EXCEEDS  {node}")
        return "\n".join(lines)

    def render_html(self) -> str:
        """A self-contained HTML timeline of the run (no external
        assets): one row per join, phase intervals as colored bars over
        a linear virtual-time axis, with the summary tables inline."""
        time = self.time_range()
        span = max(time["end"] - time["start"], 1e-9)
        colors = {
            "copying": "#4c78a8",
            "waiting": "#f58518",
            "notifying": "#54a24b",
        }
        rows: List[str] = []
        for lc in sorted(
            self.lifecycles.lifecycles, key=lambda item: item.node
        ):
            bars: List[str] = []
            for phase in lc.phases:
                end = phase.end if phase.end is not None else time["end"]
                left = 100.0 * (phase.start - time["start"]) / span
                width = max(100.0 * (end - phase.start) / span, 0.15)
                color = colors.get(phase.phase, "#b279a2")
                bars.append(
                    f'<div class="bar" title="{phase.phase} '
                    f'[{phase.start:g}, {end:g}]" style="left:{left:.2f}%;'
                    f'width:{width:.2f}%;background:{color}"></div>'
                )
            status = "done" if lc.completed else "STALLED"
            rows.append(
                f'<tr><td class="node">{lc.node}</td>'
                f'<td class="lane"><div class="track">{"".join(bars)}'
                f"</div></td><td>{status}</td></tr>"
            )
        legend = " ".join(
            f'<span class="chip" style="background:{color}">{phase}</span>'
            for phase, color in colors.items()
        )
        text = self.render_text()
        return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>repro run report</title>
<style>
body {{ font: 13px/1.4 monospace; margin: 1.5em; color: #222; }}
table {{ border-collapse: collapse; width: 100%; }}
td {{ padding: 1px 6px; }}
.node {{ white-space: nowrap; }}
.lane {{ width: 80%; }}
.track {{ position: relative; height: 12px; background: #eee; }}
.bar {{ position: absolute; top: 0; height: 12px; }}
.chip {{ color: #fff; padding: 0 6px; }}
pre {{ background: #f6f6f6; padding: 1em; }}
</style></head><body>
<h1>repro run report</h1>
<p>virtual time [{time['start']:g}, {time['end']:g}] &mdash; {legend}</p>
<table>{"".join(rows)}</table>
<pre>{text}</pre>
</body></html>
"""
