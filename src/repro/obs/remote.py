"""Distributed telemetry: per-daemon recording and cluster-wide merge.

The simulator records one run with one tracer under one clock.  A
deployed cluster has neither: every daemon owns a private tracer whose
timestamps are *local* protocol time (derived from its own wall
clock), and the evidence of one causal message tree is scattered
across processes -- the ``message.send`` lives in the sender's trace,
the ``message.deliver`` in the receiver's.  This module closes that
gap in three pieces:

* :class:`RemoteTelemetry` -- the bundle a daemon records into (one
  :class:`~repro.obs.tracer.Tracer` + one
  :class:`~repro.obs.metrics.MetricsRegistry`), exported either as
  bounded pages over the control protocol (:meth:`~RemoteTelemetry.
  export_page` -- one page fits one datagram) or spooled to a JSONL
  file on disk.
* :class:`ClockSample` / :class:`ClockSync` -- NTP-style offset
  estimation.  The collector samples each daemon's ``clock`` control
  op, keeps the minimum-RTT sample (the packet-selection rule), and
  anchors that daemon's timeline at the sample's midpoint.  Only an
  *affine* correction is applied per daemon, so the within-daemon
  event order -- the order causal validation depends on -- is
  preserved exactly.
* :func:`merge_traces` -- maps every daemon's records onto one global
  protocol-time axis (origin at the cluster's earliest record),
  namespaces span ids as ``"<daemon>:<id>"`` so they cannot collide,
  and returns ``(spans, events)`` lists in the exact shape
  :func:`~repro.obs.export.read_trace_jsonl` produces -- i.e. a merged
  multi-process run feeds :class:`~repro.obs.causality.CausalForest`,
  :mod:`~repro.obs.lifecycle` and :class:`~repro.obs.report.RunReport`
  unchanged.

Message ids need no rewriting: the datagram transport stamps
``"<node-id>#<counter>"`` strings that are already cluster-unique and
cross the wire inside the message envelope, so the sender-recorded
``message.send`` and the receiver-recorded ``message.deliver`` meet on
the same id in the merged stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.export import write_trace_jsonl
from repro.obs.instrument import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Records per telemetry page.  Sized so a page of span/event dicts
#: JSON-encodes comfortably under the 65507-byte datagram ceiling
#: (records run ~100-250 bytes; 150 of them stay under ~40 KiB).
DEFAULT_PAGE_LIMIT = 150

#: Rounding applied to merged timestamps; matches the report tier's
#: stable-float policy so merged output is byte-deterministic.
MERGE_DECIMALS = 6


class RemoteTelemetry:
    """One daemon's recording surface: tracer + metrics + export.

    ``node`` labels exported pages (set once the daemon knows its node
    id); ``spool_path`` enables JSONL spooling --
    :meth:`write_spool` rewrites the whole file, because spans mutate
    when they close, so appending would freeze them half-open.
    """

    def __init__(
        self, node: str = "?", spool_path: Optional[str] = None
    ):
        self.node = node
        self.spool_path = spool_path
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def observability(self) -> Observability:
        """The :class:`Observability` bundle over this telemetry, for
        instrumentation helpers (:class:`~repro.obs.instrument.
        JoinObserver`) that expect one."""
        return Observability(tracer=self.tracer, metrics=self.metrics)

    # -- export ---------------------------------------------------------

    def export_page(
        self,
        spans_from: int = 0,
        events_from: int = 0,
        limit: int = DEFAULT_PAGE_LIMIT,
    ) -> Dict[str, Any]:
        """One bounded page of trace records (control-op response body).

        Pages walk spans first, then events, ``limit`` records total;
        ``next`` carries the ``[spans_from, events_from]`` cursor of
        the following page and ``done`` says whether it would be
        empty.  Tracer lists are append-only, so a cursor taken from
        one page stays valid for the next request even while the
        daemon keeps recording.
        """
        limit = max(1, int(limit))
        spans = self.tracer.spans()
        events = self.tracer.events()
        page_spans = [
            span.to_record()
            for span in spans[spans_from:spans_from + limit]
        ]
        room = limit - len(page_spans)
        page_events = [
            event.to_record()
            for event in events[events_from:events_from + room]
        ] if room > 0 else []
        next_spans = spans_from + len(page_spans)
        next_events = events_from + len(page_events)
        return {
            "node": self.node,
            "spans": page_spans,
            "events": page_events,
            "next": [next_spans, next_events],
            "done": next_spans >= len(spans) and next_events >= len(events),
        }

    def write_spool(self, path: Optional[str] = None) -> Optional[int]:
        """Write the full trace JSONL to ``path`` (default: the
        configured spool path); returns records written, or ``None``
        when no path is configured."""
        target = path if path is not None else self.spool_path
        if target is None:
            return None
        return write_trace_jsonl(self.tracer, target)

    def __len__(self) -> int:
        return len(self.tracer)


# -- clock alignment --------------------------------------------------------


@dataclass(frozen=True)
class ClockSample:
    """One round trip against a daemon's ``clock`` control op:
    collector wall clock at send (``t0``) and receive (``t1``), the
    daemon's wall clock in between (``server_wall``)."""

    t0: float
    server_wall: float
    t1: float

    @property
    def rtt(self) -> float:
        """Round-trip time of this sample (seconds)."""
        return self.t1 - self.t0

    @property
    def midpoint(self) -> float:
        """Collector-clock estimate of the instant the daemon read its
        clock (the symmetric-delay assumption)."""
        return (self.t0 + self.t1) / 2.0

    @property
    def offset(self) -> float:
        """Estimated daemon-minus-collector clock offset (seconds)."""
        return self.server_wall - self.midpoint


class ClockSyncError(ValueError):
    """Clock synchronization attempted with no usable samples."""


class ClockSync:
    """A daemon's clock relation to the collector, from RTT samples.

    Keeps the minimum-RTT sample -- its midpoint estimate has the
    tightest error bound (error <= rtt/2), which is NTP's selection
    rule -- and exposes the chosen offset plus the conversion both
    directions.
    """

    def __init__(self, samples: Sequence[ClockSample]):
        if not samples:
            raise ClockSyncError("no clock samples")
        self.samples = list(samples)
        self.best = min(self.samples, key=lambda s: s.rtt)
        self.offset = self.best.offset
        self.rtt = self.best.rtt

    def to_collector_wall(self, server_wall: float) -> float:
        """Translate a daemon wall-clock reading to collector time."""
        return server_wall - self.offset

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ClockSync(offset={self.offset * 1000.0:+.3f}ms "
            f"rtt={self.rtt * 1000.0:.3f}ms n={len(self.samples)})"
        )


# -- merge ------------------------------------------------------------------


@dataclass
class DaemonTrace:
    """One daemon's exported records plus its timeline anchor.

    ``anchor_now`` is the daemon's protocol time at the instant it
    reported ``anchor server wall``; ``anchor_collector_wall`` is the
    collector-clock estimate of that same instant (the min-RTT
    sample's midpoint).  The affine map

        collector_wall(t) = anchor_collector_wall
                            + (t - anchor_now) * time_scale

    places every local protocol timestamp on the collector's axis
    while preserving the daemon's own event order exactly.
    """

    name: str
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    anchor_now: float = 0.0
    anchor_collector_wall: float = 0.0
    time_scale: float = 1.0
    clock_offset: float = 0.0
    clock_rtt: float = 0.0


def _namespace(name: str, span_id: Any) -> Optional[str]:
    return None if span_id is None else f"{name}:{span_id}"


def merge_traces(
    daemons: Sequence[DaemonTrace],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Merge per-daemon traces onto one global protocol-time axis.

    Returns ``(spans, events)`` in ``read_trace_jsonl`` shape: span
    ids (and parent/``span`` references) rewritten to
    ``"<daemon>:<id>"``, all timestamps re-expressed in protocol units
    of the first daemon's ``time_scale`` with the cluster-wide
    earliest record at 0, rounded to :data:`MERGE_DECIMALS` and sorted
    deterministically.  Message-level attrs (the causal ids) pass
    through untouched.
    """
    if not daemons:
        return [], []
    out_scale = daemons[0].time_scale or 1.0

    def to_wall(trace: DaemonTrace, t: Optional[float]) -> Optional[float]:
        if t is None:
            return None
        return trace.anchor_collector_wall + (
            (t - trace.anchor_now) * trace.time_scale
        )

    walls: List[float] = []
    staged: List[Tuple[DaemonTrace, Dict[str, Any], str]] = []
    for trace in daemons:
        for record in trace.spans:
            staged.append((trace, record, "span"))
            walls.append(to_wall(trace, record.get("start", 0.0)))
            if record.get("end") is not None:
                walls.append(to_wall(trace, record["end"]))
        for record in trace.events:
            staged.append((trace, record, "event"))
            walls.append(to_wall(trace, record.get("time", 0.0)))
    origin = min(walls) if walls else 0.0

    def to_global(trace: DaemonTrace, t: Optional[float]) -> Optional[float]:
        wall = to_wall(trace, t)
        if wall is None:
            return None
        return round((wall - origin) / out_scale, MERGE_DECIMALS)

    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for trace, record, kind in staged:
        if kind == "span":
            merged = dict(record)
            merged["id"] = _namespace(trace.name, record.get("id"))
            merged["parent"] = _namespace(trace.name, record.get("parent"))
            merged["start"] = to_global(trace, record.get("start", 0.0))
            merged["end"] = to_global(trace, record.get("end"))
            spans.append(merged)
        else:
            merged = dict(record)
            merged["span"] = _namespace(trace.name, record.get("span"))
            merged["time"] = to_global(trace, record.get("time", 0.0))
            events.append(merged)
    spans.sort(key=lambda r: (r.get("start", 0.0), str(r.get("id"))))
    events.sort(
        key=lambda r: (
            r.get("time", 0.0),
            str(r.get("name")),
            str(r.get("attrs", {}).get("msg")),
        )
    )
    return spans, events


__all__ = [
    "DEFAULT_PAGE_LIMIT",
    "MERGE_DECIMALS",
    "ClockSample",
    "ClockSync",
    "ClockSyncError",
    "DaemonTrace",
    "RemoteTelemetry",
    "merge_traces",
]
