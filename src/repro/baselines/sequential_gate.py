"""Serialized joins: the trivially safe alternative to concurrency.

Definition 3.2 joins (sequential) never interfere, so a system without
the paper's concurrent-join support must gate joins through a global
lock.  :func:`join_sequentially` runs each join to completion before
starting the next and reports the total virtual time consumed, which
the ablation bench compares against starting all joins at once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ids.digits import NodeId
from repro.protocol.join import JoinProtocolNetwork


def join_sequentially(
    network: JoinProtocolNetwork,
    joiners: Sequence[NodeId],
    gap: float = 0.0,
) -> float:
    """Run each join to quiescence before starting the next.

    Returns the virtual time at which the last join completed.  ``gap``
    adds idle time between joins (keeps joining periods disjoint even
    under zero-latency models).
    """
    for joiner in joiners:
        network.start_join(joiner, at=network.runtime.now + gap)
        network.run()
        node = network.node(joiner)
        if not node.status.is_s_node:
            raise RuntimeError(
                f"join of {joiner} did not complete "
                f"(status {node.status})"
            )
    return network.runtime.now
