"""A Tapestry/Hildrum-style multicast join (baseline).

The paper contrasts its design with the join protocol of Hildrum,
Kubiatowicz, Rao and Zhao [5], where "the existence of a joining node
is announced by a multicast message.  Each intermediate node in the
multicast tree keeps the joining node in a list (one list per entry
updated by a joining node) until it has received acknowledgments from
all downstream nodes.  This approach has the disadvantage of requiring
many existing nodes to store and process extra states as well as send
and receive messages on behalf of joining nodes."

This module implements that scheme at the same abstraction level as
our join protocol, to quantify the contrast:

1. **Copy phase** -- identical to the paper's copying status: the
   joiner walks gateway tables level by level and copies them.
2. **Acknowledged multicast** -- the last node on the walk (the
   joiner's *surrogate*) multicasts the joiner's arrival over the
   neighbor-pointer forest of the notification set.  A node receiving
   ``(joiner, level j)`` fills its entry for the joiner, forwards to
   every distinct level-``j`` neighbor, and *holds the joiner in a
   pending list* until all downstream acks arrive, then acks upward.

The implementation measures the paper's qualitative claims: messages
per join and -- the key difference -- how many *existing* nodes hold
join state, and for how long.  Correctness (consistency after joins)
holds for sequential joins; under concurrent joins this optimistic
baseline can produce inconsistent tables, which the comparison bench
also surfaces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.network.message import HEADER_BYTES, NODE_REF_BYTES, Message
from repro.network.node import NetworkNode
from repro.network.stats import MessageStats
from repro.network.transport import Transport
from repro.routing.entry import NeighborState
from repro.routing.oracle import build_consistent_tables
from repro.routing.table import NeighborTable, TableSnapshot
from repro.runtime import create_runtime
from repro.topology.attachment import ConstantLatencyModel, LatencyModel


class MCopyRstMsg(Message):
    """Requests a copy of the receiver's table (baseline copy phase)."""

    __slots__ = ()
    type_name = "MCopyRstMsg"


class MCopyRlyMsg(Message):
    """Reply carrying the sender's table snapshot."""

    __slots__ = ("table",)
    type_name = "MCopyRlyMsg"
    carries_table = True

    def __init__(self, sender: NodeId, table: TableSnapshot):
        super().__init__(sender)
        self.table = table

    def size_bytes(self) -> int:
        """Wire size: header plus one reference per carried entry."""
        return HEADER_BYTES + NODE_REF_BYTES * len(self.table)


class MAnnounceMsg(Message):
    """Joiner -> surrogate: start the multicast."""

    __slots__ = ("joiner",)
    type_name = "MAnnounceMsg"

    def __init__(self, sender: NodeId, joiner: NodeId):
        super().__init__(sender)
        self.joiner = joiner


class MMulticastMsg(Message):
    """Forwarded down the multicast tree at increasing levels.

    ``ack_level`` identifies the sender's pending record; the receiver
    echoes it in its ack.
    """

    __slots__ = ("joiner", "level", "ack_level")
    type_name = "MMulticastMsg"

    def __init__(
        self, sender: NodeId, joiner: NodeId, level: int, ack_level: int
    ):
        super().__init__(sender)
        self.joiner = joiner
        self.level = level
        self.ack_level = ack_level


class MMulticastAckMsg(Message):
    """``level`` echoes the ``ack_level`` of the message being acked."""

    __slots__ = ("joiner", "level")
    type_name = "MMulticastAckMsg"

    def __init__(self, sender: NodeId, joiner: NodeId, level: int):
        super().__init__(sender)
        self.joiner = joiner
        self.level = level


class MJoinDoneMsg(Message):
    """Surrogate -> joiner: the multicast completed."""

    __slots__ = ("joiner",)
    type_name = "MJoinDoneMsg"

    def __init__(self, sender: NodeId, joiner: NodeId):
        super().__init__(sender)
        self.joiner = joiner


@dataclass
class MulticastJoinStats:
    """Burden metrics for the comparison bench."""

    #: existing nodes that ever held pending join state, per joiner
    state_holders: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    #: peak number of simultaneously pending (node, joiner) records
    peak_pending_records: int = 0
    current_pending_records: int = 0
    completed: Set[NodeId] = field(default_factory=set)

    def holder_added(self, node: NodeId, joiner: NodeId) -> None:
        """Record that ``node`` now holds pending state for ``joiner``."""
        self.state_holders.setdefault(joiner, set()).add(node)
        self.current_pending_records += 1
        self.peak_pending_records = max(
            self.peak_pending_records, self.current_pending_records
        )

    def holder_removed(self) -> None:
        """Record that one pending (node, joiner) record drained."""
        self.current_pending_records -= 1

    def holders_for(self, joiner: NodeId) -> int:
        """How many existing nodes ever held state for ``joiner``."""
        return len(self.state_holders.get(joiner, ()))


class _MulticastNode(NetworkNode):
    """One node of the baseline network."""

    def __init__(
        self,
        node_id: NodeId,
        transport: Transport,
        network: "MulticastJoinNetwork",
        table: Optional[NeighborTable] = None,
    ):
        super().__init__(node_id, transport)
        self.network = network
        self.table = table if table is not None else NeighborTable(node_id)
        # Pending multicast state held on behalf of joiners: the paper's
        # criticism is that existing nodes must keep these lists.  Keyed
        # by (joiner, level) because a node can legitimately appear in
        # the multicast tree at several levels.
        # (joiner, level) -> (parent or None for the surrogate,
        #                     ack level to echo upward, acks due)
        self.pending: Dict[
            Tuple[NodeId, int], Tuple[Optional[NodeId], int, int]
        ] = {}
        self.seen_multicasts: Set[Tuple[NodeId, int]] = set()
        # copy-phase state (joiner side)
        self._copy_level = 0
        self._copy_target: Optional[NodeId] = None
        self.joined = False

        self.handles(MCopyRstMsg, self._on_copy_rst)
        self.handles(MCopyRlyMsg, self._on_copy_rly)
        self.handles(MAnnounceMsg, self._on_announce)
        self.handles(MMulticastMsg, self._on_multicast)
        self.handles(MMulticastAckMsg, self._on_multicast_ack)
        self.handles(MJoinDoneMsg, self._on_join_done)

    # -- copy phase ----------------------------------------------------

    def begin_join(self, gateway: NodeId) -> None:
        self._copy_level = 0
        self._copy_target = gateway
        self.send(gateway, MCopyRstMsg(self.node_id))

    def _on_copy_rst(self, msg: MCopyRstMsg) -> None:
        self.send(msg.sender, MCopyRlyMsg(self.node_id, self.table.snapshot()))

    def _on_copy_rly(self, msg: MCopyRlyMsg) -> None:
        level = self._copy_level
        own_digit = self.node_id.digit(level)
        next_hop: Optional[NodeId] = None
        for entry in msg.table:
            if entry.level != level:
                continue
            if entry.digit == own_digit:
                next_hop = entry.node
                continue
            if self.table.is_empty(level, entry.digit):
                self.table.set_entry(
                    level, entry.digit, entry.node, NeighborState.S
                )
        self._copy_level += 1
        if next_hop is not None and next_hop != self.node_id:
            self._copy_target = next_hop
            self.send(next_hop, MCopyRstMsg(self.node_id))
            return
        # Copy walk finished: install self pointers, then ask the
        # surrogate (the last node we copied from) to multicast.
        for i in range(self.node_id.num_digits):
            self.table.set_entry(
                i, self.node_id.digit(i), self.node_id, NeighborState.S
            )
        self.send(msg.sender, MAnnounceMsg(self.node_id, self.node_id))

    # -- acknowledged multicast -----------------------------------------

    def _multicast_children(
        self, joiner: NodeId, level: int
    ) -> Dict[NodeId, int]:
        """Distinct forwarding targets with the level to forward at.

        A node represents its *own* suffix classes (its ``(j, self[j])``
        entries point at itself), so it forwards to neighbors at every
        level ``>= level``, not just at ``level`` -- otherwise branches
        whose class representative is the node itself would be pruned.
        Each target is forwarded at (its lowest entry level) + 1.
        """
        children: Dict[NodeId, int] = {}
        for j in range(level, self.node_id.num_digits):
            for entry in self.table.entries_at_level(j):
                if entry.node in (self.node_id, joiner):
                    continue
                if entry.node not in children:
                    children[entry.node] = j + 1
        return children

    def _start_multicast(
        self,
        joiner: NodeId,
        level: int,
        parent: Optional[NodeId],
        ack_level: int,
    ) -> None:
        """Fill our entry for the joiner, forward, and hold state."""
        k = self.node_id.csuf_len(joiner)
        if self.table.get(k, joiner.digit(k)) is None:
            self.table.set_entry(
                k, joiner.digit(k), joiner, NeighborState.S
            )
        children = (
            self._multicast_children(joiner, level)
            if level < self.node_id.num_digits
            else {}
        )
        if not children:
            if parent is None:
                self._multicast_finished(joiner)
            else:
                self.send(
                    parent, MMulticastAckMsg(self.node_id, joiner, ack_level)
                )
            return
        self.pending[(joiner, level)] = (parent, ack_level, len(children))
        self.network.mstats.holder_added(self.node_id, joiner)
        for child, child_level in children.items():
            self.send(
                child,
                MMulticastMsg(self.node_id, joiner, child_level, level),
            )

    def _on_announce(self, msg: MAnnounceMsg) -> None:
        level = self.node_id.csuf_len(msg.joiner)
        self._start_multicast(msg.joiner, level, parent=None, ack_level=level)

    def _on_multicast(self, msg: MMulticastMsg) -> None:
        key = (msg.joiner, msg.level)
        if key in self.seen_multicasts:
            # Duplicate arrival: ack immediately, hold no extra state.
            self.send(
                msg.sender,
                MMulticastAckMsg(self.node_id, msg.joiner, msg.ack_level),
            )
            return
        self.seen_multicasts.add(key)
        self._start_multicast(
            msg.joiner, msg.level, parent=msg.sender, ack_level=msg.ack_level
        )

    def _on_multicast_ack(self, msg: MMulticastAckMsg) -> None:
        key = (msg.joiner, msg.level)
        state = self.pending.get(key)
        if state is None:
            return
        parent, ack_level, outstanding = state
        outstanding -= 1
        if outstanding > 0:
            self.pending[key] = (parent, ack_level, outstanding)
            return
        del self.pending[key]
        self.network.mstats.holder_removed()
        if parent is None:
            self._multicast_finished(msg.joiner)
        else:
            self.send(
                parent,
                MMulticastAckMsg(self.node_id, msg.joiner, ack_level),
            )

    def _multicast_finished(self, joiner: NodeId) -> None:
        self.send(joiner, MJoinDoneMsg(self.node_id, joiner))

    def _on_join_done(self, msg: MJoinDoneMsg) -> None:
        self.joined = True
        self.network.mstats.completed.add(self.node_id)


class MulticastJoinNetwork:
    """Driver mirroring :class:`repro.protocol.join.JoinProtocolNetwork`
    for the multicast baseline."""

    def __init__(
        self,
        idspace: IdSpace,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        self.idspace = idspace
        self.runtime = create_runtime("sim")
        self.stats = MessageStats()
        self.mstats = MulticastJoinStats()
        self.transport = Transport(
            self.runtime,
            latency_model if latency_model is not None else ConstantLatencyModel(),
            self.stats,
        )
        self.nodes: Dict[NodeId, _MulticastNode] = {}
        self.initial_ids: List[NodeId] = []
        self.joiner_ids: List[NodeId] = []
        self._rng = random.Random(seed)

    @classmethod
    def from_oracle(
        cls,
        idspace: IdSpace,
        initial_ids: Sequence[NodeId],
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> "MulticastJoinNetwork":
        net = cls(idspace, latency_model=latency_model, seed=seed)
        tables = build_consistent_tables(
            initial_ids, random.Random(f"{seed}-oracle")
        )
        for node_id in initial_ids:
            net.nodes[node_id] = _MulticastNode(
                node_id, net.transport, net, tables[node_id]
            )
            net.initial_ids.append(node_id)
        return net

    def start_join(
        self,
        node_id: NodeId,
        gateway: Optional[NodeId] = None,
        at: float = 0.0,
    ) -> None:
        """Create a joining node and schedule its join at ``at``."""
        if gateway is None:
            gateway = self._rng.choice(self.initial_ids)
        node = _MulticastNode(node_id, self.transport, self)
        self.nodes[node_id] = node
        self.joiner_ids.append(node_id)
        self.runtime.schedule_at(at, node.begin_join, gateway)

    @property
    def simulator(self):
        """Alias for :attr:`runtime` (historical name)."""
        return self.runtime

    def run(self, max_events: Optional[int] = None) -> int:
        """Run to quiescence (or the event cap)."""
        return self.runtime.run(max_events=max_events)

    def tables(self) -> Dict[NodeId, NeighborTable]:
        """Current neighbor tables, keyed by node ID."""
        return {nid: node.table for nid, node in self.nodes.items()}

    def all_joined(self) -> bool:
        """True when every started join received its MJoinDoneMsg."""
        return all(
            self.nodes[j].joined for j in self.joiner_ids
        )

    def check_consistency(self):
        """Definition 3.8 check over the current tables (T states allowed)."""
        from repro.consistency.checker import check_consistency

        return check_consistency(self.tables(), require_s_states=False)
