"""A CAN-style d-dimensional torus baseline (routing comparison only).

Footnote 2 of the paper: a name resolves in O(log n) hops for Chord
and O(d * n^(1/d)) for CAN.  This module implements CAN's structure so
the hop-count scaling can be measured against the hypercube scheme.

The coordinate space is the unit d-torus.  Instead of CAN's incremental
zone splitting, zones are built from global knowledge as an equal-width
grid perturbed to the member count (the asymptotics footnote 2 cites
assume balanced zones, which is also what CAN's uniform hashing
approximates): with ``n`` members we choose grid sides whose product
is at least ``n``, assign each cell to one owner, and let owners of
multiple cells merge them.  Greedy coordinate routing then forwards to
whichever neighbor zone is closest (torus distance) to the target
point.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ids.digits import NodeId

Cell = Tuple[int, ...]


def _grid_sides(n: int, dims: int) -> Tuple[int, ...]:
    """Grid side lengths whose product is >= n, as equal as possible."""
    base = max(1, math.ceil(n ** (1.0 / dims)))
    sides = [base] * dims
    # Shave excess while keeping the product >= n.
    for axis in range(dims):
        while sides[axis] > 1:
            sides[axis] -= 1
            if math.prod(sides) < n:
                sides[axis] += 1
                break
    return tuple(sides)


@dataclass
class CanLookupResult:
    success: bool
    path: List[NodeId]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class CanNetwork:
    """A CAN overlay with balanced zones over ``dims`` dimensions."""

    def __init__(
        self,
        members: Sequence[NodeId],
        dims: int = 2,
        rng: Optional[random.Random] = None,
    ):
        if not members:
            raise ValueError("need at least one member")
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.members = list(members)
        if rng is None:
            rng = random.Random(0)
        self.sides = _grid_sides(len(self.members), dims)
        # Assign each grid cell an owner: the first n cells get the n
        # members (shuffled), the remainder wrap around (merged zones).
        cells = list(itertools.product(*(range(s) for s in self.sides)))
        owners = list(self.members)
        rng.shuffle(owners)
        self.owner_of_cell: Dict[Cell, NodeId] = {}
        for index, cell in enumerate(cells):
            self.owner_of_cell[cell] = owners[index % len(owners)]
        # Neighbor sets: owners of adjacent cells (torus adjacency).
        self.neighbors: Dict[NodeId, List[NodeId]] = {
            member: [] for member in self.members
        }
        seen = {member: set() for member in self.members}
        for cell, owner in self.owner_of_cell.items():
            for axis in range(dims):
                for step in (-1, 1):
                    other = list(cell)
                    other[axis] = (other[axis] + step) % self.sides[axis]
                    neighbor = self.owner_of_cell[tuple(other)]
                    if neighbor != owner and neighbor not in seen[owner]:
                        seen[owner].add(neighbor)
                        self.neighbors[owner].append(neighbor)
        # Cells per owner (for choosing the exit point of a lookup).
        self.cells_of_owner: Dict[NodeId, List[Cell]] = {
            member: [] for member in self.members
        }
        for cell, owner in self.owner_of_cell.items():
            self.cells_of_owner[owner].append(cell)

    # -- key mapping -------------------------------------------------------

    def point_of_key(self, key: NodeId) -> Tuple[float, ...]:
        """Hash a key to a point on the torus (splitting its digits
        round-robin across dimensions)."""
        values = [0] * self.dims
        scales = [1] * self.dims
        for index, digit in enumerate(key.digits):
            axis = index % self.dims
            values[axis] = values[axis] * key.base + digit
            scales[axis] *= key.base
        return tuple(v / s for v, s in zip(values, scales))

    def owner_of_point(self, point: Tuple[float, ...]) -> NodeId:
        """The member owning the grid cell containing ``point``."""
        cell = tuple(
            min(side - 1, int(point[axis] * side))
            for axis, side in enumerate(self.sides)
        )
        return self.owner_of_cell[cell]

    def _cell_steps(self, a: Cell, b: Cell) -> int:
        """Torus Manhattan distance between grid cells."""
        total = 0
        for axis, side in enumerate(self.sides):
            d = abs(a[axis] - b[axis])
            total += min(d, side - d)
        return total

    # -- routing -----------------------------------------------------------

    def lookup(
        self, origin: NodeId, key: NodeId, max_hops: Optional[int] = None
    ) -> CanLookupResult:
        """Coordinate routing: walk the cell grid toward the key's
        cell, one axis at a time along the shorter torus direction.
        The application-level path is the sequence of distinct zone
        owners crossed -- CAN's hop count.  Always terminates (each
        step reduces the cell distance by one)."""
        target_point = self.point_of_key(key)
        target_cell = tuple(
            min(side - 1, int(target_point[axis] * side))
            for axis, side in enumerate(self.sides)
        )
        # Exit the origin's zone through its cell nearest the target.
        current_cell = min(
            self.cells_of_owner[origin],
            key=lambda cell: self._cell_steps(cell, target_cell),
        )
        path = [origin]
        current_owner = origin
        while current_cell != target_cell:
            axis = next(
                a
                for a in range(self.dims)
                if current_cell[a] != target_cell[a]
            )
            side = self.sides[axis]
            forward = (target_cell[axis] - current_cell[axis]) % side
            step = 1 if forward <= side - forward else -1
            moved = list(current_cell)
            moved[axis] = (moved[axis] + step) % side
            current_cell = tuple(moved)
            owner = self.owner_of_cell[current_cell]
            if owner != current_owner:
                path.append(owner)
                current_owner = owner
            if max_hops is not None and len(path) - 1 > max_hops:
                return CanLookupResult(False, path)
        return CanLookupResult(True, path)

    def mean_lookup_hops(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> float:
        """Average lookup hop count over ``(origin, key)`` pairs."""
        hops = []
        for origin, key in pairs:
            result = self.lookup(origin, key)
            if not result.success:
                raise RuntimeError(f"lookup {origin} -> {key} failed")
            hops.append(result.hops)
        return sum(hops) / len(hops)
