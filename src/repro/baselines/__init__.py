"""Baselines for comparison (Section 1's related-work discussion).

* :mod:`~repro.baselines.multicast_join` -- a Tapestry/Hildrum-style
  join in which the joiner's existence is announced by an acknowledged
  multicast over the neighbor-table forest, and every intermediate
  node must hold per-joiner state until its downstream acks arrive.
  The paper's protocol is designed to avoid exactly that burden
  ("we put the burden of the join process on joining nodes only").
* :mod:`~repro.baselines.sequential_gate` -- joins serialized through a
  global gate (one join at a time), the trivially correct alternative
  to concurrent joins; used to measure the latency benefit of the
  paper's concurrency support.
* :mod:`~repro.baselines.chord` -- a Chord ring (successors + fingers)
  for the introduction's P2 comparison: similar hop counts, far worse
  routing locality.
* :mod:`~repro.baselines.can` -- a CAN d-torus for footnote 2's hop
  scaling comparison: O(d n^(1/d)) hops vs the hypercube's O(log_b n).
"""

from repro.baselines.can import CanLookupResult, CanNetwork
from repro.baselines.chord import ChordLookupResult, ChordNetwork
from repro.baselines.multicast_join import (
    MulticastJoinNetwork,
    MulticastJoinStats,
)
from repro.baselines.sequential_gate import join_sequentially

__all__ = [
    "CanLookupResult",
    "CanNetwork",
    "ChordLookupResult",
    "ChordNetwork",
    "MulticastJoinNetwork",
    "MulticastJoinStats",
    "join_sequentially",
]
