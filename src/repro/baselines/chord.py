"""A Chord-style ring baseline (routing comparison only).

The paper's introduction contrasts the hypercube scheme with Chord
[12]: Chord resolves names in O(log n) application-level hops but "the
actual distance of each hop through the Internet ... may be very
large" -- it does not satisfy property P2 (routing locality).  This
module implements Chord's routing structure so that claim can be
measured: same member set, same topology, hop counts comparable,
stretch much worse than the (optimized) hypercube tables.

Only the routing state is built (successors + finger tables, from
global knowledge, like our oracle); Chord's stabilization protocol is
out of scope -- the baseline exists to compare lookup *paths*, which
is exactly what the intro's argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ids.digits import NodeId


def _in_half_open(value: int, low: int, high: int, modulus: int) -> bool:
    """True iff ``value`` lies in the ring interval ``(low, high]``."""
    low, high, value = low % modulus, high % modulus, value % modulus
    if low < high:
        return low < value <= high
    if low > high:
        return value > low or value <= high
    return True  # full circle


@dataclass
class ChordLookupResult:
    success: bool
    path: List[NodeId]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class ChordNode:
    """Successor pointer plus finger table."""

    def __init__(self, node_id: NodeId, ring_size: int):
        self.node_id = node_id
        self.ring_size = ring_size
        self.successor: Optional[NodeId] = None
        self.fingers: List[NodeId] = []

    def closest_preceding(self, key: int) -> Optional[NodeId]:
        """The finger most closely preceding ``key`` (classic Chord)."""
        own = self.node_id.to_int()
        best: Optional[NodeId] = None
        for finger in self.fingers:
            value = finger.to_int()
            if _in_half_open(value, own, key - 1, self.ring_size) and (
                value != own
            ):
                best = finger  # fingers are sorted by offset; keep last
        return best


class ChordNetwork:
    """A complete Chord ring over a set of node IDs."""

    def __init__(self, members: Sequence[NodeId]):
        if not members:
            raise ValueError("need at least one member")
        self.ring_size = members[0].base ** members[0].num_digits
        ordered = sorted(members, key=lambda node: node.to_int())
        if len({node.to_int() for node in ordered}) != len(ordered):
            raise ValueError("member IDs must be unique")
        self.members = ordered
        self.nodes: Dict[NodeId, ChordNode] = {
            node_id: ChordNode(node_id, self.ring_size)
            for node_id in ordered
        }
        self._build_pointers()

    # -- construction ----------------------------------------------------

    def _successor_of_value(self, value: int) -> NodeId:
        """The first member at or after ``value`` on the ring."""
        value %= self.ring_size
        lo, hi = 0, len(self.members)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.members[mid].to_int() < value:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.members):
            return self.members[0]
        return self.members[lo]

    def _build_pointers(self) -> None:
        bits = max(1, (self.ring_size - 1).bit_length())
        for index, node_id in enumerate(self.members):
            node = self.nodes[node_id]
            node.successor = self.members[(index + 1) % len(self.members)]
            own = node_id.to_int()
            fingers: List[NodeId] = []
            for i in range(bits):
                target = self._successor_of_value(own + 2**i)
                if target != node_id and (
                    not fingers or fingers[-1] != target
                ):
                    fingers.append(target)
            node.fingers = fingers

    # -- lookups ---------------------------------------------------------

    def successor_of(self, key: NodeId) -> NodeId:
        """Ground truth: the member responsible for ``key``."""
        return self._successor_of_value(key.to_int())

    def lookup(
        self, origin: NodeId, key: NodeId, max_hops: Optional[int] = None
    ) -> ChordLookupResult:
        """Iterative Chord lookup: walk closest-preceding fingers until
        the key falls between a node and its successor."""
        if max_hops is None:
            max_hops = 2 * max(1, (self.ring_size - 1).bit_length()) + len(
                self.members
            )
        key_value = key.to_int()
        path = [origin]
        current = origin
        for _ in range(max_hops):
            node = self.nodes[current]
            if _in_half_open(
                key_value,
                current.to_int(),
                node.successor.to_int(),
                self.ring_size,
            ):
                if node.successor != current:
                    path.append(node.successor)
                return ChordLookupResult(True, path)
            nxt = node.closest_preceding(key_value)
            if nxt is None or nxt == current:
                nxt = node.successor
            path.append(nxt)
            current = nxt
        return ChordLookupResult(False, path)

    # -- metrics -----------------------------------------------------------

    def lookup_stats(self, pairs, latency_model=None):
        """Mean hops (and mean stretch when a latency model is given)
        over (origin, key) pairs."""
        hops: List[int] = []
        stretches: List[float] = []
        for origin, key in pairs:
            result = self.lookup(origin, key)
            if not result.success:
                raise RuntimeError(f"lookup {origin} -> {key} failed")
            hops.append(result.hops)
            if latency_model is not None:
                route_latency = sum(
                    latency_model.latency(a, b)
                    for a, b in zip(result.path, result.path[1:])
                )
                direct = latency_model.latency(
                    origin, result.path[-1]
                )
                if direct > 0:
                    stretches.append(route_latency / direct)
        mean_hops = sum(hops) / len(hops)
        mean_stretch = (
            sum(stretches) / len(stretches) if stretches else None
        )
        return mean_hops, mean_stretch
