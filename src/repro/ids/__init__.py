"""ID space for hypercube routing.

Node and object identifiers are fixed-length strings of ``d`` digits of
base ``b`` (Section 2 of the paper).  Digits are counted from the
*right*: ``x[0]`` is the rightmost digit, following PRR's suffix-matching
convention.

The package provides:

* :class:`~repro.ids.digits.NodeId` -- an immutable ID value.
* :class:`~repro.ids.idspace.IdSpace` -- a ``(b, d)`` parameterization
  that creates, parses, hashes and samples IDs.
* :mod:`~repro.ids.suffix` -- suffix algebra (``csuf``, suffix sets,
  suffix indexes) used throughout the protocol and its analysis.
* :mod:`~repro.ids.packed` -- fixed-width integer encoding of the same
  algebra (shift/mask arithmetic, XOR ``csuf`` fast path) backing the
  simulator hot paths.
"""

from repro.ids.digits import PACKED_DIGIT_BITS, NodeId
from repro.ids.idspace import IdSpace
from repro.ids.packed import (
    PackedIdSpace,
    packed_csuf_len,
    packed_digit,
    packed_suffix,
)
from repro.ids.suffix import (
    SuffixIndex,
    csuf,
    csuf_len,
    extend_suffix,
    has_suffix,
    suffix_of,
    suffix_str,
)

__all__ = [
    "NodeId",
    "IdSpace",
    "PackedIdSpace",
    "PACKED_DIGIT_BITS",
    "packed_csuf_len",
    "packed_digit",
    "packed_suffix",
    "SuffixIndex",
    "csuf",
    "csuf_len",
    "extend_suffix",
    "has_suffix",
    "suffix_of",
    "suffix_str",
]
