"""Immutable node identifiers.

A :class:`NodeId` is a ``d``-digit base-``b`` string.  Digit ``i`` is the
``i``-th digit *from the right* (the paper's ``x[i]`` notation, with the
0th digit being the rightmost).  IDs are value objects: hashable,
totally ordered by numeric value, and cheap to compare.
"""

from __future__ import annotations

from typing import Iterator, Tuple

_DIGIT_CHARS = "0123456789abcdefghijklmnopqrstuvwxyz"
_CHAR_VALUES = {c: v for v, c in enumerate(_DIGIT_CHARS)}

MAX_BASE = len(_DIGIT_CHARS)

#: Bits per digit in the packed-int encoding (see
#: :mod:`repro.ids.packed`).  Six bits hold any digit of any supported
#: base (``MAX_BASE == 36 < 64``); using a fixed width keeps the
#: shift/mask algebra base-independent, so every :class:`NodeId` can
#: carry its packed form regardless of the space it came from.
PACKED_DIGIT_BITS = 6

#: Mask selecting one packed digit.
PACKED_DIGIT_MASK = (1 << PACKED_DIGIT_BITS) - 1


class NodeId:
    """A fixed-length base-``b`` identifier.

    ``digits`` is stored rightmost-first: ``digits[0]`` is the paper's
    ``x[0]`` (rightmost digit).  The printable form is most-significant
    digit first, matching the paper's figures (node ``21233`` has
    ``x[0] == 3``).
    """

    __slots__ = ("_digits", "_base", "_hash", "_str", "_int", "_packed")

    def __init__(self, digits: Tuple[int, ...], base: int):
        if not 2 <= base <= MAX_BASE:
            raise ValueError(f"base must be in [2, {MAX_BASE}], got {base}")
        if not digits:
            raise ValueError("an ID must have at least one digit")
        packed = 0
        shift = 0
        for dg in digits:
            if not 0 <= dg < base:
                raise ValueError(f"digit {dg} out of range for base {base}")
            packed |= dg << shift
            shift += PACKED_DIGIT_BITS
        self._digits = tuple(digits)
        self._base = base
        # Fixed-width integer form: digit i sits at bit i*PACKED_DIGIT_BITS
        # (see repro.ids.packed).  Computed eagerly inside the validation
        # loop above, so the hot suffix algebra below is pure int math.
        self._packed = packed
        self._hash = hash((self._digits, base))
        # Lazily-computed caches: the printable form is needed on every
        # traced message and the numeric value on every ordered compare,
        # both many times per simulated message.
        self._str: "str | None" = None
        self._int: "int | None" = None

    @property
    def digits(self) -> Tuple[int, ...]:
        """Digits rightmost-first: ``digits[i]`` is the paper's ``x[i]``."""
        return self._digits

    @property
    def base(self) -> int:
        return self._base

    @property
    def num_digits(self) -> int:
        """The paper's ``d``."""
        return len(self._digits)

    def digit(self, i: int) -> int:
        """The paper's ``x[i]``: the ``i``-th digit from the right."""
        return self._digits[i]

    def __getitem__(self, i: int) -> int:
        return self._digits[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._digits)

    def __len__(self) -> int:
        return len(self._digits)

    def to_int(self) -> int:
        """Numeric value of the ID (rightmost digit least significant)."""
        value = self._int
        if value is None:
            value = 0
            for dg in reversed(self._digits):
                value = value * self._base + dg
            self._int = value
        return value

    def suffix(self, k: int) -> Tuple[int, ...]:
        """The rightmost ``k`` digits, rightmost-first.

        ``suffix(0)`` is the empty suffix shared by every ID.
        """
        if not 0 <= k <= len(self._digits):
            raise ValueError(f"suffix length {k} out of range")
        return self._digits[:k]

    def has_suffix(self, suffix: Tuple[int, ...]) -> bool:
        """True iff this ID ends with ``suffix`` (rightmost-first tuple)."""
        k = len(suffix)
        if k > len(self._digits):
            return False
        return self._digits[:k] == tuple(suffix)

    @property
    def packed(self) -> int:
        """Fixed-width integer encoding (see :mod:`repro.ids.packed`)."""
        return self._packed

    def csuf_len(self, other: "NodeId") -> int:
        """Length of the longest common suffix with ``other``.

        This is the paper's ``|csuf(x.ID, y.ID)|``.

        Called on every routing decision and table check, so instead of
        a digit loop the packed forms are XORed: the lowest set bit of
        the XOR sits inside the first differing digit, so its position
        divided by the digit width *is* the answer (clamped to the
        shorter ID for mixed-length comparisons).
        """
        z = self._packed ^ other._packed
        a = self._digits
        b = other._digits
        limit = len(a) if len(a) <= len(b) else len(b)
        if z == 0:
            return limit
        n = ((z & -z).bit_length() - 1) // PACKED_DIGIT_BITS
        return n if n < limit else limit

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        # Attribute access doubles as the type check (zero-cost
        # try/except beats an isinstance call in this hot comparison).
        try:
            return self._digits == other._digits and self._base == other._base
        except AttributeError:
            return NotImplemented

    def __ne__(self, other: object) -> bool:
        if other is self:
            return False
        try:
            return self._digits != other._digits or self._base != other._base
        except AttributeError:
            return NotImplemented

    def __lt__(self, other: "NodeId") -> bool:
        return self.to_int() < other.to_int()

    def __le__(self, other: "NodeId") -> bool:
        return self.to_int() <= other.to_int()

    def __gt__(self, other: "NodeId") -> bool:
        return self.to_int() > other.to_int()

    def __ge__(self, other: "NodeId") -> bool:
        return self.to_int() >= other.to_int()

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = "".join(
                _DIGIT_CHARS[dg] for dg in reversed(self._digits)
            )
            self._str = text
        return text

    def __repr__(self) -> str:
        return f"NodeId('{self}', b={self._base})"


def digits_from_string(text: str, base: int) -> Tuple[int, ...]:
    """Parse a printable ID (most-significant digit first) into a
    rightmost-first digit tuple."""
    values = []
    for ch in reversed(text.lower()):
        if ch not in _CHAR_VALUES:
            raise ValueError(f"invalid digit character {ch!r}")
        v = _CHAR_VALUES[ch]
        if v >= base:
            raise ValueError(f"digit {ch!r} out of range for base {base}")
        values.append(v)
    return tuple(values)


def digits_from_int(value: int, base: int, num_digits: int) -> Tuple[int, ...]:
    """Convert a non-negative integer into a rightmost-first digit tuple."""
    if value < 0:
        raise ValueError("ID value must be non-negative")
    if value >= base ** num_digits:
        raise ValueError(
            f"value {value} does not fit in {num_digits} base-{base} digits"
        )
    out = []
    for _ in range(num_digits):
        out.append(value % base)
        value //= base
    return tuple(out)
