"""The ``(b, d)`` ID space.

An :class:`IdSpace` fixes the base ``b`` and the number of digits ``d``
and acts as the factory for all :class:`~repro.ids.digits.NodeId`
values used by a network.  IDs may be parsed from strings, converted
from integers, hashed from arbitrary names (the paper's "typically
generated using a hash function, such as MD5 or SHA-1"), or sampled
uniformly at random.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Set

from repro.ids.digits import NodeId, digits_from_int, digits_from_string


class IdSpace:
    """Factory and namespace for ``d``-digit base-``b`` identifiers."""

    def __init__(self, base: int, num_digits: int):
        if num_digits < 1:
            raise ValueError("num_digits must be >= 1")
        self.base = base
        self.num_digits = num_digits
        # Validate the base eagerly through a throwaway ID.
        NodeId((0,) * num_digits, base)

    @property
    def size(self) -> int:
        """Number of distinct IDs, ``b**d``."""
        return self.base ** self.num_digits

    def from_string(self, text: str) -> NodeId:
        """Parse a printable ID such as ``"21233"``.

        The string must have exactly ``d`` digits.
        """
        if len(text) != self.num_digits:
            raise ValueError(
                f"expected {self.num_digits} digits, got {len(text)}"
            )
        return NodeId(digits_from_string(text, self.base), self.base)

    def from_int(self, value: int) -> NodeId:
        """The ID whose numeric value is ``value``."""
        return NodeId(
            digits_from_int(value, self.base, self.num_digits), self.base
        )

    def from_digits(self, digits: Iterable[int]) -> NodeId:
        """Build an ID from a rightmost-first digit sequence."""
        digits = tuple(digits)
        if len(digits) != self.num_digits:
            raise ValueError(
                f"expected {self.num_digits} digits, got {len(digits)}"
            )
        return NodeId(digits, self.base)

    def hash_name(self, name: str, algorithm: str = "sha1") -> NodeId:
        """Derive an ID by hashing ``name`` (Section 2 of the paper)."""
        digest = hashlib.new(algorithm, name.encode("utf-8")).digest()
        value = int.from_bytes(digest, "big") % self.size
        return self.from_int(value)

    def random_id(self, rng: random.Random) -> NodeId:
        """A uniformly random ID."""
        return self.from_int(rng.randrange(self.size))

    def random_unique_ids(
        self,
        count: int,
        rng: random.Random,
        exclude: Optional[Iterable[NodeId]] = None,
    ) -> List[NodeId]:
        """Sample ``count`` distinct IDs uniformly, avoiding ``exclude``.

        Node IDs in the paper are unique in the network, so experiment
        drivers use this to populate ``V`` and ``W``.
        """
        taken: Set[NodeId] = set(exclude) if exclude is not None else set()
        if count + len(taken) > self.size:
            raise ValueError("not enough IDs in the space")
        out: List[NodeId] = []
        while len(out) < count:
            candidate = self.random_id(rng)
            if candidate in taken:
                continue
            taken.add(candidate)
            out.append(candidate)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdSpace):
            return NotImplemented
        return (
            self.base == other.base and self.num_digits == other.num_digits
        )

    def __hash__(self) -> int:
        return hash((self.base, self.num_digits))

    def __repr__(self) -> str:
        return f"IdSpace(base={self.base}, num_digits={self.num_digits})"
