"""Suffix algebra and suffix indexes.

Suffixes are represented as tuples of digits, *rightmost-first*: the
suffix ``261`` of node ``10261`` is the tuple ``(1, 6, 2)``.  The empty
tuple is the suffix shared by every ID.  The paper writes ``j . omega``
for digit ``j`` concatenated (on the left, in print) with suffix
``omega``; in tuple form that is :func:`extend_suffix`.

:class:`SuffixIndex` maps each suffix to the set of known nodes carrying
it; it implements the paper's suffix sets ``V_{l_i...l_0}`` and backs the
consistency checker and the C-set tree machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.ids.digits import NodeId, _DIGIT_CHARS

Suffix = Tuple[int, ...]


def csuf(x: NodeId, y: NodeId) -> Suffix:
    """The longest common suffix of two IDs, as a rightmost-first tuple."""
    return x.suffix(x.csuf_len(y))


def csuf_len(x: NodeId, y: NodeId) -> int:
    """``|csuf(x.ID, y.ID)|`` -- length of the longest common suffix."""
    return x.csuf_len(y)


def suffix_of(node: NodeId, k: int) -> Suffix:
    """The rightmost ``k`` digits of ``node``, rightmost-first."""
    return node.suffix(k)


def has_suffix(node: NodeId, suffix: Suffix) -> bool:
    """True iff ``node``'s ID ends with ``suffix``."""
    return node.has_suffix(suffix)


def extend_suffix(digit: int, suffix: Suffix) -> Suffix:
    """The paper's ``j . omega``: prepend ``digit`` to the *left* of the
    printed suffix, i.e. append it as the next-more-significant digit."""
    return tuple(suffix) + (digit,)


def suffix_str(suffix: Suffix) -> str:
    """Printable form, most-significant digit first (as in the paper)."""
    return "".join(_DIGIT_CHARS[dg] for dg in reversed(suffix))


def parse_suffix(text: str, base: int) -> Suffix:
    """Parse a printed suffix such as ``"261"`` into tuple form."""
    out = []
    for ch in reversed(text.lower()):
        value = _DIGIT_CHARS.index(ch)
        if value >= base:
            raise ValueError(f"digit {ch!r} out of range for base {base}")
        out.append(value)
    return tuple(out)


class SuffixIndex:
    """Set of nodes indexed by every suffix they carry.

    For a set ``V`` of nodes, ``index.nodes_with(omega)`` is the paper's
    suffix set ``V_omega``.  Construction is ``O(|V| * d)``; membership
    queries are ``O(1)``.
    """

    def __init__(self, nodes: Iterable[NodeId] = ()):
        self._by_suffix: Dict[Suffix, Set[NodeId]] = {}
        self._nodes: Set[NodeId] = set()
        for node in nodes:
            self.add(node)

    def add(self, node: NodeId) -> None:
        """Index ``node`` under every suffix it carries (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for k in range(node.num_digits + 1):
            self._by_suffix.setdefault(node.suffix(k), set()).add(node)

    def discard(self, node: NodeId) -> None:
        """Remove ``node`` from every suffix bucket (no-op if absent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for k in range(node.num_digits + 1):
            bucket = self._by_suffix.get(node.suffix(k))
            if bucket is not None:
                bucket.discard(node)
                if not bucket:
                    del self._by_suffix[node.suffix(k)]

    def nodes_with(self, suffix: Suffix) -> Set[NodeId]:
        """The suffix set ``V_omega`` (a fresh set; safe to mutate)."""
        return set(self._by_suffix.get(tuple(suffix), ()))

    def any_with(self, suffix: Suffix) -> bool:
        """True iff ``V_omega`` is non-empty."""
        return tuple(suffix) in self._by_suffix

    def count_with(self, suffix: Suffix) -> int:
        """``|V_omega|``: how many indexed nodes carry ``suffix``."""
        return len(self._by_suffix.get(tuple(suffix), ()))

    @property
    def nodes(self) -> Set[NodeId]:
        return set(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)


def notification_suffix_len(joiner: NodeId, index: SuffixIndex) -> int:
    """Length ``k`` such that ``V_{x[k-1]...x[0]}`` is non-empty but
    ``V_{x[k]...x[0]}`` is empty (Definition 3.4).

    With ``V`` non-empty, ``k == 0`` means no node in ``V`` shares even
    the rightmost digit, in which case the notification set is all of
    ``V``.  Requires that ``joiner`` itself is *not* in the index.
    """
    if joiner in index:
        raise ValueError("joiner must not already be in the network")
    if len(index) == 0:
        raise ValueError("the network must be non-empty (assumption (i))")
    k = 0
    while k < joiner.num_digits and index.any_with(joiner.suffix(k + 1)):
        k += 1
    return k


def notification_set(joiner: NodeId, index: SuffixIndex) -> Set[NodeId]:
    """The paper's ``V^Notify_x`` (Definition 3.4)."""
    k = notification_suffix_len(joiner, index)
    return index.nodes_with(joiner.suffix(k))


def sort_ids(nodes: Iterable[NodeId]) -> List[NodeId]:
    """Deterministic ordering helper used by experiment drivers."""
    return sorted(nodes, key=lambda node: node.digits)
