"""Fixed-width integer encoding of a ``(base, num_digits)`` ID space.

A packed ID stores digit ``i`` (the paper's ``x[i]``, rightmost-first)
in bits ``[i*w, (i+1)*w)`` of a plain Python int, with
``w == PACKED_DIGIT_BITS == 6`` — wide enough for any supported base
(``MAX_BASE == 36``).  The whole suffix algebra of
:mod:`repro.ids.suffix` then collapses into shift/mask arithmetic:

* ``digit(p, i)``       → ``(p >> (i*w)) & mask``
* ``suffix(p, k)``      → ``p & ((1 << k*w) - 1)``
* ``csuf_len(p, q)``    → position of the lowest set bit of ``p ^ q``
  divided by ``w`` (the XOR trick: the first differing digit owns the
  lowest differing bit; identical IDs XOR to zero).

Every :class:`~repro.ids.digits.NodeId` carries its packed form in
``NodeId.packed`` (computed during construction), so the two
representations are interchangeable: the protocol hot paths run on the
ints while the public API keeps trafficking in :class:`NodeId` values.
:class:`PackedIdSpace` is the codec between them, plus the packed-side
algebra — and :meth:`PackedIdSpace.unpack` interns, so round-tripping a
hot ID repeatedly costs one dict hit, not an object construction.

Memory: a packed ID for ``d <= 10`` digits fits a small int (28 bytes)
versus ~200+ bytes for a ``NodeId`` with its digit tuple; flat
containers of packed ints (see the array-backed
:class:`~repro.routing.table.NeighborTable` and the incremental
consistency index) are what make the 100k-node ``bench_scale`` runs
fit in memory.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Tuple

from repro.ids.digits import (
    MAX_BASE,
    PACKED_DIGIT_BITS,
    PACKED_DIGIT_MASK,
    NodeId,
)

__all__ = [
    "PACKED_DIGIT_BITS",
    "PACKED_DIGIT_MASK",
    "PackedIdSpace",
    "packed_csuf_len",
    "packed_digit",
    "packed_suffix",
]


def packed_digit(packed: int, i: int) -> int:
    """Digit ``i`` (rightmost-first) of a packed ID."""
    return (packed >> (i * PACKED_DIGIT_BITS)) & PACKED_DIGIT_MASK


def packed_suffix(packed: int, k: int) -> int:
    """The packed form of the rightmost ``k`` digits."""
    return packed & ((1 << (k * PACKED_DIGIT_BITS)) - 1)


def packed_csuf_len(a: int, b: int, num_digits: int) -> int:
    """``|csuf|`` of two packed IDs of the same ``num_digits`` width.

    XOR trick: equal IDs XOR to 0 (full-length common suffix);
    otherwise the lowest set bit of the XOR lies inside the first
    differing digit.
    """
    z = a ^ b
    if z == 0:
        return num_digits
    n = ((z & -z).bit_length() - 1) // PACKED_DIGIT_BITS
    return n if n < num_digits else num_digits


class PackedIdSpace:
    """Codec and shift/mask algebra for one ``(base, num_digits)`` space.

    Mirrors the :class:`~repro.ids.idspace.IdSpace` factory surface on
    the packed-int side; ``pack``/``unpack`` convert, everything else
    stays in int land.  Instances intern unpacked :class:`NodeId`
    values so packed hot paths can rejoin the object world for free.
    """

    __slots__ = (
        "base",
        "num_digits",
        "digit_bits",
        "digit_mask",
        "id_mask",
        "_suffix_masks",
        "_intern",
    )

    def __init__(self, base: int, num_digits: int):
        if not 2 <= base <= MAX_BASE:
            raise ValueError(f"base must be in [2, {MAX_BASE}], got {base}")
        if num_digits < 1:
            raise ValueError("num_digits must be >= 1")
        self.base = base
        self.num_digits = num_digits
        self.digit_bits = PACKED_DIGIT_BITS
        self.digit_mask = PACKED_DIGIT_MASK
        #: Mask covering all ``num_digits`` packed digits.
        self.id_mask = (1 << (PACKED_DIGIT_BITS * num_digits)) - 1
        #: ``_suffix_masks[k]`` selects the rightmost ``k`` digits.
        self._suffix_masks: Tuple[int, ...] = tuple(
            (1 << (PACKED_DIGIT_BITS * k)) - 1 for k in range(num_digits + 1)
        )
        self._intern: Dict[int, NodeId] = {}

    # -- codec ---------------------------------------------------------

    def pack(self, node: NodeId) -> int:
        """The packed form of ``node`` (validated against this space)."""
        if node.base != self.base or node.num_digits != self.num_digits:
            raise ValueError(
                f"{node!r} does not belong to a "
                f"({self.base}, {self.num_digits}) space"
            )
        return node.packed

    def pack_digits(self, digits: Iterable[int]) -> int:
        """Pack a rightmost-first digit sequence."""
        packed = 0
        shift = 0
        count = 0
        for dg in digits:
            if not 0 <= dg < self.base:
                raise ValueError(
                    f"digit {dg} out of range for base {self.base}"
                )
            packed |= dg << shift
            shift += PACKED_DIGIT_BITS
            count += 1
        if count != self.num_digits:
            raise ValueError(
                f"expected {self.num_digits} digits, got {count}"
            )
        return packed

    def unpack(self, packed: int) -> NodeId:
        """The :class:`NodeId` for ``packed`` (interned per space)."""
        node = self._intern.get(packed)
        if node is None:
            if not 0 <= packed <= self.id_mask:
                raise ValueError(f"packed value {packed} out of range")
            node = NodeId(self.digits_of(packed), self.base)
            self._intern[packed] = node
        return node

    def intern(self, node: NodeId) -> NodeId:
        """Register ``node`` as the canonical unpack of its packed form."""
        packed = self.pack(node)
        return self._intern.setdefault(packed, node)

    def digits_of(self, packed: int) -> Tuple[int, ...]:
        """Rightmost-first digit tuple of a packed ID."""
        w = PACKED_DIGIT_BITS
        mask = PACKED_DIGIT_MASK
        digits = tuple(
            (packed >> (i * w)) & mask for i in range(self.num_digits)
        )
        for dg in digits:
            if dg >= self.base:
                raise ValueError(
                    f"digit {dg} out of range for base {self.base}"
                )
        return digits

    # -- shift/mask algebra --------------------------------------------

    def digit(self, packed: int, i: int) -> int:
        """The paper's ``x[i]`` of a packed ID."""
        if not 0 <= i < self.num_digits:
            raise ValueError(f"digit index {i} out of range")
        return (packed >> (i * PACKED_DIGIT_BITS)) & PACKED_DIGIT_MASK

    def suffix(self, packed: int, k: int) -> int:
        """Packed form of the rightmost ``k`` digits (``suffix(p, 0) == 0``)."""
        if not 0 <= k <= self.num_digits:
            raise ValueError(f"suffix length {k} out of range")
        return packed & self._suffix_masks[k]

    def suffix_key(self, packed: int, k: int) -> int:
        """A single int identifying the *length-tagged* suffix.

        Packed suffixes of different lengths can collide as plain ints
        (``suffix("00", 2) == suffix("0", 1) == 0``), so indexes keyed
        by suffix fold the length into bits above the widest ID:
        ``key = (k << d*w) | suffix``.  Used by the oracle constructor
        and the incremental consistency index.
        """
        return (k << (self.num_digits * PACKED_DIGIT_BITS)) | (
            packed & self._suffix_masks[k]
        )

    def has_suffix(self, packed: int, suffix: int, k: int) -> bool:
        """True iff the packed ID ends with the packed ``k``-digit suffix."""
        return (packed & self._suffix_masks[k]) == suffix

    def with_digit(self, packed: int, i: int, digit: int) -> int:
        """Copy of ``packed`` with digit ``i`` replaced by ``digit``."""
        if not 0 <= i < self.num_digits:
            raise ValueError(f"digit index {i} out of range")
        if not 0 <= digit < self.base:
            raise ValueError(f"digit {digit} out of range for base {self.base}")
        shift = i * PACKED_DIGIT_BITS
        return (packed & ~(PACKED_DIGIT_MASK << shift)) | (digit << shift)

    def csuf_len(self, a: int, b: int) -> int:
        """``|csuf|`` of two packed IDs of this space (XOR fast path)."""
        z = a ^ b
        if z == 0:
            return self.num_digits
        n = ((z & -z).bit_length() - 1) // PACKED_DIGIT_BITS
        return n if n < self.num_digits else self.num_digits

    # -- numeric value -------------------------------------------------

    def to_value(self, packed: int) -> int:
        """Numeric (base-``b``) value of a packed ID."""
        value = 0
        w = PACKED_DIGIT_BITS
        mask = PACKED_DIGIT_MASK
        for i in range(self.num_digits - 1, -1, -1):
            value = value * self.base + ((packed >> (i * w)) & mask)
        return value

    def from_value(self, value: int) -> int:
        """Packed ID whose numeric value is ``value``."""
        if value < 0:
            raise ValueError("ID value must be non-negative")
        if value >= self.base ** self.num_digits:
            raise ValueError(
                f"value {value} does not fit in "
                f"{self.num_digits} base-{self.base} digits"
            )
        packed = 0
        shift = 0
        for _ in range(self.num_digits):
            packed |= (value % self.base) << shift
            value //= self.base
            shift += PACKED_DIGIT_BITS
        return packed

    def random_packed(self, rng: random.Random) -> int:
        """A uniformly random packed ID."""
        return self.from_value(rng.randrange(self.base ** self.num_digits))

    def pack_all(self, nodes: Iterable[NodeId]) -> List[int]:
        """Pack a batch (interning each node along the way)."""
        out = []
        for node in nodes:
            packed = self.pack(node)
            self._intern.setdefault(packed, node)
            out.append(packed)
        return out

    def __repr__(self) -> str:
        return (
            f"PackedIdSpace(base={self.base}, num_digits={self.num_digits})"
        )
