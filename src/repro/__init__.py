"""repro: Liu & Lam (ICDCS 2003), "Neighbor Table Construction and
Update in a Dynamic Peer-to-Peer Network" -- a full reproduction.

The package implements the hypercube (suffix-matching) routing scheme
of PRR/Pastry/Tapestry, the paper's join protocol for constructing and
updating neighbor tables under arbitrary concurrent joins, the C-set
tree machinery used in the consistency proof, the communication-cost
analysis (Theorems 3-5), an event-driven simulator with a transit-stub
topology substrate, a Tapestry-style multicast-join baseline, and a
harness regenerating every figure in the paper's evaluation.

Quickstart::

    import random
    from repro import IdSpace, JoinProtocolNetwork

    space = IdSpace(base=16, num_digits=8)
    rng = random.Random(1)
    ids = space.random_unique_ids(120, rng)
    net = JoinProtocolNetwork.from_oracle(space, ids[:100], seed=1)
    for joiner in ids[100:]:
        net.start_join(joiner)       # all concurrent, t = 0
    net.run()
    assert net.all_in_system()                   # Theorem 2
    assert net.check_consistency().consistent    # Theorem 1
"""

from repro.analysis import (
    expected_join_noti,
    expected_join_noti_upper_bound,
    level_distribution,
    theorem3_bound,
)
from repro.consistency import check_consistency, verify_reachability
from repro.csettree import (
    build_realized_tree,
    build_template,
    notification_set,
)
from repro.ids import IdSpace, NodeId
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Observability,
    Tracer,
)
from repro.optimize import measure_stretch, optimize_tables
from repro.protocol import (
    JoinProtocolNetwork,
    NodeStatus,
    ProtocolNode,
    SizingPolicy,
    initialize_network,
)
from repro.protocol.leave import leave_sequentially
from repro.recovery import fail_nodes, recover_from_failures
from repro.routing import (
    NeighborState,
    NeighborTable,
    build_consistent_tables,
    format_table,
    route,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "IdSpace",
    "JoinProtocolNetwork",
    "MetricsRegistry",
    "NeighborState",
    "NeighborTable",
    "NodeId",
    "NodeStatus",
    "NullTracer",
    "Observability",
    "ProtocolNode",
    "Simulator",
    "SizingPolicy",
    "Tracer",
    "build_consistent_tables",
    "build_realized_tree",
    "build_template",
    "check_consistency",
    "expected_join_noti",
    "expected_join_noti_upper_bound",
    "fail_nodes",
    "format_table",
    "initialize_network",
    "leave_sequentially",
    "level_distribution",
    "measure_stretch",
    "notification_set",
    "optimize_tables",
    "recover_from_failures",
    "route",
    "theorem3_bound",
    "verify_reachability",
    "__version__",
]
