"""repro: Liu & Lam (ICDCS 2003), "Neighbor Table Construction and
Update in a Dynamic Peer-to-Peer Network" -- a full reproduction.

The package implements the hypercube (suffix-matching) routing scheme
of PRR/Pastry/Tapestry, the paper's join protocol for constructing and
updating neighbor tables under arbitrary concurrent joins, the C-set
tree machinery used in the consistency proof, the communication-cost
analysis (Theorems 3-5), an event-driven simulator with a transit-stub
topology substrate, a Tapestry-style multicast-join baseline, and a
harness regenerating every figure in the paper's evaluation.

Quickstart::

    import random
    from repro import IdSpace, JoinProtocolNetwork

    space = IdSpace(base=16, num_digits=8)
    rng = random.Random(1)
    ids = space.random_unique_ids(120, rng)
    net = JoinProtocolNetwork.from_oracle(space, ids[:100], seed=1)
    for joiner in ids[100:]:
        net.start_join(joiner)       # all concurrent, t = 0
    net.run()
    assert net.all_in_system()                   # Theorem 2
    assert net.check_consistency().consistent    # Theorem 1
"""

# Re-exports resolve lazily (PEP 562) so that importing any submodule
# -- which executes this package __init__ -- never drags in the rest
# of the library.  In particular the sans-io core (repro.core,
# repro.protocol) must be importable without repro.sim or asyncio
# appearing in sys.modules; tests/test_architecture.py enforces this.
_EXPORTS = {
    "expected_join_noti": "repro.analysis",
    "expected_join_noti_upper_bound": "repro.analysis",
    "level_distribution": "repro.analysis",
    "theorem3_bound": "repro.analysis",
    "check_consistency": "repro.consistency",
    "verify_reachability": "repro.consistency",
    "build_realized_tree": "repro.csettree",
    "build_template": "repro.csettree",
    "notification_set": "repro.csettree",
    "IdSpace": "repro.ids",
    "NodeId": "repro.ids",
    "MetricsRegistry": "repro.obs",
    "NullTracer": "repro.obs",
    "Observability": "repro.obs",
    "Tracer": "repro.obs",
    "measure_stretch": "repro.optimize",
    "optimize_tables": "repro.optimize",
    "JoinProtocolNetwork": "repro.protocol",
    "NodeStatus": "repro.protocol",
    "ProtocolNode": "repro.protocol",
    "SizingPolicy": "repro.protocol",
    "initialize_network": "repro.protocol",
    "leave_sequentially": "repro.protocol.leave",
    "fail_nodes": "repro.recovery",
    "recover_from_failures": "repro.recovery",
    "NeighborState": "repro.routing",
    "NeighborTable": "repro.routing",
    "build_consistent_tables": "repro.routing",
    "format_table": "repro.routing",
    "route": "repro.routing",
    "create_runtime": "repro.runtime",
    "Simulator": "repro.sim",
}

__version__ = "1.0.0"


def __getattr__(name: str):
    """Resolve a re-exported name or submodule on first use."""
    import importlib

    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(importlib.import_module(module_name), name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    try:
        # `import repro; repro.protocol` keeps working without an
        # explicit submodule import, as with eager package inits.
        return importlib.import_module(f"{__name__}.{name}")
    except ModuleNotFoundError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "IdSpace",
    "JoinProtocolNetwork",
    "MetricsRegistry",
    "NeighborState",
    "NeighborTable",
    "NodeId",
    "NodeStatus",
    "NullTracer",
    "Observability",
    "ProtocolNode",
    "Simulator",
    "SizingPolicy",
    "Tracer",
    "build_consistent_tables",
    "build_realized_tree",
    "build_template",
    "check_consistency",
    "create_runtime",
    "expected_join_noti",
    "expected_join_noti_upper_bound",
    "fail_nodes",
    "format_table",
    "initialize_network",
    "leave_sequentially",
    "level_distribution",
    "measure_stretch",
    "notification_set",
    "optimize_tables",
    "recover_from_failures",
    "route",
    "theorem3_bound",
    "verify_reachability",
    "__version__",
]
