"""Message transport over the event simulator.

Implements assumption (iii) of the paper (Section 3.1): messages
between nodes are delivered reliably.  Delivery delay comes from a
pluggable :class:`~repro.topology.attachment.LatencyModel`, so the same
protocol code runs over constant-delay unit tests and the full
transit-stub topology of the Figure 15(b) experiments.
"""

from repro.network.message import Message
from repro.network.node import NetworkNode
from repro.network.stats import MessageStats
from repro.network.transport import Transport

__all__ = ["Message", "MessageStats", "NetworkNode", "Transport"]
