"""Message statistics.

Tracks, per message type: global counts, per-sender counts, and bytes.
These back the paper's measurements:

* Figure 15(b): number of ``JoinNotiMsg`` sent by each joining node.
* Theorem 3: ``CpRstMsg + JoinWaitMsg`` per joining node is <= d+1.
* Footnote 8: ``SpeNotiMsg`` is rarely sent.
* Section 6.2: bytes saved by the message-size reductions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from repro.ids.digits import NodeId
from repro.network.message import Message


class MessageStats:
    """Counters updated by the transport on every send."""

    def __init__(self) -> None:
        self.count_by_type: Dict[str, int] = defaultdict(int)
        self.bytes_by_type: Dict[str, int] = defaultdict(int)
        self.count_by_sender_type: Dict[NodeId, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.total_messages = 0
        self.total_bytes = 0
        self.dropped_by_type: Dict[str, int] = defaultdict(int)
        self.total_dropped = 0

    def on_drop(self, message: Message) -> None:
        """A message addressed to a crashed node was dropped."""
        self.dropped_by_type[message.type_name] += 1
        self.total_dropped += 1

    def on_send(self, message: Message) -> None:
        """Account one sent message (called by the transport)."""
        name = message.type_name
        size = message.size_bytes()
        self.count_by_type[name] += 1
        self.bytes_by_type[name] += size
        self.count_by_sender_type[message.sender][name] += 1
        self.total_messages += 1
        self.total_bytes += size

    def count(self, type_name: str) -> int:
        """Total messages of ``type_name`` sent so far."""
        return self.count_by_type.get(type_name, 0)

    def sent_by(self, sender: NodeId, type_name: str) -> int:
        """Messages of ``type_name`` sent by ``sender``."""
        per_sender = self.count_by_sender_type.get(sender)
        if per_sender is None:
            return 0
        return per_sender.get(type_name, 0)

    def sent_by_each(
        self, senders: Iterable[NodeId], type_name: str
    ) -> List[int]:
        """Per-sender counts of one type, in the given sender order."""
        return [self.sent_by(sender, type_name) for sender in senders]

    def big_message_count(self, sender: NodeId) -> int:
        """Total of the paper's 'big' message types sent by ``sender``
        (CpRstMsg, JoinWaitMsg, JoinNotiMsg)."""
        return (
            self.sent_by(sender, "CpRstMsg")
            + self.sent_by(sender, "JoinWaitMsg")
            + self.sent_by(sender, "JoinNotiMsg")
        )

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the per-type counters."""
        return dict(self.count_by_type)
