"""Message statistics.

Tracks, per message type: global counts, per-sender counts, and bytes.
These back the paper's measurements:

* Figure 15(b): number of ``JoinNotiMsg`` sent by each joining node.
* Theorem 3: ``CpRstMsg + JoinWaitMsg`` per joining node is <= d+1.
* Footnote 8: ``SpeNotiMsg`` is rarely sent.
* Section 6.2: bytes saved by the message-size reductions.

Since the observability subsystem (:mod:`repro.obs`) landed, the
storage behind these counters is a
:class:`~repro.obs.metrics.MetricsRegistry`: every legacy counter is a
labelled metric (``messages_sent{type=...}``,
``messages_sent_by{sender=...,type=...}``, ``message_bytes{type=...}``,
``messages_dropped{type=...}``), so a registry snapshot reproduces the
paper's accounting without bespoke counters.  The public
:class:`MessageStats` API is unchanged; the dict attributes
(``count_by_type`` etc.) are now read-only views materialized from the
registry.  Hot-path cost is preserved by caching the counter objects
per type and per (sender, type).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.obs.metrics import Counter, MetricsRegistry


class _ZeroDict(dict):
    """A plain dict that reads 0 for missing keys (defaultdict view
    semantics for the legacy ``MessageStats`` attributes, without
    inserting on read)."""

    def __missing__(self, key):
        return 0


class MessageStats:
    """Counters updated by the transport on every send.

    ``registry`` is the backing metrics store; pass a shared
    :class:`~repro.obs.metrics.MetricsRegistry` to co-locate message
    accounting with the rest of a run's metrics, or omit it to get a
    private one (the legacy behaviour).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # Hot-path caches: one dict lookup per send instead of a
        # registry get-or-create with label canonicalization.
        self._sent: Dict[str, Counter] = {}
        self._bytes: Dict[str, Counter] = {}
        # (sent, bytes) counter pairs per type: on_send resolves both
        # of its per-type counters with a single dict probe.
        self._send_pair: Dict[str, Tuple[Counter, Counter]] = {}
        self._dropped: Dict[str, Counter] = {}
        self._retransmitted: Dict[str, Counter] = {}
        self._by_sender: Dict[Tuple[NodeId, str], Counter] = {}
        # Per-sender counts accumulate as plain ints and flush into
        # labelled counters lazily (registry collector): creating a
        # ``messages_sent_by{sender=...,type=...}`` counter costs a
        # ``str(sender)`` plus label canonicalization, which is pure
        # overhead for the thousands of (sender, type) pairs a large
        # run touches exactly while it runs, and reads are rare.
        self._by_sender_pending: Dict[Tuple[NodeId, str], int] = {}
        self.registry.add_collector(self._flush_by_sender)
        self._total_messages = self.registry.counter("messages_total")
        self._total_bytes = self.registry.counter("message_bytes_total")
        self._total_dropped = self.registry.counter("messages_dropped_total")
        self._total_retransmitted = self.registry.counter(
            "messages_retransmitted_total"
        )

    # -- write side (transport hot path) --------------------------------

    def on_send(self, message: Message) -> None:
        """Account one sent message (called by the transport)."""
        name = message.type_name
        size = message.size_bytes()
        pair = self._send_pair.get(name)
        if pair is None:
            sent = self.registry.counter("messages_sent", type=name)
            byts = self.registry.counter("message_bytes", type=name)
            self._sent[name] = sent
            self._bytes[name] = byts
            pair = (sent, byts)
            self._send_pair[name] = pair
        # Direct .value bumps: Counter.inc's non-negativity check is
        # vacuous for these literal amounts, and this method runs once
        # per message sent anywhere in a simulation.
        pair[0].value += 1
        pair[1].value += size
        key = (message.sender, name)
        pending = self._by_sender_pending
        pending[key] = pending.get(key, 0) + 1
        self._total_messages.value += 1
        self._total_bytes.value += size

    def _flush_by_sender(self) -> None:
        """Materialize pending per-sender counts into labelled counters
        (runs via the registry's collector hook and before any direct
        ``_by_sender`` read)."""
        pending = self._by_sender_pending
        if not pending:
            return
        by_sender = self._by_sender
        counter = self.registry.counter
        for key, amount in pending.items():
            instrument = by_sender.get(key)
            if instrument is None:
                sender, name = key
                instrument = counter(
                    "messages_sent_by", sender=str(sender), type=name
                )
                by_sender[key] = instrument
            instrument.value += amount
        pending.clear()

    def on_drop(self, message: Message) -> None:
        """A message addressed to a crashed node was dropped."""
        name = message.type_name
        dropped = self._dropped.get(name)
        if dropped is None:
            dropped = self.registry.counter("messages_dropped", type=name)
            self._dropped[name] = dropped
        dropped.inc()
        self._total_dropped.inc()

    def on_retransmit(self, message: Message) -> None:
        """A real-wire transport re-sent an already-accounted message.

        Retransmissions are a *wire* phenomenon (ARQ recovering from
        datagram loss), not a protocol send: they must never touch
        ``messages_sent``, or the paper's per-type counts (Figure
        15(b), Theorem 3) would diverge between the in-memory and the
        datagram transport for the same workload.  They get their own
        ``messages_retransmitted{type=...}`` counter instead.
        """
        name = message.type_name
        retransmitted = self._retransmitted.get(name)
        if retransmitted is None:
            retransmitted = self.registry.counter(
                "messages_retransmitted", type=name
            )
            self._retransmitted[name] = retransmitted
        retransmitted.inc()
        self._total_retransmitted.inc()

    # -- legacy dict views ----------------------------------------------

    @property
    def count_by_type(self) -> Dict[str, int]:
        """Per-type send counts (read-only view; missing keys read 0)."""
        return _ZeroDict(
            (name, counter.value) for name, counter in self._sent.items()
        )

    @property
    def bytes_by_type(self) -> Dict[str, int]:
        """Per-type byte totals (read-only view; missing keys read 0)."""
        return _ZeroDict(
            (name, counter.value) for name, counter in self._bytes.items()
        )

    @property
    def dropped_by_type(self) -> Dict[str, int]:
        """Per-type drop counts (read-only view; missing keys read 0)."""
        return _ZeroDict(
            (name, counter.value) for name, counter in self._dropped.items()
        )

    @property
    def retransmitted_by_type(self) -> Dict[str, int]:
        """Per-type retransmit counts (read-only; missing keys read 0)."""
        return _ZeroDict(
            (name, counter.value)
            for name, counter in self._retransmitted.items()
        )

    @property
    def count_by_sender_type(self) -> Dict[NodeId, Dict[str, int]]:
        """Nested sender -> type -> count view (missing keys read 0)."""
        self._flush_by_sender()
        out: Dict[NodeId, Dict[str, int]] = {}
        for (sender, name), counter in self._by_sender.items():
            per_sender = out.get(sender)
            if per_sender is None:
                per_sender = _ZeroDict()
                out[sender] = per_sender
            per_sender[name] = counter.value
        return out

    @property
    def total_messages(self) -> int:
        """All messages sent so far."""
        return self._total_messages.value

    @property
    def total_bytes(self) -> int:
        """Sum of ``size_bytes()`` over all sent messages."""
        return self._total_bytes.value

    @property
    def total_dropped(self) -> int:
        """All messages dropped (dead destinations) so far."""
        return self._total_dropped.value

    @property
    def total_retransmitted(self) -> int:
        """All wire-level retransmissions so far (0 in simulation)."""
        return self._total_retransmitted.value

    # -- read side -------------------------------------------------------

    def count(self, type_name: str) -> int:
        """Total messages of ``type_name`` sent so far."""
        counter = self._sent.get(type_name)
        return counter.value if counter is not None else 0

    def sent_by(self, sender: NodeId, type_name: str) -> int:
        """Messages of ``type_name`` sent by ``sender``."""
        self._flush_by_sender()
        counter = self._by_sender.get((sender, type_name))
        return counter.value if counter is not None else 0

    def sent_by_each(
        self, senders: Iterable[NodeId], type_name: str
    ) -> List[int]:
        """Per-sender counts of one type, in the given sender order."""
        return [self.sent_by(sender, type_name) for sender in senders]

    def big_message_count(self, sender: NodeId) -> int:
        """Total of the paper's 'big' message types sent by ``sender``
        (CpRstMsg, JoinWaitMsg, JoinNotiMsg)."""
        return (
            self.sent_by(sender, "CpRstMsg")
            + self.sent_by(sender, "JoinWaitMsg")
            + self.sent_by(sender, "JoinNotiMsg")
        )

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the per-type counters."""
        return {name: counter.value for name, counter in self._sent.items()}
