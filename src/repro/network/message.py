"""Base message type.

Concrete protocol messages live in :mod:`repro.protocol.messages`; the
transport only relies on the interface defined here.  ``size_bytes``
supports the Section 6.2 message-size accounting: messages that carry a
neighbor-table payload report a size proportional to the entries they
actually include.
"""

from __future__ import annotations

from typing import Optional

from repro.ids.digits import NodeId

# Size accounting constants (bytes).  An entry is an ID plus an IP
# address plus a one-byte state; headers cover addressing and type tags.
HEADER_BYTES = 40
ENTRY_BYTES = 26
NODE_REF_BYTES = 24


class Message:
    """A protocol message in flight.

    ``sender`` is the node the message came from -- protocol handlers
    frequently need it ("Action of y on receiving ... from x").

    ``msg_id`` / ``parent_id`` / ``trace_id`` are the causal identity
    stamped by the transport when tracing is on (see
    :mod:`repro.obs.causality`): ``msg_id`` is unique per send,
    ``parent_id`` is the ``msg_id`` of the message whose handler sent
    this one (``None`` for spontaneous sends such as ``begin_join``),
    and ``trace_id`` is the ``msg_id`` of the causal root, shared by
    the whole tree.  They stay ``None`` when tracing is off.
    """

    __slots__ = ("sender", "msg_id", "parent_id", "trace_id")

    #: Short name used by :class:`repro.network.stats.MessageStats`.
    type_name = "Message"

    #: True for the paper's "big" messages (those carrying a table copy).
    carries_table = False

    def __init__(self, sender: NodeId):
        self.sender = sender
        self.msg_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.trace_id: Optional[int] = None

    def size_bytes(self) -> int:
        """Estimated wire size, for the Section 6.2 ablation."""
        return HEADER_BYTES

    def __repr__(self) -> str:
        return f"{self.type_name}(from={self.sender})"
