"""Base message type.

Concrete protocol messages live in :mod:`repro.protocol.messages`; the
transport only relies on the interface defined here.  ``size_bytes``
supports the Section 6.2 message-size accounting: messages that carry a
neighbor-table payload report a size proportional to the entries they
actually include.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ids.digits import NodeId

#: A causal-stamping identity.  The in-memory transport issues plain
#: ints (one counter per run); the datagram transport issues
#: ``"<node-id>#<counter>"`` strings, unique across an entire cluster
#: without coordination and lexicographically ordered per sender
#: (the counter is zero-padded).
CausalId = Union[int, str]

# Size accounting constants (bytes).  An entry is an ID plus an IP
# address plus a one-byte state; headers cover addressing and type tags.
HEADER_BYTES = 40
ENTRY_BYTES = 26
NODE_REF_BYTES = 24


class Message:
    """A protocol message in flight.

    ``sender`` is the node the message came from -- protocol handlers
    frequently need it ("Action of y on receiving ... from x").

    ``msg_id`` / ``parent_id`` / ``trace_id`` are the causal identity
    stamped by the transport when tracing is on (see
    :mod:`repro.obs.causality`): ``msg_id`` is unique per send,
    ``parent_id`` is the ``msg_id`` of the message whose handler sent
    this one (``None`` for spontaneous sends such as ``begin_join``),
    and ``trace_id`` is the ``msg_id`` of the causal root, shared by
    the whole tree.  They stay ``None`` when tracing is off.  The
    in-memory transport stamps ints; the datagram transport stamps
    :data:`CausalId` strings that stay unique across processes and
    survive the wire (see :mod:`repro.runtime.codec`).
    """

    __slots__ = ("sender", "msg_id", "parent_id", "trace_id")

    #: Short name used by :class:`repro.network.stats.MessageStats`.
    type_name = "Message"

    #: True for the paper's "big" messages (those carrying a table copy).
    carries_table = False

    def __init__(self, sender: NodeId):
        self.sender = sender
        self.msg_id: Optional[CausalId] = None
        self.parent_id: Optional[CausalId] = None
        self.trace_id: Optional[CausalId] = None

    def size_bytes(self) -> int:
        """Estimated wire size, for the Section 6.2 ablation."""
        return HEADER_BYTES

    def __repr__(self) -> str:
        return f"{self.type_name}(from={self.sender})"
