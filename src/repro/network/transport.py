"""Reliable message delivery over the simulator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.network.stats import MessageStats
from repro.obs.tracer import Tracer
from repro.sim.scheduler import Simulator
from repro.topology.attachment import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.node import NetworkNode


class UnknownDestinationError(RuntimeError):
    """A message was addressed to a node not registered with the
    transport.  Under the paper's assumptions (reliable delivery, no
    deletion) this indicates a protocol bug, so it fails loudly."""


class Transport:
    """Delivers messages between registered nodes with model latency.

    Delivery is reliable and per-message delays are independent, so
    messages may be reordered -- the protocol must tolerate that, and
    the correctness proofs do not assume FIFO channels.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        stats: Optional[MessageStats] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.simulator = simulator
        self.latency_model = latency_model
        self.stats = stats if stats is not None else MessageStats()
        # A disabled tracer (NullTracer) is normalized to None so the
        # hot send path stays the exact pre-instrumentation code.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._nodes: Dict[NodeId, "NetworkNode"] = {}
        # Pairwise latency memo, only for models whose (src, dst) delay
        # is a pure function of the pair (topology shortest paths,
        # constant delay).  Jittered models draw per message and must
        # not be memoized.
        self._latency_memo: Optional[Dict[tuple, float]] = (
            {} if getattr(latency_model, "deterministic_pairs", False)
            else None
        )

    @property
    def tracer(self) -> Optional[Tracer]:
        """The live tracer, or ``None`` when tracing is off."""
        return self._tracer

    def register(self, node: "NetworkNode") -> None:
        """Register ``node`` as reachable at its ID."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def unregister(self, node_id: NodeId) -> None:
        """Remove a departed node; later sends to it raise loudly,
        surfacing dangling-pointer bugs in membership protocols."""
        if node_id not in self._nodes:
            raise UnknownDestinationError(str(node_id))
        del self._nodes[node_id]

    def node(self, node_id: NodeId) -> "NetworkNode":
        """The registered node object for ``node_id`` (raises if unknown)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownDestinationError(str(node_id)) from None

    def knows(self, node_id: NodeId) -> bool:
        """True iff ``node_id`` is currently registered."""
        return node_id in self._nodes

    @property
    def node_ids(self):
        """Registered node IDs as a live, read-only view (no copy).

        Iterating or membership-testing is O(1)-per-step on the dict's
        keys; callers that need a materialized list or set should build
        one themselves.
        """
        return self._nodes.keys()

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst``; the sender is read off the
        message.  Delivery is scheduled at ``now + latency(src, dst)``."""
        target = self._nodes.get(dst)
        if target is None:
            raise UnknownDestinationError(str(dst))
        self.stats.on_send(message)
        src = message.sender
        memo = self._latency_memo
        if memo is None:
            delay = self.latency_model.latency(src, dst)
        else:
            delay = memo.get((src, dst))
            if delay is None:
                delay = self.latency_model.latency(src, dst)
                memo[(src, dst)] = delay
        if self._tracer is None:
            self.simulator.schedule(delay, target.receive, message)
        else:
            self._send_traced(dst, message, delay, target)

    def _send_traced(
        self,
        dst: NodeId,
        message: Message,
        delay: float,
        target: "NetworkNode",
    ) -> None:
        """Tracing path of :meth:`send`: emits a ``message.send`` event
        now and a ``message.deliver`` event at delivery time."""
        tracer = self._tracer
        assert tracer is not None
        name = message.type_name
        src, dst_s = str(message.sender), str(dst)
        tracer.event(
            "message.send",
            self.simulator.now,
            type=name,
            src=src,
            dst=dst_s,
            bytes=message.size_bytes(),
            latency=delay,
        )

        def deliver(msg: Message = message) -> None:
            tracer.event(
                "message.deliver",
                self.simulator.now,
                type=name,
                src=src,
                dst=dst_s,
            )
            target.receive(msg)

        self.simulator.schedule(delay, deliver)

    def send_lossy(self, dst: NodeId, message: Message) -> bool:
        """Like :meth:`send`, but silently drop messages to unknown
        (crashed) destinations.  Used by the failure-recovery protocol,
        whose probes must tolerate dead nodes.  Returns whether the
        message was actually dispatched."""
        if dst not in self._nodes:
            self.stats.on_drop(message)
            if self._tracer is not None:
                self._tracer.event(
                    "message.drop",
                    self.simulator.now,
                    type=message.type_name,
                    src=str(message.sender),
                    dst=str(dst),
                )
            return False
        self.send(dst, message)
        return True
