"""Reliable message delivery over a runtime.

The transport is runtime-agnostic: it asks its
:class:`~repro.runtime.interface.Runtime` for the clock and for
deferred delivery (``schedule``), never for anything
simulator-specific.  Under the virtual-time runtime this is exactly
the pre-refactor discrete-event delivery; under the asyncio runtime
the same code delivers over wall-clock timers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.network.stats import MessageStats
from repro.obs.tracer import Tracer
from repro.runtime.interface import Runtime
from repro.topology.attachment import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.node import NetworkNode


class UnknownDestinationError(RuntimeError):
    """A message was addressed to a node not registered with the
    transport.  Under the paper's assumptions (reliable delivery, no
    deletion) this indicates a protocol bug, so it fails loudly."""


class Transport:
    """Delivers messages between registered nodes with model latency.

    Delivery is reliable and per-message delays are independent, so
    messages may be reordered -- the protocol must tolerate that, and
    the correctness proofs do not assume FIFO channels.
    """

    def __init__(
        self,
        runtime: Runtime,
        latency_model: LatencyModel,
        stats: Optional[MessageStats] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.runtime = runtime
        # Deliveries are never cancelled, so prefer the runtime's
        # fire-and-forget path (no per-message Event handle); runtimes
        # without one (realtime/asyncio) fall back to plain schedule.
        self._schedule_fire = getattr(
            runtime, "schedule_fire", runtime.schedule
        )
        self.latency_model = latency_model
        self.stats = stats if stats is not None else MessageStats()
        # Bound once: stats is never swapped after construction, and
        # send() runs once per message in the whole simulation.
        self._on_send = self.stats.on_send
        # A disabled tracer (NullTracer) is normalized to None so the
        # hot send path stays the exact pre-instrumentation code.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        #: Fault-injection hook: when set, a message for which
        #: ``drop_filter(message, dst)`` is true is dropped instead of
        #: delivered, accounted through the same :meth:`MessageStats.on_drop`
        #: / ``message.drop`` trace path as a lossy send to a dead node.
        #: Used by tests and audits to inject message loss.
        self.drop_filter: Optional[Callable[[Message, NodeId], bool]] = None
        # Causal-stamping state (tracing only): the message currently
        # being delivered, and the next msg_id to hand out.
        self._cause: Optional[Message] = None
        self._next_msg_id = 1
        self._nodes: Dict[NodeId, "NetworkNode"] = {}
        # Bound method of the (never-rebound) registry dict: saves an
        # attribute hop on every send.
        self._nodes_get = self._nodes.get
        # Pairwise latency memo, only for models whose (src, dst) delay
        # is a pure function of the pair (topology shortest paths,
        # constant delay).  Jittered models draw per message and must
        # not be memoized.
        self._latency_memo: Optional[Dict[tuple, float]] = (
            {} if getattr(latency_model, "deterministic_pairs", False)
            else None
        )

    @property
    def tracer(self) -> Optional[Tracer]:
        """The live tracer, or ``None`` when tracing is off."""
        return self._tracer

    def register(self, node: "NetworkNode") -> None:
        """Register ``node`` as reachable at its ID."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def unregister(self, node_id: NodeId) -> None:
        """Remove a departed node; later sends to it raise loudly,
        surfacing dangling-pointer bugs in membership protocols."""
        if node_id not in self._nodes:
            raise UnknownDestinationError(str(node_id))
        del self._nodes[node_id]

    def node(self, node_id: NodeId) -> "NetworkNode":
        """The registered node object for ``node_id`` (raises if unknown)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownDestinationError(str(node_id)) from None

    def knows(self, node_id: NodeId) -> bool:
        """True iff ``node_id`` is currently registered."""
        return node_id in self._nodes

    @property
    def node_ids(self):
        """Registered node IDs as a live, read-only view (no copy).

        Iterating or membership-testing is O(1)-per-step on the dict's
        keys; callers that need a materialized list or set should build
        one themselves.
        """
        return self._nodes.keys()

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst``; the sender is read off the
        message.  Delivery is scheduled at ``now + latency(src, dst)``."""
        target = self._nodes_get(dst)
        if target is None:
            raise UnknownDestinationError(str(dst))
        if self.drop_filter is not None and self.drop_filter(message, dst):
            self._drop(dst, message)
            return
        self._on_send(message)
        src = message.sender
        memo = self._latency_memo
        if memo is None:
            delay = self.latency_model.latency(src, dst)
        else:
            # Packed-int pair key: one network shares one ID space, so
            # the packed forms are unique, and hashing two ints stays
            # in C (a (src, dst) NodeId tuple pays two __hash__ calls
            # per send).
            key = (src._packed, dst._packed)
            delay = memo.get(key)
            if delay is None:
                delay = self.latency_model.latency(src, dst)
                memo[key] = delay
        if self._tracer is None:
            self._schedule_fire(delay, target.receive, message)
        else:
            self._send_traced(dst, message, delay, target)

    def _stamp(self, message: Message) -> None:
        """Assign ``message`` its causal identity (tracing path only).

        The parent is whatever message is currently being delivered:
        a send from inside a handler is *caused by* the handled
        message, a send from outside any handler (``begin_join``, a
        recovery timer) roots a new causal tree.
        """
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        message.msg_id = msg_id
        cause = self._cause
        if cause is None:
            message.trace_id = msg_id
        else:
            message.parent_id = cause.msg_id
            message.trace_id = cause.trace_id

    def _send_traced(
        self,
        dst: NodeId,
        message: Message,
        delay: float,
        target: "NetworkNode",
    ) -> None:
        """Tracing path of :meth:`send`: stamps causal ids, emits a
        ``message.send`` event now and a ``message.deliver`` event at
        delivery time, and marks the message as the causal parent of
        everything sent while its handler runs."""
        tracer = self._tracer
        assert tracer is not None
        self._stamp(message)
        name = message.type_name
        src, dst_s = str(message.sender), str(dst)
        tracer.event(
            "message.send",
            self.runtime.now,
            type=name,
            src=src,
            dst=dst_s,
            bytes=message.size_bytes(),
            latency=delay,
            msg=message.msg_id,
            parent=message.parent_id,
            trace=message.trace_id,
        )

        def deliver(msg: Message = message) -> None:
            tracer.event(
                "message.deliver",
                self.runtime.now,
                type=name,
                src=src,
                dst=dst_s,
                msg=msg.msg_id,
            )
            self._cause = msg
            try:
                target.receive(msg)
            finally:
                self._cause = None

        self.runtime.schedule(delay, deliver)

    def _drop(self, dst: NodeId, message: Message) -> None:
        """Account a dropped message (stats counter plus, when tracing,
        a causally-stamped ``message.drop`` event)."""
        self.stats.on_drop(message)
        if self._tracer is not None:
            self._stamp(message)
            self._tracer.event(
                "message.drop",
                self.runtime.now,
                type=message.type_name,
                src=str(message.sender),
                dst=str(dst),
                msg=message.msg_id,
                parent=message.parent_id,
                trace=message.trace_id,
            )

    def send_lossy(self, dst: NodeId, message: Message) -> bool:
        """Like :meth:`send`, but silently drop messages to unknown
        (crashed) destinations.  Used by the failure-recovery protocol,
        whose probes must tolerate dead nodes.  Returns whether the
        message was actually dispatched."""
        if dst not in self._nodes:
            self._drop(dst, message)
            return False
        self.send(dst, message)
        return True
