"""Base class for network actors.

A :class:`NetworkNode` owns an ID, can send messages through the
transport, and dispatches received messages to handlers by message
type.  Subclasses register handlers with :meth:`handles`.

Nodes read time and set timers through the transport's
:class:`~repro.runtime.interface.Runtime` -- never through a simulator
directly, so the same node code runs under virtual time and wall-clock
runtimes alike.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.network.transport import Transport
from repro.runtime.interface import TimerHandle

Handler = Callable[[Message], None]


def _wrap_external(handler: Handler):
    """Adapt a plain ``handler(message)`` callable to the internal
    ``handler(self, message)`` dispatch convention."""

    def dispatch(_node: "NetworkNode", message: Message) -> None:
        handler(message)

    return dispatch


class NetworkNode:
    """An actor addressed by its :class:`NodeId`."""

    #: Handler tables shared per *concrete class*: every instance of a
    #: class registers the same ``self._on_x`` bound methods, so the
    #: table stores the underlying functions once instead of one dict
    #: of bound methods per node (~1 KiB each; a 10⁵-node simulation
    #: would spend >100 MiB on them).  An instance that registers a
    #: non-method handler gets a private copy-on-write table.
    _class_handlers: Dict[type, Dict[Type[Message], Callable]] = {}

    def __init__(self, node_id: NodeId, transport: Transport):
        self.node_id = node_id
        self.transport = transport
        #: The runtime Clock/Timers this node lives on (shared with the
        #: transport).  Read time via :attr:`now`, set timers via
        #: :meth:`start_timer`.
        self.runtime = transport.runtime
        cls = self.__class__
        handlers = NetworkNode._class_handlers.get(cls)
        if handlers is None:
            handlers = NetworkNode._class_handlers[cls] = {}
        self._handlers: Dict[Type[Message], Callable] = handlers
        self._own_handlers = False
        transport.register(self)

    def handles(self, message_type: Type[Message], handler: Handler) -> None:
        """Register ``handler`` for messages of ``message_type``.

        A bound method of this node lands in the class-shared table
        (identical for every instance, see ``_class_handlers``); any
        other callable forces this instance onto a private copy first.
        """
        func = getattr(handler, "__func__", None)
        if func is not None and getattr(handler, "__self__", None) is self:
            self._handlers[message_type] = func
            return
        if not self._own_handlers:
            self._handlers = dict(self._handlers)
            self._own_handlers = True
        self._handlers[message_type] = _wrap_external(handler)

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst`` through the transport."""
        self.transport.send(dst, message)

    def receive(self, message: Message) -> None:
        """Dispatch ``message`` to the handler registered for its type."""
        handler = self._handlers.get(type(message))
        if handler is None:
            raise NotImplementedError(
                f"{self.node_id} has no handler for {message.type_name}"
            )
        handler(self, message)

    @property
    def now(self) -> float:
        """Current time from the runtime clock (protocol units)."""
        return self.runtime.now

    def start_timer(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> TimerHandle:
        """Arm a timer: run ``action`` ``delay`` time units from now.

        Returns a :class:`~repro.runtime.interface.TimerHandle` whose
        ``cancel()`` prevents the firing (cancel-before-fire is a
        no-op on the protocol state; cancel-after-fire is a no-op on
        the timer).
        """
        return self.runtime.schedule(delay, action, payload)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.node_id})"
