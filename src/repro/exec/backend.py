"""The execution-backend contract of the sweep engine.

Every evaluation artifact in this repository is a ``seed x config``
simulation campaign: a list of self-seeding, picklable task configs
mapped through a pure task function.  This module defines the contract
that lets any campaign run on any substrate:

* :class:`ExecutionBackend` -- submit tasks, **stream completions**
  (arbitrary order, tagged with the task index), and let the shared
  :meth:`ExecutionBackend.map` reassemble them **deterministically in
  task order**.  Because tasks are self-seeding and the merge is
  order-stable, ``backend.map(fn, tasks)`` equals ``[fn(t) for t in
  tasks]`` for *every* backend -- the cross-backend equality property
  :func:`repro.experiments.parallel.verified_parallel_map` asserts.
* :class:`InlineBackend` -- the serial in-process path (what
  ``jobs <= 1`` always meant): no executor, no pickling, byte-for-byte
  the plain loop.
* :func:`create_backend` / :func:`resolve_backend` -- the factories
  the CLI (``--backend inline|pool|remote``) and the benches build
  engines through.

The other implementations live next door:
:class:`~repro.exec.pool.ProcessPoolBackend` (single host, one worker
per core) and :class:`~repro.exec.remote.RemoteBackend` (a cluster of
``repro worker`` daemons over UDP).
"""

from __future__ import annotations

import os
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback: called as ``progress(done, total)`` from the
#: coordinating process after every completed task.
ProgressFn = Callable[[int, int], None]


class ExecutionError(RuntimeError):
    """A backend could not produce a complete, merged result set."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None or 0 means one worker per
    available CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk so each worker sees a handful of submissions (4 per worker
    when tasks allow), balancing dispatch overhead against stragglers."""
    if num_tasks <= 0:
        return 1
    return max(1, num_tasks // (jobs * 4))


class ExecutionBackend:
    """Contract every execution substrate implements.

    Subclasses implement :meth:`completions` -- a generator yielding
    ``(task_index, result)`` pairs in *whatever order tasks finish* --
    and inherit :meth:`map`, which merges the stream back into task
    order and enforces the exactly-once invariant.  Keeping the merge
    in one place is what makes the determinism guarantee a property of
    the *engine* rather than of each backend.
    """

    #: Short name (the ``--backend`` spelling).
    name = "abstract"

    def completions(
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Yield ``(index, fn(tasks[index]))`` for every task, in any
        completion order.  Each index must be yielded exactly once."""
        raise NotImplementedError

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        progress: Optional[ProgressFn] = None,
    ) -> List[R]:
        """``[fn(t) for t in tasks]`` computed on this backend.

        Streams :meth:`completions` and merges strictly by task index,
        so the output is independent of scheduling, chunking, worker
        count and completion order.  ``progress`` is invoked in the
        coordinating process after each completed task.
        """
        total = len(tasks)
        if total == 0:
            return []
        slots: List[object] = [_PENDING] * total
        done = 0
        for index, result in self.completions(fn, tasks):
            if not 0 <= index < total or slots[index] is not _PENDING:
                raise ExecutionError(
                    f"{self.name} backend completed task {index} twice "
                    f"(or out of range 0..{total - 1})"
                )
            slots[index] = result
            done += 1
            if progress is not None:
                progress(done, total)
        if done != total:
            missing = [i for i, slot in enumerate(slots) if slot is _PENDING]
            raise ExecutionError(
                f"{self.name} backend finished {done}/{total} tasks "
                f"(missing {missing})"
            )
        return slots  # type: ignore[return-value]

    def close(self) -> None:
        """Release any resources (sockets, executors).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Pending:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return "<pending>"


_PENDING = _Pending()


class InlineBackend(ExecutionBackend):
    """The serial in-process path: a plain loop, no executor, no
    pickling.  The reference every other backend must match."""

    name = "inline"

    def completions(
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Run tasks one by one, in order, in this process."""
        for index, task in enumerate(tasks):
            yield index, fn(task)


#: ``--backend`` spellings accepted by :func:`create_backend`.
BACKEND_NAMES = ("inline", "pool", "remote")


def create_backend(
    spec: str,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    workers: Optional[Sequence] = None,
    rendezvous=None,
    max_attempts: int = 3,
) -> ExecutionBackend:
    """Build a backend from its ``--backend`` spelling.

    ``jobs``/``chunksize`` configure the pool backend; ``workers`` (a
    list of ``(host, port)`` or ``"host:port"``) and/or ``rendezvous``
    configure the remote one.  ``max_attempts`` bounds per-task retries
    after a worker crash (pool and remote).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == "inline":
        return InlineBackend()
    if spec == "pool":
        from repro.exec.pool import ProcessPoolBackend

        return ProcessPoolBackend(
            jobs=jobs, chunksize=chunksize, max_attempts=max_attempts
        )
    if spec == "remote":
        from repro.exec.remote import RemoteBackend

        return RemoteBackend(
            workers=workers, rendezvous=rendezvous, max_attempts=max_attempts
        )
    raise ValueError(
        f"unknown backend {spec!r} (expected one of {BACKEND_NAMES})"
    )


def resolve_backend(
    backend: Optional[ExecutionBackend],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> Tuple[ExecutionBackend, bool]:
    """The backend a campaign should run on, plus whether the caller
    now owns (and must close) it.

    An explicit ``backend`` wins and stays caller-owned.  Otherwise the
    historical ``jobs`` contract applies: ``jobs <= 1`` is the serial
    inline path, anything else the process pool.
    """
    if backend is not None:
        return backend, False
    if jobs is not None and jobs == 1:
        return InlineBackend(), True
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return InlineBackend(), True
    from repro.exec.pool import ProcessPoolBackend

    return (
        ProcessPoolBackend(jobs=resolved, chunksize=chunksize),
        True,
    )


__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ExecutionError",
    "InlineBackend",
    "ProgressFn",
    "create_backend",
    "default_chunksize",
    "resolve_backend",
    "resolve_jobs",
]
