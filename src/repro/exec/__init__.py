"""Backend-pluggable execution engine for simulation campaigns.

The paper's evaluation -- and every bench derived from it -- is a
``seed x config`` campaign: self-seeding, picklable task configs
mapped through a pure task function, merged deterministically in task
order.  This package makes *where* those tasks run a plug:

* :mod:`repro.exec.backend` -- the :class:`ExecutionBackend` contract,
  the serial :class:`InlineBackend`, and the factories.
* :mod:`repro.exec.pool` -- :class:`ProcessPoolBackend`: one worker
  per core on this host, chunked dispatch, initializer-pinned task
  function, crash-requeue with bounded per-task retries.
* :mod:`repro.exec.remote` -- :class:`RemoteBackend`: a fleet of
  ``repro worker`` daemons over UDP, discovered explicitly or via the
  rendezvous directory, surviving worker death by requeueing.
* :mod:`repro.exec.worker` -- the ``repro worker`` daemon itself.
* :mod:`repro.exec.taskcodec` / :mod:`repro.exec.registry` -- how
  configs, results and task functions cross the wire.

The engine's invariant, asserted by
:func:`repro.experiments.parallel.verified_parallel_map` and the
cross-backend property tests: for any backend ``b``,
``b.map(fn, tasks) == [fn(t) for t in tasks]``.

Names are resolved lazily (PEP 562) so importing the engine's contract
never drags in sockets or the experiment modules.
"""

from typing import TYPE_CHECKING

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionError,
    InlineBackend,
    ProgressFn,
    create_backend,
    default_chunksize,
    resolve_backend,
    resolve_jobs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.pool import ProcessPoolBackend, WorkerCrashError
    from repro.exec.registry import remote_task, resolve_task, task_name
    from repro.exec.remote import (
        RemoteBackend,
        RemoteBackendError,
        RemoteTaskError,
        discover_workers,
    )
    from repro.exec.taskcodec import (
        TaskCodecError,
        decode_task_value,
        encode_task_value,
    )
    from repro.exec.worker import WorkerDaemon, run_worker_daemon

_LAZY = {
    "ProcessPoolBackend": "repro.exec.pool",
    "WorkerCrashError": "repro.exec.pool",
    "remote_task": "repro.exec.registry",
    "resolve_task": "repro.exec.registry",
    "task_name": "repro.exec.registry",
    "TaskNotRegisteredError": "repro.exec.registry",
    "RemoteBackend": "repro.exec.remote",
    "RemoteBackendError": "repro.exec.remote",
    "RemoteTaskError": "repro.exec.remote",
    "discover_workers": "repro.exec.remote",
    "TaskCodecError": "repro.exec.taskcodec",
    "decode_task_value": "repro.exec.taskcodec",
    "encode_task_value": "repro.exec.taskcodec",
    "WorkerDaemon": "repro.exec.worker",
    "run_worker_daemon": "repro.exec.worker",
}

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ExecutionError",
    "InlineBackend",
    "ProcessPoolBackend",
    "ProgressFn",
    "RemoteBackend",
    "RemoteBackendError",
    "RemoteTaskError",
    "TaskCodecError",
    "TaskNotRegisteredError",
    "WorkerCrashError",
    "WorkerDaemon",
    "create_backend",
    "decode_task_value",
    "default_chunksize",
    "discover_workers",
    "encode_task_value",
    "remote_task",
    "resolve_backend",
    "resolve_jobs",
    "resolve_task",
    "run_worker_daemon",
    "task_name",
]


def __getattr__(name: str):
    """PEP 562 lazy resolution of the heavier submodules."""
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.exec' has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    """Advertise lazy names alongside the eager ones."""
    return sorted(set(globals()) | set(_LAZY))
