"""Wire codec for sweep tasks and results.

The :class:`~repro.exec.remote.RemoteBackend` ships task configs to
``repro worker`` daemons and results back over UDP, so every campaign
config/result type must round-trip through JSON.  This module extends
the tagged value encoding of :mod:`repro.runtime.codec` -- which
covers the *protocol* value types (NodeIds, enums, tuples, frozensets)
-- with the container and record shapes experiment campaigns use:

* lists (``{"$li": [...]}``) and string-or-value-keyed dicts
  (``{"$map": [[k, v], ...]}``, order-preserving);
* registered dataclasses (``{"$dc": [name, {field: value, ...}]}``) --
  the campaign configs (:class:`~repro.experiments.fig15b.Fig15bConfig`,
  :class:`~repro.experiments.parallel.JoinTaskConfig`,
  :class:`~repro.experiments.churn.ChurnConfig`, ...) and their result
  records;
* registered enums beyond the protocol's own
  (:class:`~repro.protocol.sizing.SizingPolicy`).

Decoding rebuilds dataclasses through their ``__init__``, so a decoded
config equals (``==``) the original and a task run from its decoded
clone produces the identical result -- the property the cross-backend
equality tests pin.

The registries are explicit allowlists (name -> defining module),
resolved lazily so importing the engine never drags in the experiment
modules.  Unregistered types raise :class:`TaskCodecError` with the
type name, which is the extension point's error message.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any, Dict

from repro.runtime.codec import (
    CodecError,
    decode_value as _protocol_decode,
    encode_value as _protocol_encode,
)


class TaskCodecError(CodecError):
    """A task or result value the sweep codec cannot (de)serialize."""


#: Dataclasses allowed on the sweep wire: name -> defining module.
TASK_DATACLASSES: Dict[str, str] = {
    "Fig15aConfig": "repro.experiments.fig15a",
    "Fig15bConfig": "repro.experiments.fig15b",
    "Fig15bResult": "repro.experiments.fig15b",
    "JoinTaskConfig": "repro.experiments.parallel",
    "JoinTaskResult": "repro.experiments.parallel",
    "ChurnConfig": "repro.experiments.churn",
    "ChurnResult": "repro.experiments.churn",
    "PhaseOutcome": "repro.experiments.churn",
    "RecoveryReport": "repro.recovery.driver",
    "TransitStubParams": "repro.topology.transit_stub",
}

#: Enums allowed on the sweep wire beyond the protocol codec's own.
TASK_ENUMS: Dict[str, str] = {
    "SizingPolicy": "repro.protocol.sizing",
}


def _resolve(registry: Dict[str, str], name: str) -> type:
    module = importlib.import_module(registry[name])
    return getattr(module, name)


def encode_task_value(value: Any) -> Any:
    """Encode one task/result value into its JSON-ready tagged form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name in TASK_ENUMS:
            return {"$en": [name, value.value]}
        return _protocol_encode(value)  # protocol enums keep their form
    if isinstance(value, list):
        return {"$li": [encode_task_value(v) for v in value]}
    if isinstance(value, tuple):
        return {"$tu": [encode_task_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "$map": [
                [encode_task_value(k), encode_task_value(v)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, frozenset):
        encoded = [encode_task_value(v) for v in value]
        encoded.sort(key=repr)  # deterministic wire form
        return {"$fs": encoded}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in TASK_DATACLASSES:
            raise TaskCodecError(
                f"dataclass {name} is not registered in "
                f"repro.exec.taskcodec.TASK_DATACLASSES"
            )
        return {
            "$dc": [
                name,
                {
                    field.name: encode_task_value(getattr(value, field.name))
                    for field in dataclasses.fields(value)
                },
            ]
        }
    try:
        return _protocol_encode(value)  # NodeId and friends
    except CodecError:
        raise TaskCodecError(
            f"cannot encode task value of type {type(value).__name__}: "
            f"{value!r}"
        ) from None


def decode_task_value(value: Any) -> Any:
    """Decode one JSON value back into its task/result object (the
    inverse of :func:`encode_task_value`)."""
    if not isinstance(value, dict):
        return value
    if "$li" in value:
        return [decode_task_value(v) for v in value["$li"]]
    if "$tu" in value:
        return tuple(decode_task_value(v) for v in value["$tu"])
    if "$map" in value:
        return {
            decode_task_value(k): decode_task_value(v)
            for k, v in value["$map"]
        }
    if "$fs" in value:
        return frozenset(decode_task_value(v) for v in value["$fs"])
    if "$dc" in value:
        name, fields = value["$dc"]
        try:
            cls = _resolve(TASK_DATACLASSES, name)
        except (KeyError, AttributeError, ImportError):
            raise TaskCodecError(
                f"unknown dataclass on the sweep wire: {name}"
            ) from None
        return cls(
            **{key: decode_task_value(v) for key, v in fields.items()}
        )
    if "$en" in value:
        name, member = value["$en"]
        if name in TASK_ENUMS:
            return _resolve(TASK_ENUMS, name)(member)
        return _protocol_decode(value)
    return _protocol_decode(value)


__all__ = [
    "TASK_DATACLASSES",
    "TASK_ENUMS",
    "TaskCodecError",
    "decode_task_value",
    "encode_task_value",
]
