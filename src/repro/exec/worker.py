"""``repro worker``: one sweep executor daemon per OS process.

The distributed counterpart of a process-pool worker: a small UDP
server that accepts one task at a time from a
:class:`~repro.exec.remote.RemoteBackend`, runs it on a dedicated
thread, and serves the result back -- all over the ``c``/``r`` control
frames of :mod:`repro.net.wire`, the same out-of-band protocol the
node daemons and the rendezvous service speak.

=========  ==========================================  ================
op         body                                        response
=========  ==========================================  ================
hello      --                                          ``kind=worker``
submit     ``tid``, ``fn`` (task name), ``task``       ``accepted`` |
                                                       ``busy``
poll       ``tid``                                     ``state`` =
                                                       running/done/
                                                       error/unknown
status     --                                          roster row
ping       --                                          ``ok``
stop       --                                          ``ok`` (exits)
=========  ==========================================  ================

Determinism and loss tolerance come from idempotence, not ordering:
``submit`` dedupes by task id (a retried datagram is re-acknowledged,
never re-run), finished results are kept in a bounded cache so a lost
``poll`` response costs one retry, and tasks are self-seeding so a
coordinator that re-queues an in-flight task to another worker gets
the byte-identical result.

With ``--rendezvous`` the worker announces itself (``kind="worker"``,
never an S-node) to the PR-6 bootstrap directory, which is how
backends discover rosters and how ``repro top`` lists workers
alongside cluster daemons.  On startup the daemon prints::

    REPRO-NET READY kind=worker id=<id> host=<host> port=<port>
"""

from __future__ import annotations

import collections
import queue
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.exec.registry import resolve_task
from repro.exec.taskcodec import decode_task_value, encode_task_value
from repro.ids.idspace import IdSpace
from repro.net.wire import (
    Address,
    CTL,
    ctl_frame,
    decode_frame,
    encode_frame,
    node_id_to_wire,
    rsp_frame,
)
from repro.runtime.codec import CodecError

#: Finished results kept for re-polls (bounded; oldest evicted).
MAX_CACHED_RESULTS = 128

#: Seconds between rendezvous re-announcements.
DEFAULT_ANNOUNCE_INTERVAL = 15.0

#: Socket poll granularity of the serve loop (seconds).
_POLL_TIMEOUT = 0.2


class WorkerDaemon:
    """One sweep worker: a UDP control server plus a task thread.

    ``serve()`` blocks until a ``stop`` op arrives (or :meth:`stop` is
    called from another thread, which is how in-process tests drive
    it).  ``handle()`` is the socket-free op dispatcher, directly
    unit-testable like the rendezvous server's.
    """

    def __init__(
        self,
        listen: Address,
        rendezvous: Optional[Address] = None,
        announce_interval: float = DEFAULT_ANNOUNCE_INTERVAL,
    ):
        self.listen = listen
        self.rendezvous = rendezvous
        self.announce_interval = announce_interval
        self.worker_id = None
        self.tasks_done = 0
        self.tasks_failed = 0
        self._sock: Optional[socket.socket] = None
        self._queue: "queue.Queue[Optional[Tuple[str, str, Any]]]" = (
            queue.Queue()
        )
        self._results: "collections.OrderedDict[str, Dict[str, Any]]" = (
            collections.OrderedDict()
        )
        self._current: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._runner: Optional[threading.Thread] = None
        self._started_at = time.monotonic()
        self._next_rid = 1

    # -- lifecycle ------------------------------------------------------

    def open(self) -> Address:
        """Bind the socket, derive the worker id, start the task
        thread; returns the bound address."""
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(self.listen)
        host, port = self._sock.getsockname()[:2]
        self.listen = (host, port)
        # A worker is not a protocol node, but the rendezvous directory
        # keys registrations by NodeId -- hash the address into the
        # default id space so every worker has a distinct, stable row.
        self.worker_id = IdSpace(16, 8).hash_name(f"worker:{host}:{port}")
        self._started_at = time.monotonic()
        self._runner = threading.Thread(
            target=self._run_tasks, name="repro-worker-tasks", daemon=True
        )
        self._runner.start()
        return self.listen

    def ready_line(self) -> str:
        """The machine-readable startup line supervisors wait for."""
        host, port = self.listen
        return (
            f"REPRO-NET READY kind=worker id={self.worker_id} "
            f"host={host} port={port}"
        )

    def serve(self) -> None:
        """Answer control requests (and heartbeat the rendezvous)
        until stopped."""
        assert self._sock is not None, "serve() before open()"
        self._sock.settimeout(_POLL_TIMEOUT)
        self._announce()
        last_announce = time.monotonic()
        while not self._stop.is_set():
            try:
                data, addr = self._sock.recvfrom(65535)
            except socket.timeout:
                pass
            except OSError:
                break  # socket closed under us (close() from a test)
            else:
                self._on_datagram(data, (addr[0], addr[1]))
            now = time.monotonic()
            if now - last_announce >= self.announce_interval:
                self._announce()
                last_announce = now

    def stop(self) -> None:
        """Ask the serve loop to exit (threadsafe)."""
        self._stop.set()

    def close(self) -> None:
        """Stop serving, retire the task thread, release the socket."""
        self._stop.set()
        self._queue.put(None)
        if self._runner is not None:
            self._runner.join(timeout=2.0)
            self._runner = None
        if self._sock is not None:
            self._send_control("remove")
            self._sock.close()
            self._sock = None

    # -- datagram glue --------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            frame = decode_frame(data)
            if frame.get("k") != CTL:
                return  # e.g. rendezvous announce responses
            response = self.handle(frame["op"], frame.get("b") or {}, addr)
        except (CodecError, KeyError, TypeError, ValueError):
            return  # garbage or half-spoken protocol: ignore
        if response is not None and self._sock is not None:
            self._sock.sendto(
                encode_frame(rsp_frame(frame["r"], response)), addr
            )

    # -- control ops ----------------------------------------------------

    def handle(
        self, op: str, body: Dict[str, Any], addr: Address
    ) -> Optional[Dict[str, Any]]:
        """Process one control op; returns the response body."""
        if op == "hello":
            return {
                "ok": True,
                "kind": "worker",
                "id": node_id_to_wire(self.worker_id),
                "busy": self._current is not None,
            }
        if op == "submit":
            return self._handle_submit(body)
        if op == "poll":
            return self._handle_poll(body)
        if op == "status":
            return self._status_body()
        if op == "ping":
            return {"ok": True}
        if op == "stop":
            self._stop.set()
            return {"ok": True}
        return {"error": f"unknown op: {op}"}

    def _handle_submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        tid = str(body["tid"])
        with self._lock:
            if tid == self._current or tid in self._results:
                return {"accepted": True}  # duplicate datagram: re-ack
            if self._current is not None:
                return {"busy": True}
            self._current = tid
        self._queue.put((tid, str(body["fn"]), body.get("task")))
        return {"accepted": True}

    def _handle_poll(self, body: Dict[str, Any]) -> Dict[str, Any]:
        tid = str(body["tid"])
        with self._lock:
            entry = self._results.get(tid)
            if entry is not None:
                return dict(entry)
            if tid == self._current:
                return {"state": "running"}
        return {"state": "unknown"}

    def _status_body(self) -> Dict[str, Any]:
        busy = self._current is not None
        return {
            "kind": "worker",
            "id": node_id_to_wire(self.worker_id),
            "status": "wrk-busy" if busy else "wrk-idle",
            "s": False,
            "now": round(time.monotonic() - self._started_at, 3),
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "telemetry": False,
        }

    # -- task execution -------------------------------------------------

    def _run_tasks(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            tid, fn_name, task_obj = item
            try:
                fn = resolve_task(fn_name)
                task = decode_task_value(task_obj)
                entry = {
                    "state": "done",
                    "result": encode_task_value(fn(task)),
                }
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                entry = {
                    "state": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            with self._lock:
                self._results[tid] = entry
                while len(self._results) > MAX_CACHED_RESULTS:
                    self._results.popitem(last=False)
                if entry["state"] == "done":
                    self.tasks_done += 1
                else:
                    self.tasks_failed += 1
                self._current = None

    # -- rendezvous -----------------------------------------------------

    def _announce(self) -> None:
        self._send_control(
            "announce",
            {
                "id": node_id_to_wire(self.worker_id),
                "s": False,
                "kind": "worker",
            },
        )

    def _send_control(
        self, op: str, body: Optional[Dict[str, Any]] = None
    ) -> None:
        """Fire-and-forget a control request to the rendezvous (the
        response lands on our socket and is ignored)."""
        if self.rendezvous is None or self._sock is None:
            return
        rid = self._next_rid
        self._next_rid = rid + 1
        if body is None:
            body = {"id": node_id_to_wire(self.worker_id)}
        try:
            self._sock.sendto(
                encode_frame(ctl_frame(rid, op, body)), self.rendezvous
            )
        except OSError:  # pragma: no cover - rendezvous unreachable
            pass


def run_worker_daemon(
    listen: Address,
    rendezvous: Optional[Address] = None,
    announce_interval: float = DEFAULT_ANNOUNCE_INTERVAL,
) -> int:
    """Entry point for ``repro worker``: open, print the READY line,
    serve until stopped."""
    daemon = WorkerDaemon(
        listen, rendezvous=rendezvous, announce_interval=announce_interval
    )
    daemon.open()
    print(daemon.ready_line(), flush=True)
    try:
        daemon.serve()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        daemon.close()
    return 0


__all__ = [
    "DEFAULT_ANNOUNCE_INTERVAL",
    "MAX_CACHED_RESULTS",
    "WorkerDaemon",
    "run_worker_daemon",
]
