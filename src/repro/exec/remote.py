"""Multi-host backend: sweeps over ``repro worker`` daemons.

:class:`RemoteBackend` is the distributed implementation of the
:class:`~repro.exec.backend.ExecutionBackend` contract.  The
coordinator keeps the whole campaign state -- a FIFO of unassigned
task indices, one in-flight task per worker, per-task attempt counts
-- and drives it with three idempotent control ops against each worker
(:mod:`repro.exec.worker`): ``submit`` a named task config (serialized
by :mod:`repro.exec.taskcodec` over the PR-4 tagged-JSON codec),
``poll`` until ``done``, collect the decoded result.

Workers come from an explicit roster (``--workers host:port,...``),
from the PR-6 rendezvous directory (registrations with
``kind="worker"``), or both.  **Worker death is survived, not
avoided**: a worker that stops answering polls is dropped from the
roster and its in-flight task is requeued at the *front* of the FIFO
(bounded by ``max_attempts``), so a kill -9 mid-sweep changes which
socket computed a task but never the merged result -- tasks are
self-seeding and the shared merge is by task index.

Task *errors* are different from worker *deaths*: a task that raises
on a live worker raises :class:`RemoteTaskError` at the coordinator
immediately (retrying a deterministic failure is pointless), exactly
as an exception aborts the pool backend.
"""

from __future__ import annotations

import collections
import os
import time
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.exec.backend import ExecutionBackend, ExecutionError
from repro.exec.registry import task_name
from repro.exec.taskcodec import decode_task_value, encode_task_value
from repro.net.control import ControlClient
from repro.net.wire import Address, parse_hostport

T = TypeVar("T")
R = TypeVar("R")

#: Seconds between poll sweeps over the busy workers.
DEFAULT_POLL_INTERVAL = 0.15

#: Default bound on per-task attempts across worker deaths.
DEFAULT_MAX_ATTEMPTS = 3


class RemoteBackendError(ExecutionError):
    """The worker fleet cannot finish the campaign (no live workers
    left, or a task exhausted its attempts across worker deaths)."""


class RemoteTaskError(ExecutionError):
    """A task raised on a live worker (deterministic failure; not
    retried)."""


def _as_address(worker: Union[str, Address]) -> Address:
    if isinstance(worker, str):
        return parse_hostport(worker)
    return (worker[0], worker[1])


def discover_workers(
    client: ControlClient, rendezvous: Address
) -> List[Address]:
    """Live ``kind="worker"`` registrations in the rendezvous
    directory, sorted by id for a deterministic dispatch order."""
    body = client.try_request(rendezvous, "directory")
    rows: List[Tuple[str, Address]] = []
    for entry in (body or {}).get("nodes") or []:
        kind = entry[3] if len(entry) > 3 else "node"
        if kind != "worker":
            continue
        addr = entry[1]
        rows.append((str(entry[0]), (addr[0], addr[1])))
    rows.sort(key=lambda row: row[0])
    return [addr for _, addr in rows]


class RemoteBackend(ExecutionBackend):
    """Fan a campaign over ``repro worker`` daemons on real sockets."""

    name = "remote"

    def __init__(
        self,
        workers: Optional[Sequence[Union[str, Address]]] = None,
        rendezvous: Optional[Union[str, Address]] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        request_timeout: float = 1.0,
        request_retries: int = 2,
    ):
        self.workers = [_as_address(w) for w in (workers or [])]
        self.rendezvous = (
            _as_address(rendezvous) if rendezvous is not None else None
        )
        if not self.workers and self.rendezvous is None:
            raise ValueError(
                "RemoteBackend needs an explicit worker list and/or a "
                "rendezvous address to discover one"
            )
        self.max_attempts = max(1, max_attempts)
        self.poll_interval = poll_interval
        self.request_timeout = request_timeout
        self.request_retries = request_retries
        self._client: Optional[ControlClient] = None

    # -- plumbing -------------------------------------------------------

    def _control(self) -> ControlClient:
        if self._client is None:
            self._client = ControlClient(
                timeout=self.request_timeout, retries=self.request_retries
            )
        return self._client

    def close(self) -> None:
        """Release the control socket."""
        if self._client is not None:
            self._client.close()
            self._client = None

    def roster(self) -> List[Address]:
        """The current worker roster: the explicit list plus any
        rendezvous-discovered workers (deduplicated, stable order)."""
        seen = list(self.workers)
        if self.rendezvous is not None:
            for addr in discover_workers(self._control(), self.rendezvous):
                if addr not in seen:
                    seen.append(addr)
        return seen

    # -- the scheduling loop --------------------------------------------

    def completions(
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Dispatch every task to some live worker, yielding results
        as polls come back; requeue in-flight tasks of dead workers."""
        total = len(tasks)
        if total == 0:
            return
        name = task_name(fn)
        client = self._control()
        # Task ids are namespaced by a per-campaign nonce so a worker
        # still caching results from an earlier (aborted) run never
        # answers for this one.
        nonce = os.urandom(4).hex()
        pending: "collections.deque[int]" = collections.deque(range(total))
        assigned: Dict[Address, int] = {}
        attempts = [0] * total
        dead: List[Address] = []
        roster = self._live_roster(dead)
        while pending or assigned:
            # Fill every idle worker (one in-flight task each: campaign
            # tasks are long relative to a datagram round trip, so
            # deeper per-worker queues would only slow requeueing).
            for worker in list(roster):
                if not pending:
                    break
                if worker in assigned:
                    continue
                index = pending.popleft()
                reply = client.try_request(
                    worker,
                    "submit",
                    {
                        "tid": f"{nonce}-{index}",
                        "fn": name,
                        "task": encode_task_value(tasks[index]),
                    },
                )
                if reply is None:
                    self._bury(worker, roster, dead)
                    pending.appendleft(index)
                elif reply.get("accepted"):
                    assigned[worker] = index
                elif reply.get("busy"):
                    # Finishing someone else's task (or a stale one):
                    # leave it in the roster, try again next sweep.
                    pending.appendleft(index)
                elif reply.get("error"):
                    raise RemoteBackendError(
                        f"worker {worker[0]}:{worker[1]} rejected task "
                        f"{index}: {reply['error']}"
                    )
                else:
                    pending.appendleft(index)
            if not assigned:
                # Nothing in flight: either the fleet is empty or every
                # submit bounced.  Re-discover before giving up.
                roster = self._live_roster(dead)
                if not roster and (pending or assigned):
                    raise RemoteBackendError(
                        f"no live workers left with {len(pending)} "
                        f"task(s) unfinished (dead: "
                        f"{[f'{h}:{p}' for h, p in dead]})"
                    )
                time.sleep(self.poll_interval)
                continue
            time.sleep(self.poll_interval)
            for worker, index in list(assigned.items()):
                reply = client.try_request(
                    worker, "poll", {"tid": f"{nonce}-{index}"}
                )
                if reply is None:
                    # Worker death: requeue at the front so recovery
                    # happens before new work is taken on.
                    del assigned[worker]
                    self._bury(worker, roster, dead)
                    self._requeue(index, attempts, pending, worker)
                    continue
                state = reply.get("state")
                if state == "done":
                    del assigned[worker]
                    yield index, decode_task_value(reply.get("result"))
                elif state == "error":
                    raise RemoteTaskError(
                        f"task {index} failed on worker "
                        f"{worker[0]}:{worker[1]}: {reply.get('error')}"
                    )
                elif state == "unknown":
                    # The worker restarted (fresh cache) or never saw
                    # the submit: treat like a death of the assignment.
                    del assigned[worker]
                    self._requeue(index, attempts, pending, worker)
                # else "running": keep waiting.

    # -- helpers --------------------------------------------------------

    def _live_roster(self, dead: List[Address]) -> List[Address]:
        return [w for w in self.roster() if w not in dead]

    @staticmethod
    def _bury(
        worker: Address, roster: List[Address], dead: List[Address]
    ) -> None:
        if worker in roster:
            roster.remove(worker)
        if worker not in dead:
            dead.append(worker)

    def _requeue(
        self,
        index: int,
        attempts: List[int],
        pending: "collections.deque[int]",
        worker: Address,
    ) -> None:
        attempts[index] += 1
        if attempts[index] >= self.max_attempts:
            raise RemoteBackendError(
                f"task {index} lost {attempts[index]} worker(s) "
                f"(last: {worker[0]}:{worker[1]}; max_attempts="
                f"{self.max_attempts})"
            )
        pending.appendleft(index)


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_POLL_INTERVAL",
    "RemoteBackend",
    "RemoteBackendError",
    "RemoteTaskError",
    "discover_workers",
]
