"""Named task functions for the distributed sweep tier.

A :class:`~repro.exec.remote.RemoteBackend` cannot pickle a function
to a ``repro worker`` daemon the way a process pool can; it sends a
*name* and the worker resolves it locally.  Two name forms exist:

* **Registered names** ("fig15b", "join", "churn", ...): experiment
  modules decorate their task functions with :func:`remote_task`, and
  :func:`resolve_task` imports :data:`TASK_MODULES` (idempotently) so
  a bare worker knows every curated campaign.
* **Dotted specs** (``"package.module:function"``): any importable
  top-level function, the same trust model as the process pool's
  pickle-by-reference.  Workers execute whatever the coordinator
  names, so -- exactly like a process pool or an SSH loop -- the sweep
  cluster must only span machines you already control.

:func:`task_name` is the coordinator-side inverse: registered
functions map to their curated name, any other module-level function
to its dotted spec, and unresolvable callables (lambdas, closures,
instance methods) raise :class:`TaskNotRegisteredError` -- the same
functions pickle would reject for the pool backend.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

#: Modules whose :func:`remote_task` registrations define the curated
#: campaign names (imported by :func:`resolve_task` on first lookup).
TASK_MODULES = (
    "repro.experiments.parallel",
    "repro.experiments.fig15a",
    "repro.experiments.fig15b",
    "repro.experiments.churn",
)

_TASKS: Dict[str, Callable] = {}


class TaskNotRegisteredError(LookupError):
    """A task function/name the registry cannot map for the wire."""


def remote_task(name: str) -> Callable[[Callable], Callable]:
    """Decorator factory: register ``fn`` under the curated ``name``
    so remote workers can resolve it without a dotted spec."""

    def register(fn: Callable) -> Callable:
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"task name {name!r} already registered")
        _TASKS[name] = fn
        fn.__task_name__ = name
        return fn

    return register


def _load_task_modules() -> None:
    for module in TASK_MODULES:
        importlib.import_module(module)


def task_name(fn: Callable) -> str:
    """The wire name for ``fn``: its curated registration if it has
    one, else its ``module:qualname`` dotted spec."""
    name = getattr(fn, "__task_name__", None)
    if name is not None:
        return name
    qualname = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", None)
    if module and qualname and "." not in qualname:
        return f"{module}:{qualname}"
    raise TaskNotRegisteredError(
        f"cannot name task function {fn!r} for the wire: register it "
        f"with @remote_task or use a module-level function"
    )


def resolve_task(name: str) -> Callable:
    """The task function behind a wire name (worker side)."""
    _load_task_modules()
    if name in _TASKS:
        return _TASKS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            fn = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise TaskNotRegisteredError(
                f"cannot resolve task spec {name!r}: {exc}"
            ) from None
        if not callable(fn):
            raise TaskNotRegisteredError(
                f"task spec {name!r} does not name a callable"
            )
        return fn
    raise TaskNotRegisteredError(
        f"unknown task name {name!r} (registered: "
        f"{sorted(_TASKS) or 'none'})"
    )


def registered_tasks() -> Dict[str, Callable]:
    """A snapshot of the curated name -> function registry."""
    _load_task_modules()
    return dict(_TASKS)


__all__ = [
    "TASK_MODULES",
    "TaskNotRegisteredError",
    "registered_tasks",
    "remote_task",
    "resolve_task",
    "task_name",
]
