"""Single-host process-pool backend (one worker per core).

The original ``repro.experiments.parallel`` executor, moved behind the
:class:`~repro.exec.backend.ExecutionBackend` contract with its two
load-bearing optimizations intact:

* **Chunked dispatch** -- tasks are submitted in contiguous chunks to
  amortize pickling and inter-process latency; chunking never changes
  results, only scheduling granularity.
* **Pool-initializer pinning** -- the task function (and anything a
  ``functools.partial`` closes over) is pickled once per *worker*
  through the pool initializer instead of once per *chunk*.

New here: **crash resilience**.  A worker segfaulting or being
OOM-killed used to surface as :class:`BrokenProcessPool` and abort the
whole sweep.  Now the backend rebuilds the pool and requeues every
task that was in flight when it broke, as singleton chunks so a poison
task only burns its own retry budget; tasks keep their results merged
deterministically by index, and :class:`WorkerCrashError` is raised
only once some task has crashed the pool ``max_attempts`` times.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exec.backend import (
    ExecutionBackend,
    ExecutionError,
    default_chunksize,
    resolve_jobs,
)

T = TypeVar("T")
R = TypeVar("R")

#: Default bound on per-task attempts (1 initial + 2 retries).
DEFAULT_MAX_ATTEMPTS = 3


class WorkerCrashError(ExecutionError):
    """A task crashed its worker process on every allowed attempt."""


#: Worker-global task function, installed once per worker process by
#: :func:`_init_worker` so chunk submissions carry only the task list
#: -- the function (and anything closed over by a partial) is pickled
#: once per *worker* instead of once per *chunk*.
_worker_fn: Optional[Callable[..., Any]] = None


def _init_worker(fn: Callable[[T], R]) -> None:
    """Pool initializer: pin the task function in this worker."""
    global _worker_fn
    _worker_fn = fn


def _run_chunk_initialized(chunk: Sequence[T]) -> List[R]:
    """Worker-side body using the function installed by
    :func:`_init_worker`."""
    fn = _worker_fn
    assert fn is not None, "worker used before initializer ran"
    return [fn(task) for task in chunk]


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``jobs`` of None/0 means one worker per CPU; ``chunksize`` of None
    picks :func:`~repro.exec.backend.default_chunksize`.  ``jobs <= 1``
    (or a single task) short-circuits to the inline loop so trivial
    campaigns never pay for an executor.
    """

    name = "pool"

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunksize: Optional[int] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize
        self.max_attempts = max(1, max_attempts)

    def completions(
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Dispatch chunks to the pool, yielding per-task completions
        as their chunk finishes; rebuild the pool and requeue on a
        worker crash."""
        total = len(tasks)
        if self.jobs <= 1 or total <= 1:
            for index, task in enumerate(tasks):
                yield index, fn(task)
            return
        chunksize = (
            self.chunksize
            if self.chunksize is not None
            else default_chunksize(total, self.jobs)
        )
        queue: List[List[int]] = [
            list(range(start, min(start + chunksize, total)))
            for start in range(0, total, chunksize)
        ]
        attempts: Dict[int, int] = {}
        while queue:
            crashed: List[List[int]] = []
            for index, result in self._one_pool_round(
                fn, tasks, queue, crashed
            ):
                yield index, result
            queue = self._requeue_crashed(crashed, attempts)

    def _one_pool_round(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        chunks: List[List[int]],
        crashed: List[List[int]],
    ) -> Iterator[Tuple[int, R]]:
        """Run ``chunks`` on one fresh pool; completed tasks are
        yielded, chunks lost to a broken pool collect in ``crashed``."""
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            initializer=_init_worker,
            initargs=(fn,),
        )
        try:
            futures = {}
            for indices in chunks:
                try:
                    future = pool.submit(
                        _run_chunk_initialized,
                        [tasks[i] for i in indices],
                    )
                except BrokenProcessPool:
                    # Pool died while we were still submitting: the
                    # rest of the round goes straight to the requeue.
                    crashed.append(indices)
                    continue
                futures[future] = indices
            pending = set(futures)
            while pending:
                finished, pending = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    indices = futures[future]
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        crashed.append(indices)
                        continue
                    for index, result in zip(indices, results):
                        yield index, result
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _requeue_crashed(
        self,
        crashed: List[List[int]],
        attempts: Dict[int, int],
    ) -> List[List[int]]:
        """The next round's chunk list: every crashed task as its own
        singleton chunk (isolating a poison task from its chunk mates),
        or :class:`WorkerCrashError` once one is out of attempts."""
        queue: List[List[int]] = []
        for indices in crashed:
            for index in sorted(indices):
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] >= self.max_attempts:
                    raise WorkerCrashError(
                        f"task {index} crashed its worker process on "
                        f"{attempts[index]} attempts (max_attempts="
                        f"{self.max_attempts})"
                    )
                queue.append([index])
        return queue


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "ProcessPoolBackend",
    "WorkerCrashError",
]
