"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

* ``fig1``      -- print the Figure 1 example neighbor table.
* ``fig2``      -- print the Figure 2 C-set tree template/realization.
* ``fig15a``    -- print the Theorem 5 upper-bound curves.
* ``fig15b``    -- run a Figure 15(b) simulation (scaled by default,
  ``--full`` for the paper's 8320-router configurations).
* ``join``      -- run a concurrent-join experiment and verify
  Theorems 1-3; ``--trace out.jsonl`` writes a span/event trace,
  ``--metrics`` / ``--metrics-csv out.csv`` expose the metrics
  registry (see :mod:`repro.obs`); ``--audit`` runs the
  :class:`~repro.obs.audit.LiveAuditor` inline (theorem gates plus
  mid-run consistency sampling); ``--seeds K --jobs N`` fans K
  seeds over N worker processes.
* ``report``    -- analyze a trace JSONL file: lifecycles, causal
  join trees, theorem-3 census (text/JSON/HTML; see
  :mod:`repro.obs.report`).
* ``sweep``     -- multi-seed Figure 15(b) sweep with aggregates;
  ``--jobs N`` parallelizes across processes (results are identical
  to the serial run for any N); ``--out out.json`` archives the
  backend-independent per-seed results.
* ``churn``     -- joins + leaves + crashes + recovery + optimization;
  ``--seeds K`` fans a multi-seed churn campaign over the engine.
* ``worker``    -- one sweep-executor daemon over real UDP
  (:mod:`repro.exec.worker`), the unit a ``--backend remote``
  campaign dispatches to.
* ``node``      -- one protocol node as a daemon over real UDP
  (:mod:`repro.net.daemon`).
* ``rendezvous`` -- the bootstrap directory service
  (:mod:`repro.net.rendezvous`).
* ``cluster``   -- boot a local multi-process UDP cluster, drive
  concurrent joins, verify Definition 3.8 / Theorem 3 over the live
  tables (:mod:`repro.net.cluster`); ``--report out.json`` archives
  the verification report; ``--telemetry DIR`` merges every daemon's
  causal trace into ``DIR/merged-trace.jsonl`` + ``run-report.json``
  and gates on causal validity.
* ``top``       -- live status table of a running cluster
  (:mod:`repro.net.top`), polled via the rendezvous directory;
  sweep workers show up alongside the cluster daemons.

The campaign commands (``fig15b``, ``join``, ``sweep``, ``churn``)
share the execution-engine flags: ``--backend inline|pool|remote``
(default: the historical ``--jobs`` contract), plus ``--workers
HOST:PORT,...`` and ``--workers-from HOST:PORT`` (rendezvous worker
discovery) for the remote backend.  Results are identical across
backends -- see :mod:`repro.exec` and ``docs/distributed.md``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import figure1_example

    _, rendering = figure1_example()
    print(rendering)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.fig2 import figure2_example

    result = figure2_example(seed=args.seed)
    print("Template C(V, W):")
    print(result.template.render())
    print("\nRealized cset(V, W):")
    print(result.realized.render())
    print(f"\nconsistent: {result.consistent}; "
          f"conditions (1)-(3) hold: {result.all_conditions_hold}")
    return 0 if result.consistent else 1


def _cmd_fig15a(args: argparse.Namespace) -> int:
    from repro.experiments.fig15a import (
        FIG15A_CONFIGS,
        figure15a_series,
        render_figure15a,
    )
    from repro.experiments.plotting import ascii_chart

    print(render_figure15a())
    print()
    series = {c.label: figure15a_series(c) for c in FIG15A_CONFIGS}
    print(
        ascii_chart(
            series,
            width=60,
            height=14,
            x_label="n",
            y_label="upper bound of E(J)   [Figure 15(a)]",
            y_min=3.0,
            y_max=9.0,
        )
    )
    return 0


def _cmd_fig15b(args: argparse.Namespace) -> int:
    from repro.experiments.fig15b import (
        Fig15bConfig,
        PAPER_CONFIGS,
        run_fig15b_many,
    )
    from repro.experiments.harness import render_cdf_table
    from repro.experiments.workloads import SMALL_TOPOLOGY

    if args.full:
        configs = PAPER_CONFIGS
    else:
        configs = (
            Fig15bConfig(
                n=args.n,
                m=args.m,
                base=16,
                num_digits=args.digits,
                seed=args.seed,
                topology_params=SMALL_TOPOLOGY,
            ),
        )
    from repro.experiments.plotting import cdf_chart

    ok = True
    samples = {}
    try:
        backend = _build_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        results = run_fig15b_many(configs, jobs=args.jobs, backend=backend)
    finally:
        if backend is not None:
            backend.close()
    for config, result in zip(configs, results):
        print(f"== {config.label} ==")
        print(render_cdf_table(result.cdf))
        print(f"  mean {result.mean_join_noti:.3f}  "
              f"bound {result.theorem5_bound:.3f}  "
              f"consistent {result.consistent}")
        ok = ok and result.consistent and result.all_in_system
        samples[config.label] = result.join_noti_counts
    print()
    print(cdf_chart(samples, width=60, height=12, x_max=50))
    return 0 if ok else 1


def _build_backend(args: argparse.Namespace):
    """The explicit :class:`repro.exec.ExecutionBackend` implied by
    the ``--backend`` / ``--workers`` / ``--workers-from`` flags, or
    ``None`` to keep the historical ``--jobs`` contract.

    The returned backend is CLI-owned: callers must ``close()`` it.
    Raises :class:`ValueError` on an unsatisfiable combination (e.g.
    ``--backend remote`` with neither workers nor a rendezvous).
    """
    spec = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    workers_from = getattr(args, "workers_from", None)
    if spec is None and not workers and not workers_from:
        return None
    from repro.exec import create_backend

    if spec is None:
        spec = "remote"  # a worker roster implies the remote backend
    worker_list = None
    if workers:
        worker_list = [w for w in (p.strip() for p in workers.split(",")) if w]
    jobs = getattr(args, "jobs", None)
    if spec == "pool" and (jobs is None or jobs <= 1):
        jobs = None  # --backend pool without --jobs: one per core
    return create_backend(
        spec, jobs=jobs, workers=worker_list, rendezvous=workers_from
    )


def _build_observability(args: argparse.Namespace):
    """The Observability implied by ``--trace``/``--metrics`` flags
    (or ``None`` when neither was given)."""
    from repro.obs import Observability

    if getattr(args, "trace", None):
        return Observability.tracing()
    if getattr(args, "metrics", False) or getattr(args, "metrics_csv", None):
        return Observability.metrics_only()
    return None


def _emit_observability(args: argparse.Namespace, net) -> None:
    """Write/print the trace and metrics artifacts ``args`` asked for."""
    from repro.experiments.harness import (
        render_metrics_table,
        render_phase_table,
    )
    from repro.obs import write_metrics_csv, write_trace_jsonl

    obs = net.obs
    if obs is None:
        return
    net.collect_final_metrics()
    if getattr(args, "trace", None):
        records = write_trace_jsonl(obs.tracer, args.trace)
        print(f"trace              : {args.trace} ({records} records)")
        print("join phase durations (virtual time):")
        print(render_phase_table(obs.tracer))
    if getattr(args, "metrics_csv", None):
        rows = write_metrics_csv(obs.metrics, args.metrics_csv)
        print(f"metrics csv        : {args.metrics_csv} ({rows} metrics)")
    if getattr(args, "metrics", False):
        print("metrics snapshot:")
        print(render_metrics_table(obs.metrics))


def _emit_audit(args: argparse.Namespace, auditor) -> bool:
    """Finalize the auditor, print/write its report; True iff passed."""
    import json

    report = auditor.finalize()
    print(report.render_text())
    if getattr(args, "audit_json", None):
        with open(args.audit_json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, sort_keys=True,
                      indent=2)
            handle.write("\n")
        print(f"audit json         : {args.audit_json}")
    return report.passed


def _build_runtime(args: argparse.Namespace):
    """The runtime implied by ``--runtime`` (``None`` -> default sim)."""
    kind = getattr(args, "runtime", None)
    if kind is None or kind == "sim":
        return None
    from repro.runtime import create_runtime

    return create_runtime(kind, time_scale=args.time_scale)


def _cmd_join(args: argparse.Namespace) -> int:
    from repro.analysis.expected_cost import theorem3_bound
    from repro.experiments.workloads import make_workload

    if args.seeds > 1:
        return _cmd_join_multi(args)
    runtime = _build_runtime(args)
    workload = make_workload(
        base=args.base,
        num_digits=args.digits,
        n=args.n,
        m=args.m,
        seed=args.seed,
        obs=_build_observability(args),
        runtime=runtime,
    )
    net = workload.network
    auditor = net.attach_auditor() if args.audit else None
    workload.start_all_joins()
    workload.run(wall_budget=args.wall_budget if runtime is not None else None)
    if runtime is not None:
        print(f"runtime            : {net.runtime.name} "
              f"(time scale {args.time_scale}s/unit, "
              f"{net.runtime.events_fired} events)")
    report = net.check_consistency()
    bound = theorem3_bound(args.digits)
    counts = net.theorem3_counts()
    print(f"members            : {len(net.member_ids())}")
    print(f"Theorem 1 (consistent): {report.consistent}")
    print(f"Theorem 2 (all S-node): {net.all_in_system()}")
    print(f"Theorem 3 (<= {bound}): max {max(counts)}")
    print(f"mean JoinNotiMsg   : "
          f"{sum(net.join_noti_counts()) / args.m:.3f}")
    print(f"total messages     : {net.stats.total_messages}")
    _emit_observability(args, net)
    audit_ok = _emit_audit(args, auditor) if auditor is not None else True
    if getattr(args, "messages_csv", None):
        from repro.obs import write_message_type_csv

        rows = write_message_type_csv(net.stats.registry, args.messages_csv)
        print(f"messages csv       : {args.messages_csv} ({rows} types)")
    ok = report.consistent and net.all_in_system() and audit_ok
    if runtime is not None:
        runtime.close()
    return 0 if ok else 1


def _cmd_join_multi(args: argparse.Namespace) -> int:
    """``join --seeds K``: fan K seeded runs over ``--jobs`` workers."""
    from repro.experiments.parallel import (
        JoinTaskConfig,
        run_join_tasks,
        seeded_configs,
    )

    base_config = JoinTaskConfig(
        base=args.base,
        num_digits=args.digits,
        n=args.n,
        m=args.m,
        seed=args.seed,
    )
    seeds = range(args.seed, args.seed + args.seeds)
    try:
        backend = _build_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        results = run_join_tasks(
            seeded_configs(base_config, seeds), jobs=args.jobs,
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()
    ok = True
    print(f"{'seed':>6}  {'members':>7}  {'mean noti':>9}  "
          f"{'max thm3':>8}  {'messages':>8}  consistent")
    for result in results:
        ok = ok and result.consistent and result.all_in_system
        print(f"{result.seed:>6}  {result.members:>7}  "
              f"{result.mean_join_noti:>9.3f}  "
              f"{result.max_theorem3:>8}  "
              f"{result.total_messages:>8}  {result.consistent}")
    mean_noti = sum(r.mean_join_noti for r in results) / len(results)
    print(f"mean JoinNotiMsg over {len(results)} seeds: {mean_noti:.3f}")
    print(f"all consistent     : {ok}")
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: analytics over a trace JSONL file."""
    from repro.obs.report import RunReport

    report = RunReport.from_file(args.trace)
    data = report.to_json_dict()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"report json        : {args.json}")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(report.render_html())
        print(f"report html        : {args.html}")
    print(report.render_text())
    healthy = (
        not data["lifecycles"]["illegal_transitions"]
        and not data["lifecycles"]["stalled"]
        and not data["causality"]["problems"]
        and data["theorem3"]["passed"]
    )
    return 0 if healthy else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.fig15b import Fig15bConfig
    from repro.experiments.sweep import sweep_fig15b
    from repro.experiments.workloads import SMALL_TOPOLOGY

    config = Fig15bConfig(
        n=args.n,
        m=args.m,
        base=16,
        num_digits=args.digits,
        topology_params=SMALL_TOPOLOGY,
    )
    seeds = range(args.seed, args.seed + args.seeds)
    try:
        backend = _build_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        sweep = sweep_fig15b(config, seeds, jobs=args.jobs, backend=backend)
    finally:
        if backend is not None:
            backend.close()
    print(f"== {config.label}; seeds {list(seeds)} ==")
    print(sweep.mean_join_noti)
    print(f"Theorem 5 bound    : {sweep.theorem5_bound:.3f}")
    print(f"bound never exceeded: {sweep.bound_never_exceeded}")
    print(f"all consistent     : {sweep.all_consistent}")
    if args.out:
        _write_sweep_json(args.out, config, list(seeds), sweep)
        print(f"sweep json         : {args.out}")
    return 0 if sweep.all_consistent else 1


def _write_sweep_json(path, config, seeds, sweep) -> None:
    """Archive a sweep as backend-independent JSON.

    The content is a pure function of the task configs -- per-seed
    results plus aggregates, nothing scheduling-dependent -- so runs
    of the same sweep on different ``--backend`` values produce
    byte-identical files (the CI ``distributed-smoke`` job diffs
    them).
    """
    import json

    payload = {
        "config": {
            "n": config.n,
            "m": config.m,
            "base": config.base,
            "num_digits": config.num_digits,
        },
        "seeds": list(seeds),
        "per_seed": [
            {
                "seed": result.config.seed,
                "mean_join_noti": result.mean_join_noti,
                "max_join_noti": max(result.join_noti_counts),
                "theorem3_violations": result.theorem3_violations,
                "consistent": result.consistent,
                "all_in_system": result.all_in_system,
                "total_messages": result.total_messages,
            }
            for result in sweep.results
        ],
        "theorem5_bound": sweep.theorem5_bound,
        "bound_never_exceeded": sweep.bound_never_exceeded,
        "all_consistent": sweep.all_consistent,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def _cmd_churn(args: argparse.Namespace) -> int:
    from repro.experiments.churn import ChurnConfig, run_churn
    from repro.experiments.workloads import SMALL_TOPOLOGY

    config = ChurnConfig(
        n=args.n,
        m=args.m,
        leaves=args.leaves,
        failures=args.failures,
        seed=args.seed,
        topology_params=SMALL_TOPOLOGY,
    )
    if args.seeds > 1:
        return _cmd_churn_multi(args, config)
    result = run_churn(config)
    for phase in result.phases:
        print(phase)
    print(f"final consistency  : {result.all_consistent}")
    return 0 if result.all_consistent else 1


def _cmd_churn_multi(args: argparse.Namespace, config) -> int:
    """``churn --seeds K``: fan K seeded lifecycles over the engine."""
    from repro.experiments.churn import churn_seeds, run_churn_tasks

    seeds = range(args.seed, args.seed + args.seeds)
    try:
        backend = _build_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        results = run_churn_tasks(
            churn_seeds(config, seeds), jobs=args.jobs, backend=backend
        )
    finally:
        if backend is not None:
            backend.close()
    ok = True
    print(f"{'seed':>6}  {'phases':>6}  {'members':>7}  "
          f"{'stretch':>14}  consistent")
    for result in results:
        ok = ok and result.all_consistent
        members = result.phases[-1].members if result.phases else 0
        stretch = (
            f"{result.stretch_before:.2f}->{result.stretch_after:.2f}"
            if result.stretch_after
            else "-"
        )
        print(f"{result.config.seed:>6}  {len(result.phases):>6}  "
              f"{members:>7}  {stretch:>14}  {result.all_consistent}")
    print(f"all consistent     : {ok}")
    return 0 if ok else 1


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.net.daemon import NodeDaemonConfig, run_node_daemon
    from repro.net.wire import parse_hostport

    try:
        config = NodeDaemonConfig(
            listen=parse_hostport(args.listen),
            base=args.base,
            num_digits=args.num_digits,
            node_id=args.id,
            rendezvous=(
                parse_hostport(args.rendezvous) if args.rendezvous else None
            ),
            bootstrap=(
                parse_hostport(args.bootstrap) if args.bootstrap else None
            ),
            seed_node=args.seed_node,
            time_scale=args.time_scale,
            wall_budget=args.wall_budget,
            loss=args.loss,
            duplicate=args.duplicate,
            reorder=args.reorder,
            fault_seed=args.fault_seed,
            telemetry=args.telemetry,
            telemetry_file=args.telemetry_file,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_node_daemon(config)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.net.top import run_top
    from repro.net.wire import parse_hostport

    samples = run_top(
        parse_hostport(args.rendezvous),
        interval=args.interval,
        iterations=args.iterations,
    )
    return 0 if samples > 0 else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.exec.worker import run_worker_daemon
    from repro.net.wire import parse_hostport

    try:
        listen = parse_hostport(args.listen)
        rendezvous = (
            parse_hostport(args.rendezvous) if args.rendezvous else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_worker_daemon(
        listen,
        rendezvous=rendezvous,
        announce_interval=args.announce_interval,
    )


def _cmd_rendezvous(args: argparse.Namespace) -> int:
    from repro.net.rendezvous import RendezvousServer
    from repro.net.wire import parse_hostport

    server = RendezvousServer(parse_hostport(args.listen), ttl=args.ttl)
    host, port = server.open()
    print(
        f"REPRO-NET READY kind=rendezvous host={host} port={port}",
        flush=True,
    )
    try:
        server.serve()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.close()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.net.cluster import (
        ClusterConfig,
        ClusterError,
        run_cluster,
        write_report,
    )

    try:
        config = ClusterConfig(
            nodes=args.nodes,
            joins=args.joins,
            base=args.base,
            num_digits=args.num_digits,
            loss=args.loss,
            duplicate=args.duplicate,
            fault_seed=args.fault_seed,
            time_scale=args.time_scale,
            converge_timeout=args.timeout,
            telemetry_dir=args.telemetry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_cluster(config)
    except ClusterError as exc:
        print(f"cluster failed: {exc}", file=sys.stderr)
        return 1
    if args.report:
        write_report(report, args.report)
        print(f"report written to {args.report}")
    return 0 if report["ok"] else 1


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared execution-engine flags to a campaign
    subcommand (see :func:`_build_backend`)."""
    from repro.exec import BACKEND_NAMES

    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend (default: inline for --jobs 1, "
             "pool otherwise; results are identical for any choice)",
    )
    parser.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="comma-separated repro worker daemons for --backend "
             "remote (implies it)",
    )
    parser.add_argument(
        "--workers-from", default=None, metavar="HOST:PORT",
        help="rendezvous service to discover workers from for "
             "--backend remote (implies it)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Liu & Lam (ICDCS 2003) reproduction: hypercube routing "
            "join protocol"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Figure 1 example table").set_defaults(
        func=_cmd_fig1
    )

    fig2 = sub.add_parser("fig2", help="Figure 2 C-set tree example")
    fig2.add_argument("--seed", type=int, default=0)
    fig2.set_defaults(func=_cmd_fig2)

    sub.add_parser(
        "fig15a", help="Theorem 5 upper-bound curves"
    ).set_defaults(func=_cmd_fig15a)

    fig15b = sub.add_parser("fig15b", help="Figure 15(b) simulation")
    fig15b.add_argument("--full", action="store_true",
                        help="paper-scale (8320 routers, four configs)")
    fig15b.add_argument("--n", type=int, default=300)
    fig15b.add_argument("--m", type=int, default=100)
    fig15b.add_argument("--digits", type=int, default=8)
    fig15b.add_argument("--seed", type=int, default=0)
    fig15b.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for multi-config runs (e.g. --full)",
    )
    _add_backend_args(fig15b)
    fig15b.set_defaults(func=_cmd_fig15b)

    join = sub.add_parser("join", help="concurrent-join experiment")
    join.add_argument("--base", type=int, default=16)
    join.add_argument("--digits", type=int, default=8)
    join.add_argument("--n", type=int, default=300)
    join.add_argument("--m", type=int, default=100)
    join.add_argument("--seed", type=int, default=0)
    join.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL span/event trace of the run to PATH",
    )
    join.add_argument(
        "--metrics", action="store_true",
        help="print the metrics-registry snapshot after the run",
    )
    join.add_argument(
        "--metrics-csv", metavar="PATH",
        help="write the metrics snapshot as CSV to PATH",
    )
    join.add_argument(
        "--messages-csv", metavar="PATH",
        help="write the per-message-type counter breakdown as CSV",
    )
    join.add_argument(
        "--audit", action="store_true",
        help="run the live protocol auditor inline (theorem gates + "
             "mid-run consistency sampling; single-run only)",
    )
    join.add_argument(
        "--audit-json", metavar="PATH",
        help="with --audit: write the audit report as JSON to PATH",
    )
    join.add_argument(
        "--runtime", choices=("sim", "asyncio"), default="sim",
        help="execution substrate: deterministic virtual-time simulator "
             "(default) or wall-clock asyncio timers driving the "
             "identical protocol core",
    )
    join.add_argument(
        "--time-scale", type=float, default=0.001, metavar="SECONDS",
        help="with --runtime asyncio: wall-clock seconds per protocol "
             "time unit (default 0.001 = 1ms)",
    )
    join.add_argument(
        "--wall-budget", type=float, default=120.0, metavar="SECONDS",
        help="with --runtime asyncio: fail if the network has not "
             "quiesced within this much real time",
    )
    join.add_argument(
        "--seeds", type=int, default=1,
        help="run this many seeds (starting at --seed) and aggregate",
    )
    join.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --seeds > 1",
    )
    _add_backend_args(join)
    join.set_defaults(func=_cmd_join)

    report = sub.add_parser(
        "report", help="analyze a trace JSONL file (see join --trace)"
    )
    report.add_argument("trace", metavar="TRACE",
                        help="trace JSONL file to analyze")
    report.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    report.add_argument("--html", metavar="PATH",
                        help="write a self-contained HTML timeline to PATH")
    report.set_defaults(func=_cmd_report)

    sweep = sub.add_parser(
        "sweep", help="multi-seed Figure 15(b) sweep with aggregates"
    )
    sweep.add_argument("--n", type=int, default=300)
    sweep.add_argument("--m", type=int, default=100)
    sweep.add_argument("--digits", type=int, default=8)
    sweep.add_argument("--seed", type=int, default=0,
                       help="first seed of the sweep")
    sweep.add_argument("--seeds", type=int, default=5,
                       help="number of seeds")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes")
    sweep.add_argument("--out", default=None, metavar="OUT.json",
                       help="archive the per-seed results as JSON "
                            "(backend-independent content)")
    _add_backend_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    churn = sub.add_parser("churn", help="full membership lifecycle")
    churn.add_argument("--n", type=int, default=150)
    churn.add_argument("--m", type=int, default=50)
    churn.add_argument("--leaves", type=int, default=30)
    churn.add_argument("--failures", type=int, default=20)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--seeds", type=int, default=1,
                       help="run this many seeds (starting at --seed) "
                            "and aggregate")
    churn.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --seeds > 1")
    _add_backend_args(churn)
    churn.set_defaults(func=_cmd_churn)

    node = sub.add_parser(
        "node", help="run one protocol node daemon over UDP"
    )
    node.add_argument("--listen", required=True, metavar="HOST:PORT",
                      help="UDP address to bind (port 0 = kernel-assigned)")
    node.add_argument("--id", default=None,
                      help="node ID digit string (default: hash of address)")
    node.add_argument("--rendezvous", default=None, metavar="HOST:PORT",
                      help="rendezvous service to announce to / join via")
    node.add_argument("--bootstrap", default=None, metavar="HOST:PORT",
                      help="known member to join via (bypasses rendezvous "
                           "gateway selection)")
    node.add_argument("--seed-node", action="store_true",
                      help="start a new network as its first member")
    node.add_argument("--base", type=int, default=16)
    node.add_argument("--num-digits", type=int, default=8)
    node.add_argument("--time-scale", type=float, default=0.001,
                      help="seconds per protocol time unit")
    node.add_argument("--wall-budget", type=float, default=None,
                      help="exit after this many wall-clock seconds")
    node.add_argument("--loss", type=float, default=0.0,
                      help="inject datagram loss probability")
    node.add_argument("--duplicate", type=float, default=0.0,
                      help="inject datagram duplication probability")
    node.add_argument("--reorder", type=float, default=0.0,
                      help="inject datagram reordering probability")
    node.add_argument("--fault-seed", type=int, default=0)
    node.add_argument("--telemetry", action="store_true",
                      help="record causal trace + wire metrics, served "
                           "via the telemetry/metrics control ops")
    node.add_argument("--telemetry-file", default=None, metavar="OUT.jsonl",
                      help="spool the trace to JSONL on shutdown "
                           "(implies --telemetry)")
    node.set_defaults(func=_cmd_node)

    worker = sub.add_parser(
        "worker", help="run one sweep-executor daemon over UDP"
    )
    worker.add_argument("--listen", required=True, metavar="HOST:PORT",
                        help="UDP address to bind (port 0 = "
                             "kernel-assigned)")
    worker.add_argument("--rendezvous", default=None, metavar="HOST:PORT",
                        help="rendezvous service to announce to (so "
                             "coordinators can discover this worker)")
    worker.add_argument("--announce-interval", type=float, default=15.0,
                        help="seconds between rendezvous heartbeats")
    worker.set_defaults(func=_cmd_worker)

    rendezvous = sub.add_parser(
        "rendezvous", help="run the bootstrap directory service"
    )
    rendezvous.add_argument("--listen", required=True, metavar="HOST:PORT")
    rendezvous.add_argument("--ttl", type=float, default=60.0,
                            help="registration lifetime in seconds")
    rendezvous.set_defaults(func=_cmd_rendezvous)

    cluster = sub.add_parser(
        "cluster", help="boot a local multi-process UDP cluster and "
                        "verify concurrent joins"
    )
    cluster.add_argument("--nodes", type=int, default=5,
                         help="total node daemons (including the seed)")
    cluster.add_argument("--joins", type=int, default=3,
                         help="number of concurrent joins at the end")
    cluster.add_argument("--base", type=int, default=4)
    cluster.add_argument("--num-digits", type=int, default=4)
    cluster.add_argument("--loss", type=float, default=0.0,
                         help="per-daemon datagram loss probability")
    cluster.add_argument("--duplicate", type=float, default=0.0)
    cluster.add_argument("--fault-seed", type=int, default=1)
    cluster.add_argument("--time-scale", type=float, default=0.001)
    cluster.add_argument("--timeout", type=float, default=60.0,
                         help="wall-clock convergence budget in seconds")
    cluster.add_argument("--report", default=None, metavar="OUT.json",
                         help="write the verification report as JSON")
    cluster.add_argument("--telemetry", default=None, metavar="DIR",
                         help="enable per-daemon telemetry; merge the "
                              "cluster-wide causal trace and run report "
                              "into DIR")
    cluster.set_defaults(func=_cmd_cluster)

    top = sub.add_parser(
        "top", help="live status table of a running cluster"
    )
    top.add_argument("--rendezvous", required=True, metavar="HOST:PORT",
                     help="rendezvous service to read the roster from")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N samples (0 = run until ^C)")
    top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` (or ``sys.argv``) and run the chosen command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
