"""Reachability in the sense of Definition 3.7.

``y`` is reachable from ``x`` within ``k`` hops when there is a
neighbor sequence ``u_0 .. u_k`` with ``u_0 = x``, ``u_k = y`` and
``u_{i+1} = N_{u_i}(i, y[i])``.  Note the definition indexes the table
level by the *hop count*, which coincides with the matched-suffix
length along the canonical route from a node with no shared suffix; we
implement the equivalent suffix-progress form used by the routing
scheme, starting at level ``|csuf(x, y)|``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ids.digits import NodeId
from repro.routing.router import TableProvider, route


def is_reachable(
    tables: TableProvider, source: NodeId, target: NodeId
) -> bool:
    """True iff following primary neighbors from ``source`` reaches
    ``target`` within ``d`` hops."""
    return route(tables, source, target).success


def reachability_path(
    tables: TableProvider, source: NodeId, target: NodeId
) -> Optional[List[NodeId]]:
    """The neighbor sequence from ``source`` to ``target`` (None when
    unreachable)."""
    result = route(tables, source, target)
    return result.path if result.success else None
