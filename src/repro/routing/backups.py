"""Backup neighbors and fault-tolerant routing (footnote 6).

The paper keeps one *primary* neighbor per entry for the consistency
analysis, but notes that "if multiple nodes exist with the desired
suffix ... a subset of these nodes may be stored in the entry", with
the extras used "for fault tolerant routing [13]" (Tapestry).

:class:`BackupStore` holds those extras: when the join protocol sees a
suffix-qualified node for an entry that is already filled (the
``Check_Ngh_Table`` / ``JoinNotiMsg`` paths), the node is remembered
as a backup instead of being dropped.  :func:`route_fault_tolerant`
then routes around dead primaries by falling back to backups at each
hop -- bridging the window between a crash and the recovery sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ids.digits import NodeId
from repro.routing.router import RouteResult, TableProvider
from repro.routing.table import NeighborTable

Position = Tuple[int, int]

#: Default cap on extras per entry (Tapestry keeps two backups).
MAX_BACKUPS = 2


class BackupStore:
    """Up to :data:`MAX_BACKUPS` alternate neighbors per entry."""

    def __init__(self, owner: NodeId, capacity: int = MAX_BACKUPS):
        self.owner = owner
        self.capacity = capacity
        self._base = owner.base
        # Buckets keyed by flat index ``level * base + digit`` -- int
        # hashing, no tuple allocation per probe; Check_Ngh_Table
        # offers a backup for most entries of every received table.
        self._backups: Dict[int, List[NodeId]] = {}

    def offer(self, level: int, digit: int, node: NodeId) -> bool:
        """Remember ``node`` as a backup for ``(level, digit)`` if it
        qualifies and there is room.  Returns True when stored."""
        if node == self.owner:
            return False
        if node.csuf_len(self.owner) < level or node.digit(level) != digit:
            return False
        return self.offer_flat(level * self._base + digit, node)

    def offer_qualified(self, level: int, digit: int, node: NodeId) -> bool:
        """:meth:`offer` minus the qualification re-check (hot path).

        The protocol's ``Check_Ngh_Table``/``JoinNotiMsg`` loops derive
        ``(level, digit)`` from ``csuf(node, owner)`` immediately before
        offering, so the suffix constraint and ``node != owner`` hold by
        construction; this entry point skips re-deriving them.
        """
        return self.offer_flat(level * self._base + digit, node)

    def offer_flat(self, idx: int, node: NodeId) -> bool:
        """:meth:`offer_qualified` addressed by flat index (the
        caller's loop already computed ``level * base + digit``)."""
        bucket = self._backups.get(idx)
        if bucket is None:
            if self.capacity < 1:
                return False
            self._backups[idx] = [node]
            return True
        if len(bucket) >= self.capacity or node in bucket:
            return False
        bucket.append(node)
        return True

    def get(self, level: int, digit: int) -> List[NodeId]:
        """The backups recorded for ``(level, digit)`` (copy)."""
        return list(self._backups.get(level * self._base + digit, ()))

    def discard(self, node: NodeId) -> None:
        """Forget a departed node everywhere."""
        for idx in list(self._backups):
            bucket = self._backups[idx]
            if node in bucket:
                bucket.remove(node)
                if not bucket:
                    del self._backups[idx]

    def total(self) -> int:
        """Total backups stored across all positions."""
        return sum(len(bucket) for bucket in self._backups.values())

    def positions(self) -> List[Position]:
        """Positions that currently have at least one backup."""
        base = self._base
        return [divmod(idx, base) for idx in sorted(self._backups)]


#: Resolves a node ID to its backup store.
BackupProvider = Callable[[NodeId], BackupStore]


def harvest_backups(network, capacity: int = MAX_BACKUPS) -> None:
    """Fill every node's backup store from global membership.

    PRR-style tables store a *subset* of each suffix class per entry;
    the join protocol only accumulates backups opportunistically (from
    contested fills), so experiments that want fully-provisioned
    backup sets -- e.g. the routing-availability bench -- call this to
    top them up, exactly as a background maintenance task would.
    """
    from repro.ids.suffix import SuffixIndex

    members = network.member_ids()
    index = SuffixIndex(members)
    for node_id in members:
        node = network.node(node_id)
        table = node.table
        store = node.backups
        store.capacity = max(store.capacity, capacity)
        for entry in table.entries():
            if entry.node == node_id:
                continue
            suffix = node_id.suffix(entry.level) + (entry.digit,)
            for candidate in sorted(index.nodes_with(suffix)):
                if candidate in (entry.node, node_id):
                    continue
                if len(store.get(entry.level, entry.digit)) >= capacity:
                    break
                store.offer(entry.level, entry.digit, candidate)


def route_fault_tolerant(
    tables: TableProvider,
    backups: BackupProvider,
    live: Set[NodeId],
    source: NodeId,
    target: NodeId,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Suffix routing that falls back to backup neighbors when the
    primary next hop is dead (``live`` is the surviving membership).

    Every hop -- primary or backup -- still extends the matched
    suffix, so termination is unchanged.
    """
    if max_hops is None:
        max_hops = source.num_digits
    path = [source]
    current = source
    while current != target:
        if len(path) - 1 >= max_hops:
            return RouteResult(False, path, failed_at=current)
        level = current.csuf_len(target)
        digit = target.digit(level)
        candidates: List[NodeId] = []
        primary = tables(current).get(level, digit)
        if primary is not None:
            candidates.append(primary)
        candidates.extend(backups(current).get(level, digit))
        hop = next((c for c in candidates if c in live), None)
        if hop is None or hop.csuf_len(target) <= level:
            return RouteResult(False, path, failed_at=current)
        path.append(hop)
        current = hop
    return RouteResult(True, path)
