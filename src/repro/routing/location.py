"""Object location on top of the routing infrastructure.

PRR's purpose -- and the motivation in the paper's introduction -- is
locating replicated objects: object names hash into the node ID space,
each object has a deterministic *root* node (the surrogate-routing
resolution of its ID, property P1), and directory entries mapping the
object to its holders live at the root.

:class:`ObjectDirectory` implements that scheme over any table
provider.  It is deliberately minimal -- the paper defers directory
dynamics to PRR [9] -- but enough to run the motivating file-sharing
workloads (see ``examples/file_sharing_network.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.routing.router import TableProvider, surrogate_route


def object_root(
    tables: TableProvider, origin: NodeId, object_id: NodeId
) -> NodeId:
    """The object's root: where surrogate routing from ``origin``
    toward ``object_id`` terminates.  Origin-independent on a
    consistent network (deterministic location, P1)."""
    result = surrogate_route(tables, origin, object_id)
    if not result.success:
        raise RuntimeError(
            f"surrogate routing failed at {result.failed_at}; "
            "is the network consistent?"
        )
    return result.path[-1]


class ObjectDirectory:
    """A name service over a :class:`~repro.protocol.join.JoinProtocolNetwork`.

    Objects are published under their hashed name at their current
    root; queries resolve the root and look the name up there.  After
    membership changes (joins can move roots), call
    :meth:`republish_all` -- the maintenance step real systems trigger
    on neighbor-table change.
    """

    def __init__(self, network, hash_algorithm: str = "sha1"):
        self.network = network
        self.idspace: IdSpace = network.idspace
        self.hash_algorithm = hash_algorithm
        # root -> {object name -> holders}
        self._directories: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        # holder bookkeeping for republish
        self._published: Dict[str, Set[NodeId]] = {}

    def object_id(self, name: str) -> NodeId:
        """Hash ``name`` into the node ID space."""
        return self.idspace.hash_name(name, self.hash_algorithm)

    def _provider(self):
        tables = self.network.tables()
        return lambda node_id: tables[node_id]

    def root_of(self, name: str, origin: Optional[NodeId] = None) -> NodeId:
        """The current root node of ``name`` (origin-independent)."""
        if origin is None:
            origin = next(iter(self.network.nodes))
        return object_root(
            self._provider(), origin, self.object_id(name)
        )

    def publish(self, holder: NodeId, name: str) -> NodeId:
        """Record ``holder`` as having ``name``; returns the root the
        mapping was stored at."""
        if holder not in self.network.nodes:
            raise ValueError(f"{holder} is not a live member")
        root = self.root_of(name, origin=holder)
        self._directories.setdefault(root, {}).setdefault(
            name, set()
        ).add(holder)
        self._published.setdefault(name, set()).add(holder)
        return root

    def query(self, origin: NodeId, name: str) -> Set[NodeId]:
        """Holders of ``name`` per the directory at its current root."""
        root = self.root_of(name, origin=origin)
        return set(self._directories.get(root, {}).get(name, ()))

    def republish_all(self) -> int:
        """Re-anchor every mapping at its (possibly moved) current
        root; drops holders that have left.  Returns mappings placed."""
        live = set(self.network.nodes)
        published = {
            name: {h for h in holders if h in live}
            for name, holders in self._published.items()
        }
        self._directories = {}
        self._published = {}
        count = 0
        for name, holders in published.items():
            for holder in holders:
                self.publish(holder, name)
                count += 1
        return count
