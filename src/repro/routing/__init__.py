"""Hypercube (suffix-matching) routing substrate.

Implements Section 2 of the paper: neighbor tables with ``d`` levels of
``b`` entries (:mod:`~repro.routing.table`), the suffix-matching
routing scheme (:mod:`~repro.routing.router`), reachability in the
sense of Definition 3.7 (:mod:`~repro.routing.reachability`), and an
*oracle* constructor that builds consistent tables directly from global
knowledge (:mod:`~repro.routing.oracle`) -- used to set up the initial
consistent network ``<V, N(V)>`` for experiments without paying for a
full protocol bootstrap.
"""

from repro.routing.entry import NeighborState, TableEntry
from repro.routing.oracle import build_consistent_tables
from repro.routing.reachability import is_reachable, reachability_path
from repro.routing.router import (
    RouteResult,
    next_hop,
    route,
    surrogate_route,
)
from repro.routing.table import NeighborTable, TableSnapshot, format_table

__all__ = [
    "NeighborState",
    "NeighborTable",
    "RouteResult",
    "TableEntry",
    "TableSnapshot",
    "build_consistent_tables",
    "format_table",
    "is_reachable",
    "next_hop",
    "reachability_path",
    "route",
    "surrogate_route",
]
