"""The suffix-matching routing scheme (Section 2.2).

A message from ``x`` to ``y`` starts at level ``k = |csuf(x, y)|`` and
follows, at each intermediate node ``u``, the primary
``(i, y[i])``-neighbor where ``i = |csuf(u, y)|``.  Every hop extends
the matched suffix by at least one digit, so a route takes at most
``d`` hops on a consistent network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ids.digits import NodeId
from repro.routing.table import NeighborTable

#: Resolves a node ID to that node's neighbor table.
TableProvider = Callable[[NodeId], NeighborTable]


@dataclass
class RouteResult:
    """Outcome of a routing attempt.

    ``path`` always starts at the source; when ``success`` it ends at
    the destination.  ``failed_at`` names the node whose table had a
    null entry for the next required suffix (None on success).
    """

    success: bool
    path: List[NodeId]
    failed_at: Optional[NodeId] = None

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def next_hop(
    table: NeighborTable, current: NodeId, target: NodeId
) -> Optional[NodeId]:
    """The next node on the route from ``current`` toward ``target``.

    Returns None when the required entry is empty (routing failure on
    an inconsistent network) and ``current`` itself when it is already
    the target.
    """
    if current == target:
        return current
    level = current.csuf_len(target)
    return table.get(level, target.digit(level))


def surrogate_route(
    tables: TableProvider,
    source: NodeId,
    target: NodeId,
) -> RouteResult:
    """Route toward ``target`` (typically an *object* ID with no node
    behind it) and deterministically resolve to its **root** node.

    At each node, if the entry for the target's next digit is null,
    the digit is substituted by the cyclically-next digit with a
    non-null entry at that level (PRR/Pastry surrogate routing).  On a
    consistent network the surviving digit *classes* at each level are
    determined by membership alone, so every origin converges on the
    same root -- this is what makes object location deterministic
    (property P1 of the paper's introduction).
    """
    path = [source]
    current = source
    for _ in range(target.num_digits + 1):
        if current == target:
            return RouteResult(True, path)
        table = tables(current)
        level = current.csuf_len(target)
        hop = None
        for offset in range(current.base):
            digit = (target.digit(level) + offset) % current.base
            candidate = table.get(level, digit)
            if candidate is not None:
                hop = candidate
                break
        if hop is None:
            # Not even a self-pointer: malformed table.
            return RouteResult(False, path, failed_at=current)
        if hop == current:
            # We are the best match at this level; resolve deeper
            # levels locally until the root (possibly ourselves).
            next_level = level + 1
            while next_level < current.num_digits:
                found = None
                for offset in range(current.base):
                    digit = (
                        target.digit(next_level) + offset
                    ) % current.base
                    candidate = table.get(next_level, digit)
                    if candidate is not None:
                        found = candidate
                        break
                if found is None or found == current:
                    next_level += 1
                    continue
                hop = found
                break
            if hop == current:
                return RouteResult(True, path)
        path.append(hop)
        current = hop
    return RouteResult(False, path, failed_at=current)


def route(
    tables: TableProvider,
    source: NodeId,
    target: NodeId,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route from ``source`` to ``target`` following primary neighbors.

    ``max_hops`` defaults to ``d`` (sufficient on a consistent network;
    the suffix-match length strictly increases each hop).
    """
    if max_hops is None:
        max_hops = source.num_digits
    path = [source]
    current = source
    while current != target:
        if len(path) - 1 >= max_hops:
            return RouteResult(False, path, failed_at=current)
        hop = next_hop(tables(current), current, target)
        if hop is None:
            return RouteResult(False, path, failed_at=current)
        if hop.csuf_len(target) <= current.csuf_len(target):
            # A consistent network guarantees progress; surface the
            # violation instead of looping forever.
            return RouteResult(False, path + [hop], failed_at=current)
        path.append(hop)
        current = hop
    return RouteResult(True, path)
