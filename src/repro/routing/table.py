"""The neighbor table (Section 2.1).

A table has ``d`` levels of ``b`` entries.  The ``(i, j)``-entry of
node ``x`` may hold a node whose ID shares the rightmost ``i`` digits
with ``x.ID`` and whose ``i``-th digit is ``j`` (we keep one *primary*
neighbor per entry, as in Section 3's simplification).  The table also
tracks reverse neighbors: ``x`` is a reverse ``(i, j)``-neighbor of
``y`` iff ``y`` is the primary ``(i, j)``-neighbor of ``x``.

Entries are stored sparsely; the join protocol only ever fills empty
entries, and :meth:`NeighborTable.set_entry` enforces that (overwriting
with a *different* node raises, catching protocol bugs early).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ids.digits import NodeId
from repro.routing.entry import NeighborState, TableEntry

Position = Tuple[int, int]

#: A snapshot of the filled entries of a table, as carried inside
#: protocol messages (CpRlyMsg, JoinWaitRlyMsg, JoinNotiMsg, ...).
TableSnapshot = Tuple[TableEntry, ...]


class EntryConflictError(RuntimeError):
    """An attempt to overwrite a filled entry with a different node."""


class NeighborTable:
    """Sparse ``d x b`` neighbor table with reverse-neighbor tracking."""

    __slots__ = (
        "owner", "base", "num_levels", "_entries", "_reverse", "_snapshot",
    )

    def __init__(self, owner: NodeId):
        self.owner = owner
        self.base = owner.base
        self.num_levels = owner.num_digits
        self._entries: Dict[Position, Tuple[NodeId, NeighborState]] = {}
        self._reverse: Dict[Position, Set[NodeId]] = {}
        # Cached position-sorted snapshot tuple; every table-carrying
        # message (CpRlyMsg, JoinWaitRlyMsg, JoinNotiMsg, ...) takes a
        # snapshot, and between mutations they are all identical, so the
        # sort + entry construction is paid once per table change.
        self._snapshot: Optional[TableSnapshot] = None

    # -- basic access -------------------------------------------------

    def get(self, level: int, digit: int) -> Optional[NodeId]:
        """The paper's ``N_x(i, j)`` (None when the entry is empty)."""
        cell = self._entries.get((level, digit))
        return cell[0] if cell is not None else None

    def state(self, level: int, digit: int) -> Optional[NeighborState]:
        """``N_x(i, j).state``, or None when the entry is empty."""
        cell = self._entries.get((level, digit))
        return cell[1] if cell is not None else None

    def is_empty(self, level: int, digit: int) -> bool:
        """True iff the ``(level, digit)``-entry is unfilled."""
        return (level, digit) not in self._entries

    def _check_position(self, level: int, digit: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= digit < self.base:
            raise ValueError(f"digit {digit} out of range")

    def _check_suffix(self, level: int, digit: int, node: NodeId) -> None:
        if node.csuf_len(self.owner) < level or node.digit(level) != digit:
            raise ValueError(
                f"{node} does not satisfy the ({level},{digit})-entry "
                f"suffix constraint of {self.owner}"
            )

    def set_entry(
        self,
        level: int,
        digit: int,
        node: NodeId,
        state: NeighborState,
    ) -> None:
        """Fill ``(level, digit)`` with ``node``.

        Idempotent for the same node (the state is updated); raises
        :class:`EntryConflictError` when a different node is already
        present, since the protocol never replaces primary neighbors
        during joins.
        """
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        current = self._entries.get((level, digit))
        if current is not None and current[0] != node:
            raise EntryConflictError(
                f"({level},{digit}) of {self.owner} holds {current[0]}, "
                f"refusing to overwrite with {node}"
            )
        self._entries[(level, digit)] = (node, state)
        self._snapshot = None

    def set_state(self, level: int, digit: int, state: NeighborState) -> None:
        """Update the recorded state of a filled entry."""
        cell = self._entries.get((level, digit))
        if cell is None:
            raise KeyError(f"entry ({level},{digit}) is empty")
        self._entries[(level, digit)] = (cell[0], state)
        self._snapshot = None

    def replace_entry(
        self,
        level: int,
        digit: int,
        node: NodeId,
        state: NeighborState,
    ) -> Optional[NodeId]:
        """Overwrite ``(level, digit)`` with ``node``, returning the
        previous occupant.

        Used by the leave/failure-recovery protocols, which substitute
        a departed primary neighbor with another member of the same
        suffix class -- the only situation where the join protocol's
        fill-only discipline is relaxed.
        """
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        previous = self.get(level, digit)
        self._entries[(level, digit)] = (node, state)
        self._snapshot = None
        return previous

    def clear_entry(self, level: int, digit: int) -> Optional[NodeId]:
        """Empty ``(level, digit)``, returning the previous occupant.

        Used when the last member of an entry's suffix class departs.
        """
        self._check_position(level, digit)
        cell = self._entries.pop((level, digit), None)
        self._snapshot = None
        return cell[0] if cell is not None else None

    def positions_of(self, node: NodeId) -> List[Tuple[int, int]]:
        """All ``(level, digit)`` positions currently holding ``node``."""
        return [
            position
            for position, (occupant, _) in self._entries.items()
            if occupant == node
        ]

    # -- reverse neighbors ---------------------------------------------

    def add_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Record that ``node`` has us as its ``(level, digit)`` primary
        neighbor (the paper's ``R_x(i, j)``)."""
        self._check_position(level, digit)
        self._reverse.setdefault((level, digit), set()).add(node)

    def remove_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Forget that ``node`` points at us at ``(level, digit)``."""
        bucket = self._reverse.get((level, digit))
        if bucket is not None:
            bucket.discard(node)
            if not bucket:
                del self._reverse[(level, digit)]

    def remove_reverse_everywhere(self, node: NodeId) -> None:
        """Forget ``node`` from every reverse-neighbor set (it left)."""
        for position in list(self._reverse):
            self.remove_reverse(position[0], position[1], node)

    def reverse_positions(self) -> List[Tuple[int, int]]:
        """Positions with at least one reverse neighbor recorded."""
        return sorted(self._reverse)

    def reverse_neighbors(self, level: int, digit: int) -> Set[NodeId]:
        """Nodes recorded as pointing at us at ``(level, digit)`` (copy)."""
        return set(self._reverse.get((level, digit), ()))

    def all_reverse_neighbors(self) -> Set[NodeId]:
        """Every recorded reverse neighbor, excluding the owner."""
        out: Set[NodeId] = set()
        for bucket in self._reverse.values():
            out |= bucket
        out.discard(self.owner)
        return out

    # -- iteration / snapshots ------------------------------------------

    def entries(self) -> Iterator[TableEntry]:
        """All filled entries (order deterministic: by position)."""
        return iter(self.snapshot())

    def entries_at_level(self, level: int) -> List[TableEntry]:
        """Filled entries at ``level``, in digit order."""
        out = []
        for digit in range(self.base):
            cell = self._entries.get((level, digit))
            if cell is not None:
                out.append(TableEntry(level, digit, cell[0], cell[1]))
        return out

    def filled_count(self) -> int:
        """Number of filled entries."""
        return len(self._entries)

    def distinct_neighbors(self) -> Set[NodeId]:
        """The distinct nodes stored anywhere in the table."""
        return {node for node, _ in self._entries.values()}

    def snapshot(self) -> TableSnapshot:
        """Immutable copy of the filled entries, for message payloads.

        The tuple is cached between mutations; callers receive the same
        object, which is safe because snapshots are immutable.
        """
        cached = self._snapshot
        if cached is None:
            entries = self._entries
            cached = tuple(
                TableEntry(level, digit, *entries[(level, digit)])
                for (level, digit) in sorted(entries)
            )
            self._snapshot = cached
        return cached

    def snapshot_levels(self, low: int, high: int) -> TableSnapshot:
        """Entries with ``low <= level <= high`` (Section 6.2 reduction:
        a JoinNotiMsg only needs levels noti_level..csuf)."""
        return tuple(
            entry for entry in self.snapshot() if low <= entry.level <= high
        )

    def __len__(self) -> int:
        return len(self._entries)


def format_table(table: NeighborTable, only_levels: Optional[int] = None) -> str:
    """Render a table in the style of the paper's Figure 1.

    Levels are printed highest first; each cell shows the neighbor's ID
    (with the entry's desired suffix to the right of the grid implied by
    the row/column position).  Empty cells are dashes.
    """
    owner = table.owner
    levels = table.num_levels if only_levels is None else only_levels
    width = owner.num_digits
    header_cells = " ".join(
        f"level {i}".center(width + 4) for i in range(levels - 1, -1, -1)
    )
    lines = [f"Neighbor table of node {owner}  (b={table.base}, d={table.num_levels})"]
    lines.append("     " + header_cells)
    for digit in range(table.base):
        row = []
        for level in range(levels - 1, -1, -1):
            node = table.get(level, digit)
            cell = str(node) if node is not None else "-" * width
            marker = "*" if node == owner else " "
            row.append(f"{cell}{marker}".center(width + 4))
        lines.append(f"  {digit:>2} " + " ".join(row))
    return "\n".join(lines)
