"""The neighbor table (Section 2.1).

A table has ``d`` levels of ``b`` entries.  The ``(i, j)``-entry of
node ``x`` may hold a node whose ID shares the rightmost ``i`` digits
with ``x.ID`` and whose ``i``-th digit is ``j`` (we keep one *primary*
neighbor per entry, as in Section 3's simplification).  The table also
tracks reverse neighbors: ``x`` is a reverse ``(i, j)``-neighbor of
``y`` iff ``y`` is the primary ``(i, j)``-neighbor of ``x``.

Storage is a flat ``d*b`` array: cell ``level*b + digit`` holds the
neighbor (or ``None``) in one list, its state in a parallel
``bytearray``, and a sorted list of filled flat indices makes snapshot
iteration order-deterministic without re-sorting.  Compared with the
previous ``Dict[(level, digit), (NodeId, state)]`` sparse dict this
drops per-entry tuple boxes and key hashing from the hot path — at
100k nodes the tables are the biggest resident structure, and reads
(``get``) become a single index.  The dict implementation is retained
as :class:`repro.perf.baseline.DictNeighborTable` for property-testing
equivalence.

The join protocol only ever fills empty entries, and
:meth:`NeighborTable.set_entry` enforces that (overwriting with a
*different* node raises, catching protocol bugs early).
:meth:`NeighborTable.fill_empty` is the trusted fast path for protocol
call sites that have already established emptiness and the suffix
constraint (they derive ``(level, digit)`` from ``csuf`` directly).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ids.digits import NodeId
from repro.routing.entry import NeighborState, TableEntry

Position = Tuple[int, int]

#: A snapshot of the filled entries of a table, as carried inside
#: protocol messages (CpRlyMsg, JoinWaitRlyMsg, JoinNotiMsg, ...).
TableSnapshot = Tuple[TableEntry, ...]

#: State byte codes of the flat array: 0 = empty cell.
_STATE_FROM_CODE = (None, NeighborState.T, NeighborState.S)

# Hot-path aliases: ``tuple.__new__(TableEntry, (...))`` builds an
# entry without entering the namedtuple's Python-level ``__new__``
# (about 2x faster, and the mutators below run once per table write in
# the whole simulation); ``_STATE_T`` saves the enum attribute hop in
# the same mutators.
_new_entry = tuple.__new__
_STATE_T = NeighborState.T


class EntryConflictError(RuntimeError):
    """An attempt to overwrite a filled entry with a different node."""


class NeighborTable:
    """Flat-array ``d x b`` neighbor table with reverse-neighbor tracking."""

    __slots__ = (
        "owner", "base", "num_levels", "_cells", "_states", "_positions",
        "_entries", "_reverse", "_snapshot", "_version",
    )

    def __init__(self, owner: NodeId):
        self.owner = owner
        self.base = owner.base
        self.num_levels = owner.num_digits
        size = self.base * self.num_levels
        #: Flat cells: ``_cells[level*base + digit]`` is the neighbor.
        self._cells: List[Optional[NodeId]] = [None] * size
        #: Parallel state bytes (0 empty, 1 = T, 2 = S).
        self._states = bytearray(size)
        #: Sorted flat indices of filled cells (snapshot order).
        self._positions: List[int] = []
        #: :class:`TableEntry` objects parallel to ``_positions`` —
        #: each mutator patches the one affected slot, so the snapshot
        #: tuple below is a plain C-level copy with no per-entry work
        #: (tables mutate one cell at a time but are snapshot whole on
        #: every table-carrying send).
        self._entries: List[TableEntry] = []
        #: Reverse neighbors keyed by flat index (buckets are removed
        #: when emptied — no tombstones survive departures).
        self._reverse: Dict[int, Set[NodeId]] = {}
        # Cached position-sorted snapshot tuple; every table-carrying
        # message (CpRlyMsg, JoinWaitRlyMsg, JoinNotiMsg, ...) takes a
        # snapshot, and between mutations they are all identical, so
        # tuple construction is paid once per table change.
        self._snapshot: Optional[TableSnapshot] = None
        #: Bumped on every entry/state mutation; the incremental
        #: consistency checker uses it as a dirty marker.
        self._version = 0

    # -- basic access -------------------------------------------------

    def get(self, level: int, digit: int) -> Optional[NodeId]:
        """The paper's ``N_x(i, j)`` (None when the entry is empty)."""
        return self._cells[level * self.base + digit]

    def state(self, level: int, digit: int) -> Optional[NeighborState]:
        """``N_x(i, j).state``, or None when the entry is empty."""
        return _STATE_FROM_CODE[self._states[level * self.base + digit]]

    def is_empty(self, level: int, digit: int) -> bool:
        """True iff the ``(level, digit)``-entry is unfilled."""
        return self._cells[level * self.base + digit] is None

    @property
    def version(self) -> int:
        """Mutation counter (entry and state changes; not reverse sets)."""
        return self._version

    def _check_position(self, level: int, digit: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= digit < self.base:
            raise ValueError(f"digit {digit} out of range")

    def _check_suffix(self, level: int, digit: int, node: NodeId) -> None:
        if node.csuf_len(self.owner) < level or node.digit(level) != digit:
            raise ValueError(
                f"{node} does not satisfy the ({level},{digit})-entry "
                f"suffix constraint of {self.owner}"
            )

    def set_entry(
        self,
        level: int,
        digit: int,
        node: NodeId,
        state: NeighborState,
    ) -> None:
        """Fill ``(level, digit)`` with ``node``.

        Idempotent for the same node (the state is updated); raises
        :class:`EntryConflictError` when a different node is already
        present, since the protocol never replaces primary neighbors
        during joins.
        """
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        idx = level * self.base + digit
        current = self._cells[idx]
        if current is not None and current != node:
            raise EntryConflictError(
                f"({level},{digit}) of {self.owner} holds {current}, "
                f"refusing to overwrite with {node}"
            )
        i = bisect_left(self._positions, idx)
        entry = _new_entry(TableEntry, (level, digit, node, state))
        if current is None:
            self._positions.insert(i, idx)
            self._entries.insert(i, entry)
        else:
            self._entries[i] = entry
        self._cells[idx] = node
        self._states[idx] = 1 if state is NeighborState.T else 2
        self._snapshot = None
        self._version += 1

    def fill_empty(
        self,
        level: int,
        digit: int,
        node: NodeId,
        state: NeighborState,
    ) -> None:
        """Trusted fill of a known-empty entry (protocol hot path).

        Callers must have established both that the entry is empty and
        that ``node`` satisfies the suffix constraint — which the join
        protocol's fill sites do structurally, deriving ``(level,
        digit)`` from ``csuf(node, owner)`` right before calling.
        """
        idx = level * self.base + digit
        i = bisect_left(self._positions, idx)
        self._positions.insert(i, idx)
        self._entries.insert(
            i, _new_entry(TableEntry, (level, digit, node, state))
        )
        self._cells[idx] = node
        self._states[idx] = 1 if state is _STATE_T else 2
        self._snapshot = None
        self._version += 1

    def load_sorted(self, items: "List[TableEntry]") -> None:
        """Trusted bulk fill of an *empty* table (oracle setup path).

        ``items`` must be :class:`TableEntry` objects in strictly
        ascending ``(level, digit)`` order with valid positions and
        suffixes — exactly how
        :func:`repro.routing.oracle.build_consistent_tables` emits
        them — so the sorted structures are plain appends with no
        per-entry bisect or checks, and the entries are stored as
        given.
        """
        if self._positions:
            raise RuntimeError("load_sorted requires an empty table")
        base = self.base
        cells = self._cells
        states = self._states
        append_pos = self._positions.append
        t_state = NeighborState.T
        for entry in items:
            level, digit, node, state = entry
            idx = level * base + digit
            append_pos(idx)
            cells[idx] = node
            states[idx] = 1 if state is t_state else 2
        self._entries.extend(items)
        self._snapshot = None
        self._version += 1

    def load_reverse(self, acc: Dict[int, Set[NodeId]]) -> None:
        """Trusted wholesale install of reverse-neighbor sets keyed by
        flat index (oracle setup path).

        ``acc`` must have exactly the shape repeated
        :meth:`add_reverse` calls would build — every key a valid flat
        position, every bucket non-empty — which the oracle guarantees
        by accumulating keys straight off just-built primary entries.
        """
        self._reverse = acc

    def set_state(self, level: int, digit: int, state: NeighborState) -> None:
        """Update the recorded state of a filled entry."""
        idx = level * self.base + digit
        node = self._cells[idx]
        if node is None:
            raise KeyError(f"entry ({level},{digit}) is empty")
        i = bisect_left(self._positions, idx)
        self._entries[i] = _new_entry(TableEntry, (level, digit, node, state))
        self._states[idx] = 1 if state is _STATE_T else 2
        self._snapshot = None
        self._version += 1

    def replace_entry(
        self,
        level: int,
        digit: int,
        node: NodeId,
        state: NeighborState,
    ) -> Optional[NodeId]:
        """Overwrite ``(level, digit)`` with ``node``, returning the
        previous occupant.

        Used by the leave/failure-recovery protocols, which substitute
        a departed primary neighbor with another member of the same
        suffix class -- the only situation where the join protocol's
        fill-only discipline is relaxed.
        """
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        idx = level * self.base + digit
        previous = self._cells[idx]
        i = bisect_left(self._positions, idx)
        entry = _new_entry(TableEntry, (level, digit, node, state))
        if previous is None:
            self._positions.insert(i, idx)
            self._entries.insert(i, entry)
        else:
            self._entries[i] = entry
        self._cells[idx] = node
        self._states[idx] = 1 if state is NeighborState.T else 2
        self._snapshot = None
        self._version += 1
        return previous

    def clear_entry(self, level: int, digit: int) -> Optional[NodeId]:
        """Empty ``(level, digit)``, returning the previous occupant.

        Used when the last member of an entry's suffix class departs.
        """
        self._check_position(level, digit)
        idx = level * self.base + digit
        previous = self._cells[idx]
        if previous is not None:
            self._cells[idx] = None
            self._states[idx] = 0
            i = bisect_left(self._positions, idx)
            del self._positions[i]
            del self._entries[i]
            self._snapshot = None
            self._version += 1
        return previous

    def positions_of(self, node: NodeId) -> List[Tuple[int, int]]:
        """All ``(level, digit)`` positions currently holding ``node``
        (in position order)."""
        base = self.base
        cells = self._cells
        return [
            divmod(idx, base) for idx in self._positions
            if cells[idx] == node
        ]

    # -- reverse neighbors ---------------------------------------------

    def add_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Record that ``node`` has us as its ``(level, digit)`` primary
        neighbor (the paper's ``R_x(i, j)``)."""
        # Bounds check inlined: this runs once per table fill anywhere
        # in the network (oracle setup plus every protocol fill).
        if not (0 <= level < self.num_levels and 0 <= digit < self.base):
            self._check_position(level, digit)
        idx = level * self.base + digit
        bucket = self._reverse.get(idx)
        if bucket is None:
            self._reverse[idx] = {node}
        else:
            bucket.add(node)

    def remove_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Forget that ``node`` points at us at ``(level, digit)``."""
        idx = level * self.base + digit
        bucket = self._reverse.get(idx)
        if bucket is not None:
            bucket.discard(node)
            if not bucket:
                del self._reverse[idx]

    def remove_reverse_everywhere(self, node: NodeId) -> None:
        """Forget ``node`` from every reverse-neighbor set (it left)."""
        for idx in list(self._reverse):
            bucket = self._reverse[idx]
            bucket.discard(node)
            if not bucket:
                del self._reverse[idx]

    def reverse_positions(self) -> List[Tuple[int, int]]:
        """Positions with at least one reverse neighbor recorded."""
        base = self.base
        return [divmod(idx, base) for idx in sorted(self._reverse)]

    def reverse_neighbors(self, level: int, digit: int) -> Set[NodeId]:
        """Nodes recorded as pointing at us at ``(level, digit)`` (copy)."""
        return set(self._reverse.get(level * self.base + digit, ()))

    def all_reverse_neighbors(self) -> Set[NodeId]:
        """Every recorded reverse neighbor, excluding the owner."""
        out: Set[NodeId] = set()
        for bucket in self._reverse.values():
            out |= bucket
        out.discard(self.owner)
        return out

    # -- iteration / snapshots ------------------------------------------

    def entries(self) -> Iterator[TableEntry]:
        """All filled entries (order deterministic: by position)."""
        return iter(self.snapshot())

    def entries_at_level(self, level: int) -> List[TableEntry]:
        """Filled entries at ``level``, in digit order."""
        base = self.base
        cells = self._cells
        states = self._states
        out = []
        for digit in range(base):
            idx = level * base + digit
            node = cells[idx]
            if node is not None:
                out.append(
                    TableEntry(level, digit, node, _STATE_FROM_CODE[states[idx]])
                )
        return out

    def filled_count(self) -> int:
        """Number of filled entries."""
        return len(self._positions)

    def distinct_neighbors(self) -> Set[NodeId]:
        """The distinct nodes stored anywhere in the table."""
        cells = self._cells
        return {cells[idx] for idx in self._positions}

    def snapshot(self) -> TableSnapshot:
        """Immutable copy of the filled entries, for message payloads.

        The tuple is cached between mutations; callers receive the same
        object, which is safe because snapshots are immutable.
        """
        cached = self._snapshot
        if cached is None:
            cached = tuple(self._entries)
            self._snapshot = cached
        return cached

    def snapshot_levels(self, low: int, high: int) -> TableSnapshot:
        """Entries with ``low <= level <= high`` (Section 6.2 reduction:
        a JoinNotiMsg only needs levels noti_level..csuf)."""
        return tuple(
            entry for entry in self.snapshot() if low <= entry.level <= high
        )

    def __len__(self) -> int:
        return len(self._positions)


def format_table(table: NeighborTable, only_levels: Optional[int] = None) -> str:
    """Render a table in the style of the paper's Figure 1.

    Levels are printed highest first; each cell shows the neighbor's ID
    (with the entry's desired suffix to the right of the grid implied by
    the row/column position).  Empty cells are dashes.
    """
    owner = table.owner
    levels = table.num_levels if only_levels is None else only_levels
    width = owner.num_digits
    header_cells = " ".join(
        f"level {i}".center(width + 4) for i in range(levels - 1, -1, -1)
    )
    lines = [f"Neighbor table of node {owner}  (b={table.base}, d={table.num_levels})"]
    lines.append("     " + header_cells)
    for digit in range(table.base):
        row = []
        for level in range(levels - 1, -1, -1):
            node = table.get(level, digit)
            cell = str(node) if node is not None else "-" * width
            marker = "*" if node == owner else " "
            row.append(f"{cell}{marker}".center(width + 4))
        lines.append(f"  {digit:>2} " + " ".join(row))
    return "\n".join(lines)
