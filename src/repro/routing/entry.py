"""Neighbor table entries and neighbor states.

Each filled entry records a neighbor and the state the owner believes
that neighbor is in: ``S`` (an S-node, status *in_system*) or ``T``
(still joining).  See Section 4 of the paper.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.ids.digits import NodeId


class NeighborState(enum.Enum):
    """The owner's view of a neighbor's join status."""

    T = "T"
    S = "S"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


class TableEntry(NamedTuple):
    """One filled ``(i, j)`` entry: position, neighbor, and state."""

    level: int
    digit: int
    node: NodeId
    state: NeighborState
