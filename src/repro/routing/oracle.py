"""Oracle construction of consistent neighbor tables.

Given the full membership ``V``, build tables satisfying Definition 3.8
directly: the ``(i, j)``-entry of ``x`` holds some node of
``V_{j . x[i-1]...x[0]}`` when that suffix set is non-empty (``x``
itself when ``j == x[i]``) and is null otherwise.  Reverse-neighbor
sets are populated to match.

Experiments use this to create the initial consistent network
``<V, N(V)>`` that joining nodes enter; tests cross-validate it against
the protocol-built network of Section 6.1.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ids.digits import PACKED_DIGIT_BITS, PACKED_DIGIT_MASK, NodeId
from repro.routing.entry import NeighborState, TableEntry
from repro.routing.table import NeighborTable

Suffix = Tuple[int, ...]


def build_consistent_tables(
    nodes: Iterable[NodeId],
    rng: Optional[random.Random] = None,
) -> Dict[NodeId, NeighborTable]:
    """Build consistent tables for ``nodes`` from global knowledge.

    When ``rng`` is given, each entry picks a uniformly random member of
    the eligible suffix set (mimicking tables formed by arbitrary join
    orders); otherwise the numerically smallest member is used, which is
    deterministic.

    Suffix sets are bucketed by *packed* length-tagged suffix keys
    (``(k << d*w) | suffix`` int arithmetic, see
    :mod:`repro.ids.packed`) and entries land via the trusted
    :meth:`~repro.routing.table.NeighborTable.fill_empty` — with 10⁵
    members this constructor is a large fraction of ``bench_scale``'s
    setup time, and the suffix-tuple dict it replaces allocated one
    tuple per (node, level, digit).  Bucket order, entry choice and the
    ``rng`` call sequence are unchanged from the tuple-keyed version,
    so fixed-seed networks are identical.
    """
    members: List[NodeId] = list(nodes)
    if not members:
        raise ValueError("V must be non-empty (assumption (i))")
    base = members[0].base
    num_digits = members[0].num_digits
    for node in members:
        if node.base != base or node.num_digits != num_digits:
            raise ValueError("all nodes must share one ID space")
    if len(set(members)) != len(members):
        raise ValueError("node IDs must be unique")

    w = PACKED_DIGIT_BITS
    tag_shift = num_digits * w
    suffix_masks = tuple((1 << (k * w)) - 1 for k in range(num_digits + 1))

    by_suffix: Dict[int, List[NodeId]] = {}
    # Non-empty extensions per parent suffix: parent key -> sorted
    # [(digit, child key)].  The fill loop below visits only these,
    # skipping the (vast, at scale) majority of (level, digit) probes
    # whose suffix class is empty -- while preserving the original
    # probe order (digit-ascending per level), so the ``rng`` call
    # sequence and therefore the built network are unchanged.
    extensions: Dict[int, List[Tuple[int, int]]] = {}
    for node in members:
        packed = node._packed
        for k in range(num_digits + 1):
            key = (k << tag_shift) | (packed & suffix_masks[k])
            bucket = by_suffix.get(key)
            if bucket is None:
                by_suffix[key] = [node]
                if k:
                    level_shift = (k - 1) * w
                    parent = ((k - 1) << tag_shift) | (
                        packed & suffix_masks[k - 1]
                    )
                    digit = (packed >> level_shift) & PACKED_DIGIT_MASK
                    ext = extensions.get(parent)
                    if ext is None:
                        extensions[parent] = [(digit, key)]
                    else:
                        ext.append((digit, key))
            else:
                bucket.append(node)
    for ext in extensions.values():
        ext.sort()
    min_of: Dict[int, NodeId] = (
        {key: min(bucket) for key, bucket in by_suffix.items()}
        if rng is None
        else {}
    )

    tables: Dict[NodeId, NeighborTable] = {
        node: NeighborTable(node) for node in members
    }

    s_state = NeighborState.S
    new_entry = tuple.__new__
    randrange = rng.randrange if rng is not None else None
    # Reverse-neighbor sets accumulate here (flat index -> pointers)
    # and are installed wholesale at the end: one dict probe per
    # cross-table pointer instead of an ``add_reverse`` method call
    # with its bounds check -- the pointers outnumber the nodes by the
    # average table fill, so this is a large share of construction.
    # Keyed by the neighbor's packed form (unique within the space):
    # int hashing stays in C, NodeId hashing is a method call.
    reverse_acc: Dict[int, Dict[int, set]] = {
        node._packed: {} for node in members
    }
    for node in members:
        packed = node._packed
        # Levels ascend and extension lists are digit-sorted, so the
        # entries accumulate in exactly the sorted order load_sorted
        # requires — one bulk append pass instead of 10⁶ fill calls.
        items: List[TableEntry] = []
        add_item = items.append
        for level in range(num_digits):
            level_shift = level * w
            own_digit = (packed >> level_shift) & PACKED_DIGIT_MASK
            parent = (level << tag_shift) | (packed & suffix_masks[level])
            for digit, key in extensions[parent]:
                if digit == own_digit:
                    add_item(
                        new_entry(TableEntry, (level, digit, node, s_state))
                    )
                    continue
                bucket = by_suffix[key]
                if randrange is None:
                    neighbor = min_of[key]
                else:
                    neighbor = bucket[randrange(len(bucket))]
                add_item(
                    new_entry(TableEntry, (level, digit, neighbor, s_state))
                )
                acc = reverse_acc[neighbor._packed]
                ridx = level * base + digit
                rbucket = acc.get(ridx)
                if rbucket is None:
                    acc[ridx] = {node}
                else:
                    rbucket.add(node)
        tables[node].load_sorted(items)
    for node in members:
        acc = reverse_acc[node._packed]
        if acc:
            # Trusted install (same shape add_reverse builds): every
            # position came off a just-built primary entry.
            tables[node].load_reverse(acc)
    return tables
