"""Oracle construction of consistent neighbor tables.

Given the full membership ``V``, build tables satisfying Definition 3.8
directly: the ``(i, j)``-entry of ``x`` holds some node of
``V_{j . x[i-1]...x[0]}`` when that suffix set is non-empty (``x``
itself when ``j == x[i]``) and is null otherwise.  Reverse-neighbor
sets are populated to match.

Experiments use this to create the initial consistent network
``<V, N(V)>`` that joining nodes enter; tests cross-validate it against
the protocol-built network of Section 6.1.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ids.digits import NodeId
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable

Suffix = Tuple[int, ...]


def build_consistent_tables(
    nodes: Iterable[NodeId],
    rng: Optional[random.Random] = None,
) -> Dict[NodeId, NeighborTable]:
    """Build consistent tables for ``nodes`` from global knowledge.

    When ``rng`` is given, each entry picks a uniformly random member of
    the eligible suffix set (mimicking tables formed by arbitrary join
    orders); otherwise the numerically smallest member is used, which is
    deterministic.
    """
    members: List[NodeId] = list(nodes)
    if not members:
        raise ValueError("V must be non-empty (assumption (i))")
    base = members[0].base
    num_digits = members[0].num_digits
    for node in members:
        if node.base != base or node.num_digits != num_digits:
            raise ValueError("all nodes must share one ID space")
    if len(set(members)) != len(members):
        raise ValueError("node IDs must be unique")

    by_suffix: Dict[Suffix, List[NodeId]] = {}
    for node in members:
        for k in range(num_digits + 1):
            by_suffix.setdefault(node.suffix(k), []).append(node)
    min_of: Dict[Suffix, NodeId] = (
        {suffix: min(bucket) for suffix, bucket in by_suffix.items()}
        if rng is None
        else {}
    )

    tables: Dict[NodeId, NeighborTable] = {
        node: NeighborTable(node) for node in members
    }

    for node in members:
        table = tables[node]
        for level in range(num_digits):
            shared = node.suffix(level)
            for digit in range(base):
                if digit == node.digit(level):
                    table.set_entry(level, digit, node, NeighborState.S)
                    continue
                bucket = by_suffix.get(shared + (digit,))
                if not bucket:
                    continue
                if rng is None:
                    neighbor = min_of[shared + (digit,)]
                else:
                    neighbor = bucket[rng.randrange(len(bucket))]
                table.set_entry(level, digit, neighbor, NeighborState.S)
                tables[neighbor].add_reverse(level, digit, node)
    return tables
