"""Routing-locality metrics: route latency and stretch.

*Stretch* is the paper's P2 metric: the ratio between the network
distance a query actually travels (sum of per-hop latencies along the
route) and the direct distance between its endpoints.  Meaningful with
a deterministic latency model (the transit-stub topology); the
uniform-jitter model has no geometry to stretch against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class StretchReport:
    """Stretch statistics over sampled routed pairs."""

    pairs: int
    mean_stretch: float
    max_stretch: float
    mean_route_latency: float
    mean_direct_latency: float


def measure_stretch(
    network,
    sample_pairs: int = 200,
    rng: Optional[random.Random] = None,
) -> StretchReport:
    """Route between sampled member pairs and compare path latency to
    the direct latency between the endpoints."""
    if rng is None:
        rng = random.Random(0)
    members = network.member_ids()
    if len(members) < 2:
        raise ValueError("need at least two members")
    model = network.latency_model
    stretches: List[float] = []
    route_latencies: List[float] = []
    direct_latencies: List[float] = []
    for _ in range(sample_pairs):
        source, target = rng.sample(members, 2)
        result = network.route(source, target)
        if not result.success:
            raise RuntimeError(f"route {source} -> {target} failed")
        hop_latency = sum(
            model.latency(a, b)
            for a, b in zip(result.path, result.path[1:])
        )
        direct = model.latency(source, target)
        route_latencies.append(hop_latency)
        direct_latencies.append(direct)
        stretches.append(hop_latency / direct if direct > 0 else 1.0)
    return StretchReport(
        pairs=len(stretches),
        mean_stretch=sum(stretches) / len(stretches),
        max_stretch=max(stretches),
        mean_route_latency=sum(route_latencies) / len(route_latencies),
        mean_direct_latency=sum(direct_latencies) / len(direct_latencies),
    )
