"""Messages of the table-optimization protocol."""

from __future__ import annotations

from typing import Tuple

from repro.ids.digits import NodeId
from repro.network.message import HEADER_BYTES, NODE_REF_BYTES, Message

Suffix = Tuple[int, ...]


class OptFindMsg(Message):
    """'Send me the members you know of the suffix class ``suffix``'.

    Sent to the current occupant of an entry; the occupant belongs to
    the class and its higher table levels enumerate the other members
    it knows.
    """

    __slots__ = ("suffix",)
    type_name = "OptFindMsg"

    def __init__(self, sender: NodeId, suffix: Suffix):
        super().__init__(sender)
        self.suffix = tuple(suffix)

    def size_bytes(self) -> int:
        """Wire size: header plus the suffix digits."""
        return HEADER_BYTES + len(self.suffix)


class OptFindRlyMsg(Message):
    """Class members known to the receiver of the OptFindMsg."""

    __slots__ = ("suffix", "candidates")
    type_name = "OptFindRlyMsg"

    def __init__(
        self, sender: NodeId, suffix: Suffix, candidates: Tuple[NodeId, ...]
    ):
        super().__init__(sender)
        self.suffix = tuple(suffix)
        self.candidates = candidates

    def size_bytes(self) -> int:
        """Wire size: header, suffix, and one reference per candidate."""
        return (
            HEADER_BYTES
            + len(self.suffix)
            + NODE_REF_BYTES * len(self.candidates)
        )
