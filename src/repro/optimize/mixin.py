"""Per-node optimization logic, mixed into ProtocolNode.

RTT measurement rides on the recovery package's PingMsg/PongMsg with a
dedicated token (:data:`MEASURE`); the
:meth:`repro.recovery.mixin.RecoveryMixin._on_measured_pong` hook
routes those pongs here.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.ids.digits import NodeId
from repro.optimize.messages import OptFindMsg, OptFindRlyMsg
from repro.recovery.messages import PingMsg, PongMsg

Position = Tuple[int, int]

#: Ping token for RTT measurement (recovery uses 0 and 1).
MEASURE = 2


class OptimizationMixin:
    """Nearest-neighbor entry optimization, one node's share."""

    def _init_optimization(self) -> None:
        # position -> (best RTT seen, best candidate)
        self._opt_best: Dict[Position, Tuple[float, NodeId]] = {}
        self._opt_measured: Set[NodeId] = set()
        self.optimization_switches = 0
        # First instance of the class registers for all (class-shared
        # handler table, see NetworkNode._class_handlers).
        if OptFindMsg not in self._handlers:
            self.handles(OptFindMsg, self._on_opt_find)
            self.handles(OptFindRlyMsg, self._on_opt_find_rly)

    def begin_optimization_round(self) -> None:
        """Ask each entry's occupant for its suffix-class members."""
        self._opt_best = {}
        self._opt_measured = set()
        for entry in self.table.entries():
            if entry.node == self.node_id:
                continue
            suffix = self.node_id.suffix(entry.level) + (entry.digit,)
            self.send(entry.node, OptFindMsg(self.node_id, suffix))

    def _on_opt_find(self, msg: OptFindMsg) -> None:
        suffix = msg.suffix
        candidates = []
        if self.node_id.has_suffix(suffix):
            candidates.append(self.node_id)
        for neighbor in self.table.distinct_neighbors():
            if (
                neighbor.has_suffix(suffix)
                and neighbor != msg.sender
                and neighbor not in candidates
            ):
                candidates.append(neighbor)
        self.send(
            msg.sender,
            OptFindRlyMsg(self.node_id, suffix, tuple(candidates)),
        )

    def _on_opt_find_rly(self, msg: OptFindRlyMsg) -> None:
        for candidate in msg.candidates:
            if candidate == self.node_id or candidate in self._opt_measured:
                continue
            self._opt_measured.add(candidate)
            self.send(
                candidate, PingMsg(self.node_id, self.now, token=MEASURE)
            )

    def _on_measured_pong(self, msg: PongMsg) -> None:
        rtt = self.now - msg.sent_at
        candidate = msg.sender
        for entry in self.table.entries():
            if entry.node == self.node_id:
                continue
            suffix = self.node_id.suffix(entry.level) + (entry.digit,)
            if not candidate.has_suffix(suffix):
                continue
            position = (entry.level, entry.digit)
            best = self._opt_best.get(position)
            if best is None or rtt < best[0]:
                self._opt_best[position] = (rtt, candidate)

    def finalize_optimization_round(self) -> int:
        """Switch each entry to its best measured candidate.  Returns
        the number of entries switched."""
        from repro.protocol.messages import RvNghDropMsg, RvNghNotiMsg
        from repro.routing.entry import NeighborState

        switches = 0
        for position, (_rtt, candidate) in self._opt_best.items():
            level, digit = position
            current = self.table.get(level, digit)
            if current is None or current == candidate:
                continue
            self.table.replace_entry(
                level, digit, candidate, NeighborState.S
            )
            self.send(
                candidate,
                RvNghNotiMsg(self.node_id, level, digit, NeighborState.S),
            )
            self.send(current, RvNghDropMsg(self.node_id, level, digit))
            switches += 1
        self.optimization_switches += switches
        self._opt_best = {}
        return switches
