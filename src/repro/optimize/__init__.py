"""Neighbor-table optimization (the paper's problem 3).

The join protocol deliberately relaxes the *optimal* (nearest-
neighbor) table assumption of PRR and guarantees only consistency;
the paper points to [2, 5] for "methods of exploiting node proximity
and optimizing neighbor tables" and lists table optimization as future
work.  This package supplies that protocol:

* each node asks the occupant of every entry for the other members of
  that entry's suffix class (the occupant knows them: they sit at the
  higher levels of its own table);
* candidates are RTT-measured with timestamped pings;
* the entry's primary switches to the nearest measured member --
  staying inside the class, so Definition 3.8 consistency is untouched
  (tests assert it); reverse-neighbor records follow via
  RvNghNotiMsg / RvNghDropMsg;
* rounds repeat until no entry switches (a local optimum of the
  nearest-neighbor objective).

The payoff is property P2 (routing locality): measured route *stretch*
on the transit-stub topology drops markedly
(``benchmarks/bench_optimization.py``).
"""

from repro.optimize.driver import (
    OptimizationReport,
    optimize_tables,
)
from repro.optimize.messages import OptFindMsg, OptFindRlyMsg
from repro.optimize.metrics import measure_stretch

__all__ = [
    "OptFindMsg",
    "OptFindRlyMsg",
    "OptimizationReport",
    "measure_stretch",
    "optimize_tables",
]
