"""Round-based optimization driver and report."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OptimizationReport:
    """Outcome of an optimization run."""

    rounds: int = 0
    total_switches: int = 0
    converged: bool = False

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"rounds={self.rounds} switches={self.total_switches} "
            f"converged={self.converged}"
        )


def optimize_tables(network, max_rounds: int = 4) -> OptimizationReport:
    """Run optimization rounds until no entry switches.

    Requires a quiescent, consistent network (run joins/leaves first).
    Consistency is preserved by construction -- replacements stay in
    the entry's suffix class -- and re-checked by callers in tests.
    """
    report = OptimizationReport()
    for _ in range(max_rounds):
        live = list(network.nodes.values())
        for node in live:
            node.begin_optimization_round()
        network.run()
        switches = 0
        for node in live:
            switches += node.finalize_optimization_round()
        network.run()  # drain RvNghNoti / RvNghDrop bookkeeping
        report.rounds += 1
        report.total_switches += switches
        if switches == 0:
            report.converged = True
            break
    return report
