"""Node statuses (Figure 3).

A joining node moves ``copying -> waiting -> notifying -> in_system``.
A node whose status is *in_system* is an **S-node**; any other status
makes it a **T-node**.  Nodes of the initial network ``V`` start (and
stay) *in_system*.
"""

from __future__ import annotations

import enum


class NodeStatus(enum.Enum):
    """A node's protocol status (Figure 3, plus extension states)."""

    COPYING = "copying"
    WAITING = "waiting"
    NOTIFYING = "notifying"
    IN_SYSTEM = "in_system"
    # Extension states (the paper's stated future work, Section 7): a
    # node executing the leave protocol, and one that has departed.
    LEAVING = "leaving"
    LEFT = "left"

    @property
    def is_s_node(self) -> bool:
        return self is NodeStatus.IN_SYSTEM

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value
