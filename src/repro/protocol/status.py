"""Node statuses (Figure 3).

A joining node moves ``copying -> waiting -> notifying -> in_system``.
A node whose status is *in_system* is an **S-node**; any other status
makes it a **T-node**.  Nodes of the initial network ``V`` start (and
stay) *in_system*.
"""

from __future__ import annotations

import enum


class NodeStatus(enum.Enum):
    """A node's protocol status (Figure 3, plus extension states)."""

    COPYING = "copying"
    WAITING = "waiting"
    NOTIFYING = "notifying"
    IN_SYSTEM = "in_system"
    # Extension states (the paper's stated future work, Section 7): a
    # node executing the leave protocol, and one that has departed.
    LEAVING = "leaving"
    LEFT = "left"

    @property
    def is_s_node(self) -> bool:
        return self is NodeStatus.IN_SYSTEM

    @property
    def is_join_phase(self) -> bool:
        """True for the Figure 3 join-lifecycle statuses (the ones the
        observability layer turns into ``phase:*`` spans)."""
        return self in JOIN_PHASES

    @property
    def phase_index(self) -> int:
        """Position in the join lifecycle (-1 for extension states).

        The join protocol only ever moves forward through
        ``copying -> waiting -> notifying -> in_system``; trace
        consumers use this to validate phase-transition ordering.
        """
        try:
            return JOIN_PHASES.index(self)
        except ValueError:
            return -1

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


#: The join lifecycle in protocol order (Figure 3).  A joining node's
#: trace must visit a prefix-free increasing subsequence of these.
JOIN_PHASES = (
    NodeStatus.COPYING,
    NodeStatus.WAITING,
    NodeStatus.NOTIFYING,
    NodeStatus.IN_SYSTEM,
)
