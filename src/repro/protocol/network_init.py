"""Network initialization (Section 6.1).

To initialize a network of ``n`` nodes: put one node ``x`` in ``V``
with a table that points only at itself, then let the other ``n - 1``
nodes join via the join protocol, each given ``x`` to begin with.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.ids.digits import NodeId
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable


def single_node_table(node_id: NodeId) -> NeighborTable:
    """The bootstrap table of Section 6.1: ``N_x(i, x[i]) = x`` with
    state ``S`` at every level, every other entry null."""
    table = NeighborTable(node_id)
    for level in range(node_id.num_digits):
        table.set_entry(
            level, node_id.digit(level), node_id, NeighborState.S
        )
    return table


def initialize_network(
    network: "JoinProtocolNetwork",
    node_ids: Sequence[NodeId],
    stagger: float = 0.0,
):
    """Bootstrap a consistent network over ``node_ids`` using only the
    join protocol.

    The first ID becomes the seed node; the rest join it, each started
    ``stagger`` time units after the previous one (``stagger=0`` means
    all joins are concurrent, as in the paper's simulations).  The
    caller still has to ``network.run()``.
    """
    if not node_ids:
        raise ValueError("need at least one node")
    seed = node_ids[0]
    network.add_s_node(seed, single_node_table(seed))
    for index, node_id in enumerate(node_ids[1:]):
        network.start_join(node_id, gateway=seed, at=index * stagger)
    return network
