"""Protocol messages (Figure 4 of the paper).

Messages that include a neighbor table carry a
:data:`~repro.routing.table.TableSnapshot` -- an immutable tuple of the
sender's filled entries (possibly level-restricted under the Section 6.2
size reduction).  ``size_bytes`` charges per included entry so the
message-size ablation can compare policies.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ids.digits import NodeId
from repro.network.message import (
    ENTRY_BYTES,
    HEADER_BYTES,
    NODE_REF_BYTES,
    Message,
)
from repro.routing.entry import NeighborState
from repro.routing.table import TableSnapshot


def snapshot_view(
    snapshot: TableSnapshot,
) -> Dict[Tuple[int, int], Tuple[NodeId, NeighborState]]:
    """Index a snapshot by ``(level, digit)`` for O(1) entry lookups."""
    return {
        (entry.level, entry.digit): (entry.node, entry.state)
        for entry in snapshot
    }


def snapshot_entry(
    snapshot: TableSnapshot, level: int, digit: int
) -> Optional[Tuple[NodeId, NeighborState]]:
    """The ``(node, state)`` at one position of a snapshot, or None.

    Snapshots are sorted by ``(level, digit)``, so this scans with an
    early exit instead of building the full :func:`snapshot_view`
    dict — the join handlers need exactly one cell per message, and
    the dict build was one of their hottest lines.
    """
    for entry in snapshot:
        entry_level = entry[0]
        if entry_level < level:
            continue
        if entry_level > level:
            return None
        entry_digit = entry[1]
        if entry_digit == digit:
            return (entry[2], entry[3])
        if entry_digit > digit:
            return None
    return None


class _TableMessage(Message):
    """Base for messages that carry a table snapshot."""

    __slots__ = ("table",)

    carries_table = True

    def __init__(self, sender: NodeId, table: TableSnapshot):
        super().__init__(sender)
        self.table = table

    def size_bytes(self) -> int:
        return HEADER_BYTES + ENTRY_BYTES * len(self.table)


class CpRstMsg(Message):
    """Request a copy of the receiver's neighbor table (copying status)."""

    __slots__ = ()
    type_name = "CpRstMsg"


class CpRlyMsg(_TableMessage):
    """Response to a :class:`CpRstMsg`, carrying the sender's table."""

    __slots__ = ()
    type_name = "CpRlyMsg"


class JoinWaitMsg(Message):
    """Sent by a joining node in status *waiting* to announce itself."""

    __slots__ = ()
    type_name = "JoinWaitMsg"


class JoinWaitRlyMsg(_TableMessage):
    """Reply to a :class:`JoinWaitMsg`.

    ``positive`` is the paper's ``r``; ``referral`` is the paper's ``u``
    (on a negative reply, the node already occupying the entry the
    joiner aimed for; on a positive reply, the joiner itself).
    """

    __slots__ = ("positive", "referral")
    type_name = "JoinWaitRlyMsg"

    def __init__(
        self,
        sender: NodeId,
        positive: bool,
        referral: NodeId,
        table: TableSnapshot,
    ):
        super().__init__(sender, table)
        self.positive = positive
        self.referral = referral

    def size_bytes(self) -> int:
        """Table payload plus the referral reference and result flag."""
        return super().size_bytes() + NODE_REF_BYTES + 1


class JoinNotiMsg(_TableMessage):
    """Sent by a joining node in status *notifying*, with its table.

    ``bit_vector_bytes`` is non-zero under the Section 6.2 policy, where
    the message also carries a fill bitmap of the sender's table.
    """

    __slots__ = ("noti_level", "bit_vector_bytes", "bitmap")
    type_name = "JoinNotiMsg"

    def __init__(
        self,
        sender: NodeId,
        table: TableSnapshot,
        noti_level: int,
        bit_vector_bytes: int = 0,
        bitmap=None,
    ):
        super().__init__(sender, table)
        self.noti_level = noti_level
        self.bit_vector_bytes = bit_vector_bytes
        self.bitmap = bitmap

    def size_bytes(self) -> int:
        """Table payload plus the Section 6.2 bit vector, if any."""
        return super().size_bytes() + self.bit_vector_bytes


class JoinNotiRlyMsg(_TableMessage):
    """Reply to a :class:`JoinNotiMsg`.

    ``positive`` is the paper's ``r`` (the receiver stored the joiner),
    ``conflict`` is the paper's ``f`` (the receiver, an S-node, saw that
    the joiner's entry for it holds some other node -- this triggers the
    SpeNotiMsg repair path).
    """

    __slots__ = ("positive", "conflict")
    type_name = "JoinNotiRlyMsg"

    def __init__(
        self,
        sender: NodeId,
        positive: bool,
        table: TableSnapshot,
        conflict: bool,
    ):
        super().__init__(sender, table)
        self.positive = positive
        self.conflict = conflict

    def size_bytes(self) -> int:
        """Table payload plus the two result flags."""
        return super().size_bytes() + 2


class InSysNotiMsg(Message):
    """Announcement that the sender's status changed to *in_system*."""

    __slots__ = ()
    type_name = "InSysNotiMsg"


class SpeNotiMsg(Message):
    """Special notification: informs the receiver of node ``subject``.

    ``origin`` is the joining node that initiated the repair; the
    message is forwarded along primary-neighbor pointers until some node
    stores (or already stored) ``subject``.
    """

    __slots__ = ("origin", "subject")
    type_name = "SpeNotiMsg"

    def __init__(self, sender: NodeId, origin: NodeId, subject: NodeId):
        super().__init__(sender)
        self.origin = origin
        self.subject = subject

    def size_bytes(self) -> int:
        """Header plus the origin and subject references."""
        return HEADER_BYTES + 2 * NODE_REF_BYTES


class SpeNotiRlyMsg(Message):
    """Terminates a :class:`SpeNotiMsg` chain; sent to ``origin``."""

    __slots__ = ("origin", "subject")
    type_name = "SpeNotiRlyMsg"

    def __init__(self, sender: NodeId, origin: NodeId, subject: NodeId):
        super().__init__(sender)
        self.origin = origin
        self.subject = subject

    def size_bytes(self) -> int:
        """Header plus the origin and subject references."""
        return HEADER_BYTES + 2 * NODE_REF_BYTES


class RvNghNotiMsg(Message):
    """Sent by a node that stored the receiver as a primary neighbor.

    ``level``/``digit`` locate the entry in the *sender's* table;
    ``state`` is the state the sender recorded.
    """

    __slots__ = ("level", "digit", "state")
    type_name = "RvNghNotiMsg"

    def __init__(
        self, sender: NodeId, level: int, digit: int, state: NeighborState
    ):
        super().__init__(sender)
        self.level = level
        self.digit = digit
        self.state = state

    def size_bytes(self) -> int:
        """Header plus the entry position and state byte."""
        return HEADER_BYTES + 3


class RvNghNotiRlyMsg(Message):
    """Correction reply: the receiver recorded the wrong state for the
    sender; ``state`` is the sender's true S/T classification."""

    __slots__ = ("level", "digit", "state")
    type_name = "RvNghNotiRlyMsg"

    def __init__(
        self, sender: NodeId, level: int, digit: int, state: NeighborState
    ):
        super().__init__(sender)
        self.level = level
        self.digit = digit
        self.state = state

    def size_bytes(self) -> int:
        """Header plus the entry position and state byte."""
        return HEADER_BYTES + 3


class RvNghDropMsg(Message):
    """Sent by a node that *stopped* pointing at the receiver at
    ``(level, digit)`` -- the neighbor-table optimization protocol
    switches primaries, and reverse-neighbor records must follow.
    (The join protocol itself never needs this: it only fills empty
    entries.)"""

    __slots__ = ("level", "digit")
    type_name = "RvNghDropMsg"

    def __init__(self, sender: NodeId, level: int, digit: int):
        super().__init__(sender)
        self.level = level
        self.digit = digit

    def size_bytes(self) -> int:
        """Header plus the entry position."""
        return HEADER_BYTES + 2


#: The paper's "big" message types (Section 5.2): those whose exchange
#: involves a table copy.
BIG_MESSAGE_TYPES = ("CpRstMsg", "JoinWaitMsg", "JoinNotiMsg")
