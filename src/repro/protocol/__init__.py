"""The join protocol (Section 4 of the paper) -- the primary contribution.

* :mod:`~repro.protocol.status` -- node statuses (copying, waiting,
  notifying, in_system).
* :mod:`~repro.protocol.messages` -- the twelve protocol message types
  of Figure 4.
* :mod:`~repro.protocol.node` -- the per-node state machine: a faithful,
  asynchronous translation of the pseudo-code in Figures 3 and 5-14.
* :mod:`~repro.protocol.join` -- :class:`JoinProtocolNetwork`, the
  high-level driver that owns the simulator, transport and nodes.
* :mod:`~repro.protocol.network_init` -- Section 6.1 bootstrap from a
  single node.
* :mod:`~repro.protocol.sizing` -- Section 6.2 message-size reduction.
"""

from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.messages import (
    CpRlyMsg,
    CpRstMsg,
    InSysNotiMsg,
    JoinNotiMsg,
    JoinNotiRlyMsg,
    JoinWaitMsg,
    JoinWaitRlyMsg,
    RvNghNotiMsg,
    RvNghNotiRlyMsg,
    SpeNotiMsg,
    SpeNotiRlyMsg,
)
from repro.protocol.network_init import initialize_network, single_node_table
from repro.protocol.node import ProtocolNode
from repro.protocol.sizing import SizingPolicy
from repro.protocol.status import NodeStatus

__all__ = [
    "CpRlyMsg",
    "CpRstMsg",
    "InSysNotiMsg",
    "JoinNotiMsg",
    "JoinNotiRlyMsg",
    "JoinProtocolNetwork",
    "JoinWaitMsg",
    "JoinWaitRlyMsg",
    "NodeStatus",
    "ProtocolNode",
    "RvNghNotiMsg",
    "RvNghNotiRlyMsg",
    "SizingPolicy",
    "SpeNotiMsg",
    "SpeNotiRlyMsg",
    "initialize_network",
    "single_node_table",
]
