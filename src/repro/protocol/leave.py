"""A voluntary-leave protocol (the paper's stated future work).

Section 7: "We plan to use this conceptual foundation to design
protocols for leaving, failure recovery, and neighbor table
optimization."  This module supplies the leave protocol, designed from
the same consistency goal (Definition 3.8) the join protocol serves:

* The leaving node ``x`` knows *exactly* who points at it and where --
  the reverse-neighbor sets ``R_x(i, j)`` that the join protocol
  maintains (tests prove they mirror forward pointers exactly).
* For a reverse neighbor ``v`` holding ``x`` at entry ``(i, j)``, any
  valid replacement is a member of the suffix class
  ``j . v[i-1]...v[0]`` -- which equals ``x``'s rightmost ``i+1``
  digits.  By consistency of ``x``'s *own* table, another class member
  exists iff some entry of ``x`` at a level ``>= i+1`` holds a node
  other than ``x``; those occupants are exactly the candidate set.
* So ``x`` sends each reverse neighbor a LeaveNotifyMsg carrying the
  candidates for its entry.  The reverse neighbor substitutes the
  first live candidate (keeping condition (a): the class is non-empty
  and stays represented) or clears the entry (keeping condition (b):
  ``x`` was the last class member).  When every reverse neighbor has
  acknowledged, ``x`` departs.
* Forward neighbors get a LeaveForgetMsg so their reverse-neighbor
  records stop naming ``x``.

Assumptions (documented, matching the scope the paper's follow-up work
gives itself): the network is quiescent -- no join overlaps the leave,
and concurrent leaves must not be "adjacent" (one leaving node must
not be a replacement candidate for another).  Use
:func:`leave_sequentially` when in doubt; arbitrary concurrent leave
support requires the full dynamics machinery of the authors' later
work and is out of scope for this reproduction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ids.digits import NodeId
from repro.network.message import HEADER_BYTES, NODE_REF_BYTES, Message


class LeaveNotifyMsg(Message):
    """From a leaving node to one of its reverse neighbors.

    "I am your ``(level, digit)`` primary neighbor and I am leaving;
    replace me with one of ``candidates`` (same suffix class), or
    clear the entry if the list is empty."
    """

    __slots__ = ("level", "digit", "candidates")
    type_name = "LeaveNotifyMsg"

    def __init__(
        self,
        sender: NodeId,
        level: int,
        digit: int,
        candidates: Tuple[NodeId, ...],
    ):
        super().__init__(sender)
        self.level = level
        self.digit = digit
        self.candidates = candidates

    def size_bytes(self) -> int:
        """Wire size: header, position, and the candidate references."""
        return HEADER_BYTES + 2 + NODE_REF_BYTES * len(self.candidates)


class LeaveNotifyRlyMsg(Message):
    """Acknowledges a LeaveNotifyMsg (entry repaired or cleared)."""

    __slots__ = ()
    type_name = "LeaveNotifyRlyMsg"


class LeaveForgetMsg(Message):
    """From a leaving node to each of its forward neighbors: drop the
    sender from your reverse-neighbor records."""

    __slots__ = ()
    type_name = "LeaveForgetMsg"


def replacement_candidates(node, level: int) -> Tuple[NodeId, ...]:
    """Candidates for entries whose class is the leaving node's
    rightmost ``level + 1`` digits: occupants of the leaving node's own
    entries at levels ``>= level + 1`` (excluding itself), in
    deterministic order."""
    seen = []
    for entry in node.table.entries():
        if entry.level >= level + 1 and entry.node != node.node_id:
            if entry.node not in seen:
                seen.append(entry.node)
    return tuple(seen)


class LeaveProtocolMixin:
    """Leave-protocol state and handlers, mixed into ProtocolNode."""

    def _init_leave_protocol(self) -> None:
        from repro.protocol.status import NodeStatus  # cycle guard

        self._status_cls = NodeStatus
        self.leave_acks_pending = 0
        self.left_at = None
        self.on_departed = None  # set by JoinProtocolNetwork
        # First instance of the class registers for all (class-shared
        # handler table, see NetworkNode._class_handlers).
        if LeaveNotifyMsg not in self._handlers:
            self.handles(LeaveNotifyMsg, self._on_leave_notify)
            self.handles(LeaveNotifyRlyMsg, self._on_leave_notify_rly)
            self.handles(LeaveForgetMsg, self._on_leave_forget)

    # -- leaving node side ----------------------------------------------

    def begin_leave(self) -> None:
        """Start leaving.  Requires status in_system and a quiescent
        join layer (no queued joiners waiting on us)."""
        from repro.protocol.node import ProtocolError

        if self.status is not self._status_cls.IN_SYSTEM:
            raise ProtocolError(
                f"{self.node_id} cannot leave in status {self.status}"
            )
        if self.q_joinwait:
            raise ProtocolError(
                f"{self.node_id} has joiners waiting; cannot leave"
            )
        self._set_status(self._status_cls.LEAVING)
        self.leave_acks_pending = 0
        for level, digit in self.table.reverse_positions():
            candidates = replacement_candidates(self, level)
            for reverse in self.table.reverse_neighbors(level, digit):
                if reverse == self.node_id:
                    continue
                self.send(
                    reverse,
                    LeaveNotifyMsg(self.node_id, level, digit, candidates),
                )
                self.leave_acks_pending += 1
        for neighbor in self.table.distinct_neighbors():
            if neighbor != self.node_id:
                self.send(neighbor, LeaveForgetMsg(self.node_id))
        if self.leave_acks_pending == 0:
            self._depart()

    def _on_leave_notify_rly(self, msg: LeaveNotifyRlyMsg) -> None:
        self.leave_acks_pending -= 1
        if (
            self.leave_acks_pending == 0
            and self.status is self._status_cls.LEAVING
        ):
            self._depart()

    def _depart(self) -> None:
        self._set_status(self._status_cls.LEFT)
        self.left_at = self.now
        if self.on_departed is not None:
            self.on_departed(self.node_id)

    # -- remaining node side ---------------------------------------------

    def _on_leave_notify(self, msg: LeaveNotifyMsg) -> None:
        from repro.routing.entry import NeighborState

        self.backups.discard(msg.sender)
        current = self.table.get(msg.level, msg.digit)
        if current == msg.sender:
            replacement = next(
                (c for c in msg.candidates if c != msg.sender),
                None,
            )
            if replacement is not None:
                for extra in msg.candidates:
                    if extra not in (msg.sender, replacement):
                        self.backups.offer(msg.level, msg.digit, extra)
                self.table.replace_entry(
                    msg.level, msg.digit, replacement, NeighborState.S
                )
                # Tell the replacement it gained a reverse neighbor
                # (same bookkeeping rule as the join protocol).
                from repro.protocol.messages import RvNghNotiMsg

                self.send(
                    replacement,
                    RvNghNotiMsg(
                        self.node_id, msg.level, msg.digit, NeighborState.S
                    ),
                )
            else:
                self.table.clear_entry(msg.level, msg.digit)
        self.send(msg.sender, LeaveNotifyRlyMsg(self.node_id))

    def _on_leave_forget(self, msg: LeaveForgetMsg) -> None:
        self.table.remove_reverse_everywhere(msg.sender)
        self.backups.discard(msg.sender)


def leave_sequentially(network, leavers: Sequence[NodeId]) -> None:
    """Run each leave to completion before starting the next (the
    safe composition; see module docstring)."""
    for leaver in leavers:
        network.start_leave(leaver, at=network.runtime.now)
        network.run()
        if not network.has_departed(leaver):
            raise RuntimeError(f"leave of {leaver} did not complete")
