"""High-level driver: a network of protocol nodes plus its runtime.

:class:`JoinProtocolNetwork` owns the runtime (virtual-time by
default), the transport, and every
:class:`~repro.protocol.node.ProtocolNode`.  It is the main entry
point of the library::

    from repro import IdSpace, JoinProtocolNetwork

    space = IdSpace(base=16, num_digits=8)
    net = JoinProtocolNetwork.from_oracle(space, initial_ids, seed=1)
    for joiner in joining_ids:
        net.start_join(joiner)          # random gateway, t = 0
    net.run()                           # to quiescence
    assert net.check_consistency().consistent

Passing ``runtime=`` swaps the execution substrate without touching
protocol code -- e.g. ``repro.runtime.create_runtime("asyncio")`` runs
the identical protocol over wall-clock asyncio timers.
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.trace import NullTraceLog, TraceLog
from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.network.stats import MessageStats
from repro.network.transport import Transport
from repro.obs.instrument import (
    JoinObserver,
    Observability,
    collect_table_metrics,
    instrument_scheduler,
)
from repro.protocol.node import ProtocolNode
from repro.protocol.sizing import SizingPolicy
from repro.protocol.status import NodeStatus
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import RouteResult, route
from repro.routing.table import NeighborTable
from repro.runtime import create_runtime
from repro.runtime.interface import Runtime
from repro.topology.attachment import ConstantLatencyModel, LatencyModel


class JoinProtocolNetwork:
    """A hypercube-routing network running the join protocol."""

    def __init__(
        self,
        idspace: IdSpace,
        latency_model: Optional[LatencyModel] = None,
        sizing: SizingPolicy = SizingPolicy.FULL,
        trace: Optional[TraceLog] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
        runtime: Optional[Runtime] = None,
    ):
        self.idspace = idspace
        #: Execution substrate: clock + timers + event loop.  Defaults
        #: to the deterministic virtual-time runtime.
        self.runtime: Runtime = (
            runtime if runtime is not None else create_runtime("sim")
        )
        self.obs = obs
        self._join_observer: Optional[JoinObserver] = None
        # Callbacks invoked as ``cb(node_id, status, now)`` on every
        # join phase transition; see add_phase_listener.
        self._phase_listeners: List[Callable[..., None]] = []
        if obs is not None:
            # Message accounting shares the run's registry, the queue
            # probe samples the runtime, and join phase transitions
            # become spans (no-ops under a NullTracer).
            self.stats = MessageStats(registry=obs.metrics)
            instrument_scheduler(self.runtime, obs)
            self._join_observer = JoinObserver(obs)
            self._phase_listeners.append(self._join_observer.on_phase)
        else:
            self.stats = MessageStats()
        self.latency_model = (
            latency_model if latency_model is not None else ConstantLatencyModel()
        )
        self.transport = Transport(
            self.runtime,
            self.latency_model,
            self.stats,
            tracer=obs.tracer if obs is not None else None,
        )
        self.sizing = sizing
        self.trace = trace if trace is not None else NullTraceLog()
        self.nodes: Dict[NodeId, ProtocolNode] = {}
        self.departed: Dict[NodeId, ProtocolNode] = {}
        self.initial_ids: List[NodeId] = []
        self.joiner_ids: List[NodeId] = []
        # Cached default-gateway pool (initial members still present);
        # rebuilt only when membership of the pool can change.  Order
        # matches initial_ids, so rng.choice draws are unchanged.
        self._gateway_pool: Optional[List[NodeId]] = None
        self._rng = random.Random(seed)

    @property
    def simulator(self) -> Runtime:
        """Alias for :attr:`runtime` (historical name)."""
        return self.runtime

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_oracle(
        cls,
        idspace: IdSpace,
        initial_ids: Sequence[NodeId],
        latency_model: Optional[LatencyModel] = None,
        sizing: SizingPolicy = SizingPolicy.FULL,
        trace: Optional[TraceLog] = None,
        seed: int = 0,
        randomize_tables: bool = True,
        obs: Optional[Observability] = None,
        runtime: Optional[Runtime] = None,
    ) -> "JoinProtocolNetwork":
        """Create a network whose initial members already have
        consistent tables (built from global knowledge).

        This is how experiments set up the paper's ``<V, N(V)>``
        without paying for a protocol bootstrap; use
        :func:`repro.protocol.network_init.initialize_network` for the
        protocol-pure construction of Section 6.1.
        """
        net = cls(
            idspace,
            latency_model=latency_model,
            sizing=sizing,
            trace=trace,
            seed=seed,
            obs=obs,
            runtime=runtime,
        )
        table_rng = random.Random(f"{seed}-oracle") if randomize_tables else None
        tables = build_consistent_tables(initial_ids, table_rng)
        for node_id in initial_ids:
            net.add_s_node(node_id, tables[node_id])
        return net

    def add_s_node(self, node_id: NodeId, table: NeighborTable) -> ProtocolNode:
        """Register a node that is already *in_system* with ``table``."""
        node = ProtocolNode(
            node_id,
            self.transport,
            status=NodeStatus.IN_SYSTEM,
            table=table,
            sizing=self.sizing,
            trace=self.trace,
        )
        node.on_departed = self._on_node_departed
        self.nodes[node_id] = node
        self.initial_ids.append(node_id)
        self._gateway_pool = None
        return node

    # ------------------------------------------------------------------
    # joining

    def start_join(
        self,
        node_id: NodeId,
        gateway: Optional[NodeId] = None,
        at: float = 0.0,
    ) -> ProtocolNode:
        """Create a joining node and schedule its join at time ``at``.

        ``gateway`` defaults to a uniformly random *initial* member
        (assumption (ii): each joining node knows some node in ``V``).
        """
        node, gateway = self._prepare_join(node_id, gateway)
        self.runtime.schedule_at(at, node.begin_join, gateway)
        return node

    def start_joins(
        self,
        node_ids: Iterable[NodeId],
        at: float = 0.0,
    ) -> List[ProtocolNode]:
        """Start many joins at the same instant, batched.

        Equivalent to calling :meth:`start_join` per ID (same gateway
        draws, same firing order for the simultaneous begin-join
        timers), but hands the whole batch to the runtime's
        ``schedule_many`` when it has one -- one O(n) heapify instead
        of n sifts when an experiment launches 10^5 joins at once.
        """
        prepared = [self._prepare_join(node_id) for node_id in node_ids]
        schedule_many = getattr(self.runtime, "schedule_many", None)
        if schedule_many is None:
            for node, gateway in prepared:
                self.runtime.schedule_at(at, node.begin_join, gateway)
        else:
            delay = at - self.runtime.now
            schedule_many(
                (delay, node.begin_join, gateway)
                for node, gateway in prepared
            )
        return [node for node, _gateway in prepared]

    def _prepare_join(
        self,
        node_id: NodeId,
        gateway: Optional[NodeId] = None,
    ) -> Tuple[ProtocolNode, NodeId]:
        """Create and register a joining node; no scheduling."""
        if node_id in self.nodes:
            raise ValueError(f"{node_id} is already in the network")
        if gateway is None:
            pool = self._gateway_pool
            if pool is None:
                pool = [
                    member
                    for member in self.initial_ids
                    if member in self.nodes
                ]
                self._gateway_pool = pool
            candidates = pool or [
                member
                for member, node in self.nodes.items()
                if node.status.is_s_node
            ]
            if not candidates:
                raise ValueError("no existing node to join through")
            gateway = self._rng.choice(candidates)
        node = ProtocolNode(
            node_id,
            self.transport,
            status=NodeStatus.COPYING,
            sizing=self.sizing,
            trace=self.trace,
        )
        node.on_departed = self._on_node_departed
        listeners = self._phase_listeners
        if len(listeners) == 1:
            # Single listener (the usual case): call it directly, no
            # dispatch indirection on the phase-transition path.
            node.on_phase = listeners[0]
        elif listeners:
            node.on_phase = self._dispatch_phase
        self.nodes[node_id] = node
        self.joiner_ids.append(node_id)
        return node, gateway

    # ------------------------------------------------------------------
    # observability hooks

    def _dispatch_phase(self, node_id, status, time) -> None:
        """Fan one phase transition out to every registered listener."""
        for listener in self._phase_listeners:
            listener(node_id, status, time)

    def add_phase_listener(
        self, listener: Callable[..., None]
    ) -> None:
        """Register ``listener(node_id, status, now)`` for join phase
        transitions.  Must be called before the joins it should see are
        started -- nodes pick up the listener set at ``start_join``."""
        self._phase_listeners.append(listener)

    def attach_auditor(self, config=None):
        """Attach a :class:`~repro.obs.audit.LiveAuditor` (created with
        ``config``) to this network's runtime and phase hooks.

        Call before starting joins; after :meth:`run`, call the
        returned auditor's ``finalize()`` for the quiescence gates.
        """
        from repro.obs.audit import LiveAuditor

        return LiveAuditor(self, config).attach()

    # ------------------------------------------------------------------
    # leaving (extension protocol; see repro.protocol.leave)

    def start_leave(self, node_id: NodeId, at: float = 0.0) -> ProtocolNode:
        """Schedule ``node_id``'s voluntary departure at time ``at``."""
        node = self.nodes[node_id]
        self.runtime.schedule_at(at, node.begin_leave)
        return node

    def _on_node_departed(self, node_id: NodeId) -> None:
        self._gateway_pool = None
        node = self.nodes.pop(node_id)
        self.departed[node_id] = node
        self.transport.unregister(node_id)

    def has_departed(self, node_id: NodeId) -> bool:
        """True iff ``node_id`` completed a leave (or was failed)."""
        return node_id in self.departed

    # ------------------------------------------------------------------
    # running and inspection

    def run(
        self,
        max_events: Optional[int] = None,
        wall_budget: Optional[float] = None,
    ) -> int:
        """Run the runtime to quiescence; returns events fired.

        ``wall_budget`` (seconds of real time) only applies to
        wall-clock runtimes, which raise
        :class:`~repro.runtime.interface.WallClockBudgetExceeded` if
        the network has not quiesced in time; the virtual-time runtime
        does not accept it (virtual runs never wait).
        """
        if wall_budget is not None:
            return self.runtime.run(
                max_events=max_events, wall_budget=wall_budget
            )
        return self.runtime.run(max_events=max_events)

    def node(self, node_id: NodeId) -> ProtocolNode:
        """The live ProtocolNode for ``node_id``."""
        return self.nodes[node_id]

    def table(self, node_id: NodeId) -> NeighborTable:
        """``node_id``'s current neighbor table."""
        return self.nodes[node_id].table

    def tables(self) -> Dict[NodeId, NeighborTable]:
        """Current tables of all live members, keyed by ID."""
        return {node_id: node.table for node_id, node in self.nodes.items()}

    def statuses(self) -> Dict[NodeId, NodeStatus]:
        """Current status of every live member."""
        return {node_id: node.status for node_id, node in self.nodes.items()}

    def all_in_system(self) -> bool:
        """Theorem 2's claim: every node eventually becomes an S-node."""
        return all(node.status.is_s_node for node in self.nodes.values())

    def member_ids(self) -> List[NodeId]:
        """IDs of all live members (departed nodes excluded)."""
        return list(self.nodes)

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Route a message using the current tables (Section 2.2)."""
        return route(lambda nid: self.nodes[nid].table, source, target)

    def check_consistency(self):
        """Run the Definition 3.8 checker over the current tables."""
        from repro.consistency.checker import check_consistency

        return check_consistency(self.tables())

    def collect_final_metrics(self) -> Dict[str, float]:
        """Fold end-of-run gauges (per-level neighbor-table fill) into
        the registry and return the flat metrics snapshot.

        Requires the network to have been built with ``obs=``.
        """
        if self.obs is None:
            raise ValueError("network was not built with an Observability")
        collect_table_metrics(self.tables(), self.obs.metrics)
        return self.obs.metrics.snapshot()

    # -- cost accounting ------------------------------------------------

    def join_noti_counts(self) -> List[int]:
        """Number of JoinNotiMsg sent by each joiner (Figure 15(b))."""
        return self.stats.sent_by_each(self.joiner_ids, "JoinNotiMsg")

    def big_message_counts(self) -> List[int]:
        """CpRstMsg + JoinWaitMsg + JoinNotiMsg per joiner."""
        return [
            self.stats.big_message_count(joiner)
            for joiner in self.joiner_ids
        ]

    def theorem3_counts(self) -> List[int]:
        """CpRstMsg + JoinWaitMsg per joiner (bounded by d+1, Thm 3)."""
        return [
            self.stats.sent_by(joiner, "CpRstMsg")
            + self.stats.sent_by(joiner, "JoinWaitMsg")
            for joiner in self.joiner_ids
        ]
