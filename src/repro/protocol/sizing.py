"""Message-size reduction policies (Section 6.2).

Two policies:

* ``FULL`` -- every table-carrying message includes the sender's whole
  (filled) table, as in the base protocol of Section 4.
* ``REDUCED`` -- the Section 6.2 enhancements:

  1. A ``JoinNotiMsg`` from ``x`` to ``y`` includes only levels
     ``x.noti_level .. |csuf(x, y)|`` of ``x``'s table, plus a bit
     vector marking which of ``x``'s entries are filled.
  2. The ``JoinNotiRlyMsg`` from ``y`` includes, below ``x.noti_level``,
     only entries whose bit is '0' (i.e. entries ``x`` has not filled),
     and all entries at levels ``>= x.noti_level``.

Both policies exchange the same *protocol-relevant* information (see
the argument in DESIGN.md); property tests check that final tables are
consistent under either policy, and the ablation bench compares bytes.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Optional, Tuple

from repro.routing.table import NeighborTable, TableSnapshot

#: Set of (level, digit) positions filled in the notifier's table.
FilledBitmap = FrozenSet[Tuple[int, int]]


class SizingPolicy(enum.Enum):
    """Which table payloads messages carry: the Section 4 base protocol
    (FULL) or the Section 6.2 reductions (REDUCED)."""

    FULL = "full"
    REDUCED = "reduced"


def join_noti_payload(
    policy: SizingPolicy,
    table: NeighborTable,
    noti_level: int,
    csuf_with_receiver: int,
) -> Tuple[TableSnapshot, Optional[FilledBitmap], int]:
    """Payload of a JoinNotiMsg: (snapshot, bitmap, bit_vector_bytes)."""
    if policy is SizingPolicy.FULL:
        return table.snapshot(), None, 0
    snapshot = table.snapshot_levels(noti_level, csuf_with_receiver)
    bitmap = frozenset(
        (entry.level, entry.digit) for entry in table.entries()
    )
    bit_vector_bytes = (table.num_levels * table.base + 7) // 8
    return snapshot, bitmap, bit_vector_bytes


def join_noti_reply_payload(
    policy: SizingPolicy,
    table: NeighborTable,
    noti_level: int,
    bitmap: Optional[FilledBitmap],
) -> TableSnapshot:
    """Payload of a JoinNotiRlyMsg under ``policy``.

    ``noti_level`` and ``bitmap`` describe the *notifier* (the reply's
    receiver); below its notification level only entries it has not yet
    filled are included.
    """
    if policy is SizingPolicy.FULL or bitmap is None:
        return table.snapshot()
    return tuple(
        entry
        for entry in table.entries()
        if entry.level >= noti_level
        or (entry.level, entry.digit) not in bitmap
    )
